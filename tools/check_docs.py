#!/usr/bin/env python3
"""Check that intra-repo Markdown links resolve. Zero dependencies.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline links and images, and verifies that links into the
repository point at files that exist — including ``#anchor`` fragments,
which must match a heading in the target file (GitHub slug rules,
simplified). External links (``http(s)://``, ``mailto:``) are skipped:
CI must not depend on the network.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, ``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) links and ![alt](target) images. Reference-style
# links are rare in this repo; add them here if they ever appear.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug, close enough for ASCII headings."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(1)))
    return anchors


def _iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in _iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / base).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                errors.append(
                    "%s:%d: link escapes the repository: %s"
                    % (path, lineno, target)
                )
                continue
            if not resolved.exists():
                errors.append(
                    "%s:%d: broken link target: %s" % (path, lineno, target)
                )
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                errors.append(
                    "%s:%d: missing anchor #%s in %s"
                    % (path, lineno, fragment, resolved.name)
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        skip_parts = {".git", ".venv", "node_modules", "__pycache__"}
        files = sorted(
            p for p in root.rglob("*.md")
            if not skip_parts & set(p.relative_to(root).parts)
        )
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        "checked %d markdown file(s): %s"
        % (len(files), "%d broken link(s)" % len(errors) if errors else "ok")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
