#!/usr/bin/env python3
"""Check that intra-repo Markdown links resolve. Zero dependencies.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline links and images, and verifies that links into the
repository point at files that exist — including ``#anchor`` fragments,
which must match a heading in the target file (GitHub slug rules,
simplified). External links (``http(s)://``, ``mailto:``) are skipped:
CI must not depend on the network.

Exit status: 0 when every link resolves, 1 otherwise (one line per
broken link, ``file:line: message``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline [text](target) links and ![alt](target) images, plus
# reference-style [text][label] usages resolved through their
# [label]: target definition lines (labels are case-insensitive;
# [text][] collapses the text into the label, per CommonMark).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REF_USE = re.compile(r"!?\[([^\]]+)\]\[([^\]]*)\]")
_REF_DEF = re.compile(r"^ {0,3}\[([^\]]+)\]:\s*(\S+)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")


def _slugify(heading: str) -> str:
    """GitHub's anchor slug, close enough for ASCII headings."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(1)))
    return anchors


def _prose_lines(path: Path):
    """The file's lines outside code fences, with line numbers."""
    in_fence = False
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans are literal text, not links.
        yield lineno, _CODE_SPAN.sub("``", line)


def _iter_links(path: Path):
    """Yield ``(lineno, target)`` for every checkable link in ``path``.

    A reference use whose label has no definition yields a
    ``(lineno, ("undefined", label))`` sentinel instead, so
    ``check_file`` reports it in line order with the broken targets."""
    definitions: dict[str, str] = {}
    for _lineno, line in _prose_lines(path):
        match = _REF_DEF.match(line)
        if match:
            definitions[match.group(1).lower()] = match.group(2)
    for lineno, line in _prose_lines(path):
        if _REF_DEF.match(line):
            # The definition's own target is checked where it is used;
            # check it here too so an unused-but-broken one still fails.
            yield lineno, _REF_DEF.match(line).group(2)
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)
        for match in _REF_USE.finditer(line):
            label = (match.group(2) or match.group(1)).lower()
            if label not in definitions:
                yield lineno, ("undefined", match.group(2) or match.group(1))
        # Resolved reference uses point at their definition's target,
        # which the definition line above already yielded once.


def check_file(path: Path, root: Path) -> list[str]:
    errors: list[str] = []
    for lineno, target in _iter_links(path):
        if isinstance(target, tuple):
            errors.append(
                "%s:%d: undefined link reference [%s]"
                % (path, lineno, target[1])
            )
            continue
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            resolved = path
        else:
            resolved = (path.parent / base).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                errors.append(
                    "%s:%d: link escapes the repository: %s"
                    % (path, lineno, target)
                )
                continue
            if not resolved.exists():
                errors.append(
                    "%s:%d: broken link target: %s" % (path, lineno, target)
                )
                continue
        if fragment and resolved.suffix == ".md":
            if fragment not in _anchors(resolved):
                errors.append(
                    "%s:%d: missing anchor #%s in %s"
                    % (path, lineno, fragment, resolved.name)
                )
    return errors


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        skip_parts = {".git", ".venv", "node_modules", "__pycache__"}
        files = sorted(
            p for p in root.rglob("*.md")
            if not skip_parts & set(p.relative_to(root).parts)
        )
    errors: list[str] = []
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(
        "checked %d markdown file(s): %s"
        % (len(files), "%d broken link(s)" % len(errors) if errors else "ok")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
