#!/usr/bin/env python3
"""Measure the hot-path crypto pass and write a machine-readable report.

Times each optimized primitive against the naive composition it
replaces — multi-pairing vs per-pair products, GT multi-exponentiation
vs folded ``gt_exp``, Montgomery batch inversion vs per-element
``modinv``, and fused vs recursive CP-ABE decryption at the
paper-relevant threshold k=5 — and records the operation counters that
pin the structural claim (2k+1 final exponentiations collapse to 1).

It also runs the self-healing availability scenario (one node of a
3-node R=3 cluster down, every read served through the degraded
fallback) and records served/failed/stale-risk counts next to the
crypto numbers, plus a closed-loop throughput run against a real TCP
smart server — serial (one request in flight) vs pipelined (eight
client threads sharing one connection) — recording requests/second and
the server-observed in-flight high-water mark.

Usage (from the repo root)::

    PYTHONPATH=src python tools/bench_report.py [output.json]
    PYTHONPATH=src python tools/bench_report.py out.json --compare BENCH_PR9.json
    PYTHONPATH=src python tools/bench_report.py out.json --sections crypto_tier

It also measures the policy plane: share and access latency for both
constructions under the flat depth-1 threshold versus the nested
depth-3 scope/escrow policy, compiled from the same ``PuzzlePolicy``.

The storage section loads 1k near-identical CP-ABE uploads into both
blob-store engines and records bytes/blob for each, the compression
ratio the segment engine's groupcompress pass achieves, and how long
``reopen()`` takes to rebuild the index after a power-loss crash.

The ``crypto_tier`` section times every accelerated primitive under the
pure tier and (when the GMP kernel builds) the compiled tier, plus the
parallel pairing pool against the serial engine on an 8-member batch —
the measured shape of the acceleration layer described in
``docs/PERFORMANCE.md``.

``--compare PREV.json`` turns the tool into a trajectory gate: every
``speedup`` / ``compression_ratio`` / ``availability`` field in the
prior report is a floor, and the run fails (exit 1) if the fresh report
regresses any of them by more than ``--tolerance`` (default 20%).
``--sections`` restricts the run to a comma-separated subset — CI uses
it to gate the crypto sections without paying for the full report.

The default output is ``BENCH_PR10.json`` in the current directory.
Wall-clock numbers vary per machine; the checked-in file documents one
reference run, while the ``speedup``/op-count/availability fields are
the quantities CI asserts on (see ``benchmarks/test_hotpath_speedup.py``
and ``benchmarks/test_degraded_reads.py``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.abe import CPABE, AccessTree
from repro.crypto.numbers import batch_modinv, modinv
from repro.crypto.pairing import Pairing
from repro.crypto.params import SMALL

K = 5
ROUNDS = 5


def _timed(fn, rounds: int = ROUNDS) -> float:
    fn()  # warm caches outside the timed region
    start = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - start) / rounds


def bench_pair_product(pairing: Pairing, rng: random.Random) -> dict:
    base = SMALL.random_g0()
    pairs = [
        (base * rng.randrange(1, SMALL.r), base * rng.randrange(1, SMALL.r))
        for _ in range(2 * K + 1)
    ]

    def naive():
        value = pairing.pair(*pairs[0])
        for p, q in pairs[1:]:
            value = value * pairing.pair(p, q)
        return value

    naive_s = _timed(naive)
    fused_s = _timed(lambda: pairing.pair_product(pairs))
    return {
        "pairs": len(pairs),
        "naive_ms": naive_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "speedup": naive_s / fused_s,
    }


def bench_gt_multi_exp(pairing: Pairing, rng: random.Random) -> dict:
    base = SMALL.random_g0()
    bases = [
        pairing.pair(base * rng.randrange(1, SMALL.r), base) for _ in range(8)
    ]
    exponents = [rng.randrange(1, SMALL.r) for _ in bases]

    def naive():
        value = bases[0] ** exponents[0]
        for b, e in zip(bases[1:], exponents[1:]):
            value = value * b ** e
        return value

    naive_s = _timed(naive)
    fused_s = _timed(lambda: pairing.gt_multi_exp(bases, exponents))
    return {
        "terms": len(bases),
        "naive_ms": naive_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "speedup": naive_s / fused_s,
    }


def bench_batch_modinv(rng: random.Random) -> dict:
    m = SMALL.q
    values = [rng.randrange(1, m) for _ in range(64)]
    naive_s = _timed(lambda: [modinv(v, m) for v in values])
    batched_s = _timed(lambda: batch_modinv(values, m))
    return {
        "values": len(values),
        "naive_ms": naive_s * 1e3,
        "batched_ms": batched_s * 1e3,
        "speedup": naive_s / batched_s,
    }


def bench_decrypt() -> dict:
    attributes = ["ctx-%d" % i for i in range(K)]
    tree = AccessTree.k_of_n(K, attributes)
    abe = CPABE(SMALL)
    pk, mk = abe.setup()
    message = abe._random_gt(pk)
    ct = abe.encrypt_element(pk, message, tree)
    sk = abe.keygen(pk, mk, set(attributes))

    naive_s = _timed(lambda: abe.decrypt_element(pk, sk, ct, fused=False))
    fused_s = _timed(lambda: abe.decrypt_element(pk, sk, ct))

    abe.pairing.reset_op_counts()
    abe.decrypt_element(pk, sk, ct, fused=False)
    naive_ops = dict(abe.pairing.op_counts)
    abe.pairing.reset_op_counts()
    abe.decrypt_element(pk, sk, ct)
    fused_ops = dict(abe.pairing.op_counts)

    return {
        "k": K,
        "naive_ms": naive_s * 1e3,
        "fused_ms": fused_s * 1e3,
        "speedup": naive_s / fused_s,
        "naive_final_exps": naive_ops["final_exps"],
        "fused_final_exps": fused_ops["final_exps"],
        "fused_miller_states": fused_ops["miller_states"],
    }


def bench_degraded_reads() -> dict:
    """The self-healing acceptance scenario, in report form: one node of
    a 3-node R=3 cluster down; strict quorum reads starve while degraded
    fallback keeps availability at 100% with a nonzero stale-risk count."""
    from benchmarks.test_degraded_reads import _populated_cluster, _read_all
    from repro.osn.resilience import ResilientStorageClient, RetryPolicy

    clock, cluster, payloads = _populated_cluster()
    cluster.crash("dhc-n0")
    strict = ResilientStorageClient(
        cluster, retry=RetryPolicy(max_attempts=2, clock=clock)
    )
    _, strict_failed = _read_all(strict, payloads)

    clock, cluster, payloads = _populated_cluster()
    cluster.crash("dhc-n0")
    degraded = ResilientStorageClient(
        cluster,
        retry=RetryPolicy(max_attempts=2, clock=clock),
        degraded_reads=True,
    )
    served, failed = _read_all(degraded, payloads)
    return {
        "objects": len(payloads),
        "strict_failed": strict_failed,
        "degraded_served": served,
        "degraded_failed": failed,
        "stale_risk_reads": cluster.degraded_read_count,
        "availability": served / len(payloads),
    }


def bench_policy_depth() -> dict:
    """Share/access cost as the policy tree deepens (the PR 8 plane).

    Depth 1 is the paper's flat threshold (``2 of (ctx_a..ctx_c)``);
    depth 3 nests a scope gate and an escrow OR around it. Both compile
    through the same ``PuzzlePolicy`` IR into both constructions; the
    delta between the rows is the price of the share-of-shares recursion
    (C1) and the bigger access tree (C2), share-side and access-side.
    """
    from repro.core.construction1 import PuzzleServiceC1, ReceiverC1, SharerC1
    from repro.core.construction2 import PuzzleServiceC2, ReceiverC2, SharerC2
    from repro.core.context import Context
    from repro.osn.storage import StorageHost
    from repro.policy import PuzzlePolicy

    answers = {
        "scope:group/trip": "trip-roster-secret",
        "ctx_a": "alpha-answer",
        "ctx_b": "beta-answer",
        "ctx_c": "gamma-answer",
        "attr:escrow": "escrow-credential",
    }
    cases = {
        "depth1": (
            "2 of (ctx_a, ctx_b, ctx_c)",
            {"ctx_a", "ctx_b"},
        ),
        "depth3": (
            "scope:group/trip and"
            " (2 of (ctx_a, ctx_b, ctx_c) or attr:escrow)",
            {"scope:group/trip", "ctx_a", "ctx_b"},
        ),
    }
    obj = b"policy depth benchmark object"
    context = Context.from_mapping(answers)
    report: dict = {}
    for name, (text, known) in cases.items():
        policy = PuzzlePolicy.from_text(text)
        sharer_context = Context.from_mapping(
            {q: answers[q] for q in policy.questions}
        )
        knowledge = Context.from_mapping({q: answers[q] for q in known})
        row = {"questions": len(policy.questions), "depth": policy.depth()}

        storage = StorageHost()
        sharer1 = SharerC1("alice", storage)
        service1 = PuzzleServiceC1()
        row["c1_share_ms"] = (
            _timed(lambda: sharer1.upload_policy(obj, sharer_context, policy))
            * 1e3
        )
        puzzle_id = service1.store_puzzle(
            sharer1.upload_policy(obj, sharer_context, policy)
        )
        displayed = service1.display_puzzle(puzzle_id)
        receiver1 = ReceiverC1("bob", storage)

        def c1_access():
            submitted = receiver1.answer_puzzle(displayed, knowledge)
            release = service1.verify(submitted)
            return receiver1.recover_object_secret(
                release, displayed, knowledge
            )

        row["c1_access_ms"] = _timed(c1_access) * 1e3

        sharer2 = SharerC2("alice", storage, SMALL)
        service2 = PuzzleServiceC2()
        row["c2_share_ms"] = (
            _timed(
                lambda: sharer2.upload_policy(obj, sharer_context, policy),
                rounds=3,
            )
            * 1e3
        )
        record, _ = sharer2.upload_policy(obj, sharer_context, policy)
        puzzle_id = service2.store_upload(record)
        displayed2 = service2.display_puzzle(puzzle_id)
        receiver2 = ReceiverC2("bob", storage, SMALL)

        def c2_access():
            submitted = receiver2.answer_puzzle(displayed2, knowledge)
            grant = service2.verify(submitted)
            return receiver2.access(grant, knowledge)

        row["c2_access_ms"] = _timed(c2_access, rounds=3) * 1e3
        report[name] = row

    for construction in ("c1", "c2"):
        for op in ("share", "access"):
            key = "%s_%s_ms" % (construction, op)
            report["%s_depth3_over_depth1_%s" % (construction, op)] = (
                report["depth3"][key] / report["depth1"][key]
            )
    return report


def bench_storage_engine() -> dict:
    """Bytes/blob for near-identical CP-ABE uploads, both engines.

    Loads one sharer's hybrid ciphertexts into the dict engine (the
    serialized baseline) and the segment engine (groupcompress + sealed
    zlib blocks), then power-cycles the segment store to time index
    recovery. The ``compression_ratio`` field is the quantity the
    ``benchmarks/test_storage_engine.py`` regression floor asserts on.
    """
    from benchmarks.test_storage_engine import SEGMENT_TARGET, generate_blobs
    from repro.store import DictBlobStore, SegmentBlobStore, VersionedBlob

    count = 1000
    blobs = generate_blobs(count)

    dict_store = DictBlobStore()
    segment_store = SegmentBlobStore(segment_target_bytes=SEGMENT_TARGET)
    for store in (dict_store, segment_store):
        for i, ciphertext in enumerate(blobs):
            store.put("obj-%04d" % i, VersionedBlob(i + 1, ciphertext))
    segment_store.flush()

    dict_bytes = dict_store.stats().physical_bytes
    segment_bytes = segment_store.stats().physical_bytes

    segment_store.crash_volatile()
    start = time.perf_counter()
    recovered = segment_store.reopen()
    recovery_s = time.perf_counter() - start

    return {
        "blobs": count,
        "blob_bytes": len(blobs[0]),
        "dict_bytes_per_blob": dict_bytes / count,
        "segment_bytes_per_blob": segment_bytes / count,
        "compression_ratio": dict_bytes / segment_bytes,
        "segments": segment_store.stats().segments,
        "recovery_ms": recovery_s * 1e3,
        "recovered": recovered,
    }


def bench_serve_throughput() -> dict:
    """Closed-loop load against a TCP smart server on localhost.

    The serial loop holds one request in flight (latency-bound); the
    pipelined loop shares the same single connection between eight
    closed-loop client threads, so up to eight requests ride the wire
    at once. The gap between the two is what the smart server's
    pipelining buys; ``max_in_flight_seen`` proves the overlap was real.
    """
    import threading

    from repro.apps.platform import SocialPuzzlePlatform
    from repro.crypto.params import get_params
    from repro.serve import RemoteProtocolClient, TcpSmartServer, TcpTransport

    requests, clients, payload = 240, 8, b"x" * 512
    platform = SocialPuzzlePlatform(params=get_params("small"))
    with TcpSmartServer(platform.engine, max_in_flight=16, workers=8) as server:
        host, port = server.address
        with RemoteProtocolClient(TcpTransport(host, port)) as client:
            client.storage_put(b"warm the connection")

            start = time.perf_counter()
            for _ in range(requests):
                client.storage_put(payload)
            serial_s = time.perf_counter() - start

            def closed_loop() -> None:
                for _ in range(requests // clients):
                    client.storage_put(payload)

            threads = [
                threading.Thread(target=closed_loop) for _ in range(clients)
            ]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pipelined_s = time.perf_counter() - start
        observed = server.metrics.as_dict()
    return {
        "requests": requests,
        "client_threads": clients,
        "payload_bytes": len(payload),
        "serial_rps": requests / serial_s,
        "pipelined_rps": requests / pipelined_s,
        "speedup": serial_s / pipelined_s,
        "max_in_flight_seen": observed["max_in_flight_seen"],
        "server_frames_in": observed["frames_in"],
    }


def bench_crypto_tiers() -> dict:
    """Per-primitive timings across acceleration tiers (the PR 10 plane).

    Each hot primitive runs on the same seeded inputs under the pure
    tier and, when the GMP kernel probes, the compiled tier; ``speedup``
    is compiled-over-pure (1.0 when only the pure tier is available).
    The ``parallel`` block fans an 8-member multi-pairing batch through
    the :class:`~repro.crypto.parallel.PairingPool` at the default
    worker count and compares against the serial loop — on a single-core
    box the pool declines to fork and the honest answer is ~1.0x with
    ``mode: serial``.
    """
    from repro.crypto import accel
    from repro.crypto.accel import CompiledBackendUnavailable
    from repro.crypto.parallel import PairingPool, default_workers

    prior = accel.active().requested
    tiers = ["pure"]
    try:
        accel._probe_compiled()
        tiers.append("compiled")
    except CompiledBackendUnavailable:
        pass

    rng = random.Random(10)
    base = SMALL.random_g0()
    pairs = [
        (base * rng.randrange(1, SMALL.r), base * rng.randrange(1, SMALL.r))
        for _ in range(2 * K + 1)
    ]
    inv_values = [rng.randrange(1, SMALL.q) for _ in range(64)]
    gt_exponent = rng.randrange(1, SMALL.r)
    me_exponents = [rng.randrange(1, SMALL.r) for _ in range(8)]

    attributes = ["ctx-%d" % i for i in range(K)]
    tree = AccessTree.k_of_n(K, attributes)
    abe = CPABE(SMALL)
    pk, mk = abe.setup()
    ct = abe.encrypt_element(pk, abe._random_gt(pk), tree)
    sk = abe.keygen(pk, mk, set(attributes))

    primitives: dict[str, dict] = {}
    try:
        for tier in tiers:
            accel.set_tier(tier)
            pairing = Pairing(SMALL)
            gt = pairing.pair(*pairs[0])
            me_bases = [pairing.pair(p, q) for p, q in pairs[:8]]
            rows = {
                "pair_product_11": lambda: pairing.pair_product(pairs),
                "gt_exp": lambda: pairing.gt_exp(gt, gt_exponent),
                "gt_multi_exp_8": lambda: pairing.gt_multi_exp(
                    me_bases, me_exponents
                ),
                "batch_modinv_64": lambda: batch_modinv(inv_values, SMALL.q),
                "cpabe_decrypt_k5_fused": lambda: abe.decrypt_element(
                    pk, sk, ct
                ),
            }
            for name, fn in rows.items():
                primitives.setdefault(name, {})["%s_ms" % tier] = (
                    _timed(fn) * 1e3
                )
        for row in primitives.values():
            row["speedup"] = (
                row["pure_ms"] / row["compiled_ms"]
                if "compiled_ms" in row
                else 1.0
            )

        jobs = [
            [
                (
                    base * rng.randrange(1, SMALL.r),
                    base * rng.randrange(1, SMALL.r),
                    rng.randrange(1, SMALL.r),
                )
                for _ in range(K)
            ]
            for _ in range(8)
        ]
        accel.set_tier(tiers[-1])
        pairing = Pairing(SMALL)
        serial_s = _timed(
            lambda: [pairing.pair_product(job) for job in jobs], rounds=3
        )
        with PairingPool() as pool:
            pool_s = _timed(
                lambda: pool.pair_products(pairing, jobs), rounds=3
            )
            mode = pool.describe()["mode"]
        parallel = {
            "members": len(jobs),
            "pairs_per_member": K,
            "workers": default_workers(),
            "mode": mode,
            "serial_ms": serial_s * 1e3,
            "pool_ms": pool_s * 1e3,
            "speedup": serial_s / pool_s,
        }
    finally:
        accel.set_tier(prior)

    return {
        "tiers": tiers,
        "active_default": accel.describe()["tier"],
        "primitives": primitives,
        "parallel": parallel,
    }


SECTIONS = {
    "pair_product": None,
    "gt_multi_exp": None,
    "batch_modinv": None,
    "cpabe_decrypt_k5": bench_decrypt,
    "crypto_tier": bench_crypto_tiers,
    "degraded_reads": bench_degraded_reads,
    "serve_throughput": bench_serve_throughput,
    "policy_depth": bench_policy_depth,
    "storage_engine": bench_storage_engine,
}

# Prior-report fields treated as regression floors by --compare.
FLOOR_FIELDS = ("speedup", "compression_ratio", "availability")


def _collect_floors(node: object, path: tuple = ()) -> dict:
    floors: dict = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key in FLOOR_FIELDS and isinstance(value, (int, float)):
                floors[path + (key,)] = float(value)
            else:
                floors.update(_collect_floors(value, path + (key,)))
    return floors


def compare_reports(
    current: dict, prior: dict, tolerance: float
) -> tuple[list, list]:
    """Every floor field in ``prior`` must be held to within ``tolerance``.

    Returns ``(failures, skipped)`` where failures are
    ``(path, prior, current)`` triples and skipped are prior floors whose
    section is absent from the current report (e.g. under --sections).
    """
    failures, skipped = [], []
    for path, floor in sorted(_collect_floors(prior).items()):
        node: object = current
        for key in path:
            if not isinstance(node, dict) or key not in node:
                node = None
                break
            node = node[key]
        if not isinstance(node, (int, float)):
            skipped.append(path)
            continue
        if node < floor * (1.0 - tolerance):
            failures.append((path, floor, float(node)))
    return failures, skipped


def _print_summary(report: dict) -> None:
    for section, values in report.items():
        if not isinstance(values, dict):
            continue
        if section == "crypto_tier":
            for name, row in values["primitives"].items():
                print("  %-22s %5.2fx compiled/pure" % (name, row["speedup"]))
            par = values["parallel"]
            print(
                "  %-22s %5.2fx pool/serial (%d workers, %s)"
                % ("parallel_batch_8", par["speedup"], par["workers"], par["mode"])
            )
        elif "speedup" in values:
            print("  %-22s %5.2fx" % (section, values["speedup"]))
        elif "availability" in values:
            print(
                "  %-22s %5.0f%% available, %d stale-risk"
                % (
                    section,
                    100 * values["availability"],
                    values["stale_risk_reads"],
                )
            )
        elif section == "storage_engine":
            print(
                "  %-22s %5.2fx fewer bytes/blob, %.1fms recovery"
                % (section, values["compression_ratio"], values["recovery_ms"])
            )
        elif section == "policy_depth":
            print(
                "  %-22s depth-3/depth-1 access: c1 %.2fx, c2 %.2fx"
                % (
                    section,
                    values["c1_depth3_over_depth1_access"],
                    values["c2_depth3_over_depth1_access"],
                )
            )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the hot paths and write a JSON report."
    )
    parser.add_argument("output", nargs="?", default="BENCH_PR10.json")
    parser.add_argument(
        "--compare",
        metavar="PREV.json",
        help="fail if any floor field in PREV.json regresses",
    )
    parser.add_argument(
        "--sections",
        help="comma-separated subset of sections to run (default: all)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional regression per floor (default 0.2)",
    )
    args = parser.parse_args(argv[1:])

    selected = list(SECTIONS)
    if args.sections:
        selected = [name.strip() for name in args.sections.split(",")]
        unknown = [name for name in selected if name not in SECTIONS]
        if unknown:
            parser.error(
                "unknown sections %r (choose from %s)"
                % (unknown, ", ".join(SECTIONS))
            )

    rng = random.Random(5)
    pairing = Pairing(SMALL)
    report: dict = {
        "params": {"r_bits": SMALL.r.bit_length(), "q_bits": SMALL.q.bit_length()},
        "rounds": ROUNDS,
    }
    for name in selected:
        if name == "pair_product":
            report[name] = bench_pair_product(pairing, rng)
        elif name == "gt_multi_exp":
            report[name] = bench_gt_multi_exp(pairing, rng)
        elif name == "batch_modinv":
            report[name] = bench_batch_modinv(rng)
        else:
            report[name] = SECTIONS[name]()

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % args.output)
    _print_summary(report)

    if args.compare:
        with open(args.compare) as fh:
            prior = json.load(fh)
        failures, skipped = compare_reports(report, prior, args.tolerance)
        for path in skipped:
            print("compare: skipped %s (not in this run)" % ".".join(path))
        for path, floor, now in failures:
            print(
                "REGRESSION %s: %.3f -> %.3f (floor %.3f)"
                % (
                    ".".join(path),
                    floor,
                    now,
                    floor * (1.0 - args.tolerance),
                )
            )
        if failures:
            return 1
        print(
            "compare: held %d floor(s) from %s within %.0f%%"
            % (
                len(_collect_floors(prior)) - len(skipped),
                args.compare,
                100 * args.tolerance,
            )
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
