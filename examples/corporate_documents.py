#!/usr/bin/env python3
"""Context-based access control in a corporate network (paper section I).

"Other customized applications can also be envisioned, e.g., data
management in a corporate network, where only employees knowing certain
work-related context can get access to certain confidential documents."

This example uses Construction 2 directly (not through the OSN facade)
because CP-ABE supports *nested* policies beyond the height-1 social
puzzle: here a confidential memo requires knowing EITHER the full project
context (3 of 3) OR two of three logistics details — a policy a static
ACL cannot express at all.

Run:  python examples/corporate_documents.py
"""

from __future__ import annotations

from repro.abe import CPABE, AccessTree, PolicyNotSatisfiedError
from repro.core.construction2 import leaf_attribute
from repro.core.context import Context
from repro.crypto.params import SMALL


def attributes_for(context: Context) -> list[str]:
    return [leaf_attribute(p.question, p.answer) for p in context.pairs]


def main() -> None:
    project_context = Context.from_mapping(
        {
            "What is the project codename?": "Falconer",
            "Which client is it for?": "Globex",
            "What deadline did we commit to?": "End of Q2",
        }
    )
    logistics_context = Context.from_mapping(
        {
            "Which conference room hosts the standup?": "Aurora",
            "Who presented the roadmap?": "Priya",
            "What is the staging server called?": "basalt-02",
        }
    )

    # Policy: (all 3 project facts) OR (2 of 3 logistics facts).
    policy = AccessTree.any_of(
        [
            AccessTree.all_of(attributes_for(project_context)),
            AccessTree.threshold(2, attributes_for(logistics_context)),
        ]
    )

    abe = CPABE(SMALL)
    pk, mk = abe.setup()
    memo = b"CONFIDENTIAL: Falconer pricing strategy, draft 7"
    ciphertext = abe.encrypt_bytes(pk, memo, policy)
    print(f"Memo encrypted under policy: {policy}")
    print(f"Ciphertext size: {ciphertext.byte_size()} bytes\n")

    # An engineer on the project knows all the project facts.
    engineer = abe.keygen(pk, mk, set(attributes_for(project_context)))
    print("Engineer (knows project context):", abe.decrypt_bytes(pk, engineer, ciphertext))

    # An office manager knows logistics but not the project.
    manager_knowledge = attributes_for(logistics_context)[:2]
    manager = abe.keygen(pk, mk, set(manager_knowledge))
    print("Office manager (2 logistics facts):", abe.decrypt_bytes(pk, manager, ciphertext))

    # A new hire knows one fact from each context — not enough for either
    # branch, even though they hold two valid facts in total.
    new_hire = abe.keygen(
        pk,
        mk,
        {attributes_for(project_context)[0], attributes_for(logistics_context)[0]},
    )
    try:
        abe.decrypt_bytes(pk, new_hire, ciphertext)
    except PolicyNotSatisfiedError:
        print("New hire (1 fact from each branch): DENIED — branches cannot be mixed")

    # Delegation: the engineer issues a narrower key to a contractor who
    # only needs the codename + client attributes (still not enough).
    contractor = abe.delegate(pk, engineer, set(attributes_for(project_context)[:2]))
    try:
        abe.decrypt_bytes(pk, contractor, ciphertext)
    except PolicyNotSatisfiedError:
        print("Contractor (delegated 2/3 project facts): DENIED — AND branch needs all 3")


if __name__ == "__main__":
    main()
