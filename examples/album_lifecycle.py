#!/usr/bin/env python3
"""Full album lifecycle: one puzzle, many photos, throttling and rotation.

Combines the library's extension features around the paper's core flow:

1. A curator shares a three-item album behind ONE puzzle (k = 2 of 4).
2. An attendee solves once and downloads every item.
3. An online guesser hammers the verifier and gets locked out
   (ThrottledPuzzleServiceC1).
4. After enough releases, the rotation policy fires; the curator re-keys
   the puzzle (section VI-C countermeasure) — hoarded shares die, but the
   same answers still work for legitimate friends.

Run:  python examples/album_lifecycle.py
"""

from __future__ import annotations

import random

from repro.core.album import AlbumReceiver, AlbumSharer
from repro.core.construction1 import ReceiverC1, SharerC1
from repro.core.context import Context, QAPair
from repro.core.errors import AccessDeniedError
from repro.core.rotation import RotationPolicy, rotate_puzzle
from repro.core.throttle import ThrottledError, ThrottledPuzzleServiceC1
from repro.osn.storage import StorageHost


class ThrottledRotatingService(ThrottledPuzzleServiceC1):
    """Throttling + release counting for rotation, composed."""

    def __init__(self, policy: RotationPolicy, **kwargs):
        super().__init__(**kwargs)
        self.policy = policy
        self.releases: dict[int, int] = {}

    def verify(self, answers, requester: str = ""):
        release = super().verify(answers, requester=requester)
        self.releases[answers.puzzle_id] = self.releases.get(answers.puzzle_id, 0) + 1
        return release

    def due_for_rotation(self, puzzle_id: int) -> bool:
        return self.policy.should_rotate(self.releases.get(puzzle_id, 0))


def solve_album(service, storage, puzzle_id, knowledge, who, seed):
    receiver = AlbumReceiver(ReceiverC1(who, storage))
    displayed = service.display_puzzle(puzzle_id, rng=random.Random(seed))
    answers = receiver.receiver.answer_puzzle(displayed, knowledge)
    release = service.verify(answers, requester=who)
    manifest = receiver.open_album(release, displayed, knowledge)
    return receiver, manifest


def main() -> None:
    context = Context.from_mapping(
        {
            "Where did the reunion end up?": "the rooftop greenhouse",
            "Who fell asleep during the speeches?": "uncle bartholomew",
            "What did the band refuse to play?": "the chicken dance",
            "What did we toast with at midnight?": "elderflower cordial",
        }
    )
    album = {
        "arrivals.jpg": b"<photo: everyone arriving>",
        "speeches.mp4": b"<video: the speeches, all 40 minutes>",
        "midnight.jpg": b"<photo: the cordial toast>",
    }

    storage = StorageHost()
    curator = SharerC1("curator", storage)
    service = ThrottledRotatingService(
        policy=RotationPolicy(max_releases=2), max_failures=3
    )
    puzzle = AlbumSharer(curator).upload_album(album, context, k=2, n=4)
    puzzle_id = service.store_puzzle(puzzle)
    print(f"album shared as puzzle #{puzzle_id}: {sorted(album)} behind 1 puzzle")

    # 2. attendee solves once, gets everything
    receiver, manifest = solve_album(
        service, storage, puzzle_id, context, "attendee", seed=0
    )
    print("attendee unlocked:", manifest.titles())
    assert receiver.fetch_all() == album

    # 3. online guesser throttled
    guesser_knowledge = Context(
        QAPair(p.question, "wild guess " + str(i)) for i, p in enumerate(context)
    )
    for attempt in range(4):
        try:
            solve_album(service, storage, puzzle_id, guesser_knowledge, "guesser", attempt)
        except AccessDeniedError:
            print(f"guesser attempt {attempt + 1}: denied")
        except ThrottledError as exc:
            print(f"guesser attempt {attempt + 1}: THROTTLED ({exc})")
            break

    # 4. releases accumulate -> rotation due
    solve_album(service, storage, puzzle_id, context, "second-friend", seed=1)
    print("rotation due after %d releases: %s" % (
        service.releases[puzzle_id], service.due_for_rotation(puzzle_id)
    ))
    # NOTE: rotating an *album* re-encrypts the manifest; items stay put
    # (their keys derive from the old secret, so a full album rotation
    # re-uploads items too — done here via upload_album again).
    new_puzzle = AlbumSharer(curator).upload_album(album, context, k=2, n=4)
    storage.delete(puzzle.url)
    service._puzzles[puzzle_id] = new_puzzle
    service.releases[puzzle_id] = 0
    print("curator rotated the album puzzle (fresh secret, key, shares)")

    receiver2, manifest2 = solve_album(
        service, storage, puzzle_id, context, "late-friend", seed=2
    )
    assert receiver2.fetch_all() == album
    print("late friend solved the ROTATED puzzle with the same answers")


if __name__ == "__main__":
    main()
