#!/usr/bin/env python3
"""Quickstart: share a message behind a social puzzle and solve it.

Mirrors the paper's demo flow: Alice shares party photos with her social
network, gated on knowledge of the party's context (2 of 4 questions);
Bob (who was there) solves the puzzle; Carol (a friend who was not there)
is denied; and neither the service provider nor the storage host ever
sees the answers or the photos.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import AccessDeniedError, Context, SocialPuzzlePlatform


def main() -> None:
    # A simulated OSN with a storage host and both puzzle applications.
    platform = SocialPuzzlePlatform()

    alice = platform.join("alice")
    bob = platform.join("bob")
    carol = platform.join("carol")
    platform.befriend(alice, bob)
    platform.befriend(alice, carol)

    context = Context.from_mapping(
        {
            "Where was the party held?": "Lake Tahoe",
            "Who brought the cake?": "Marguerite",
            "What color was the boat?": "Crimson",
            "Which song closed the night?": "Wonderwall",
        }
    )
    photos = b"<album: 37 photos from Saturday night>"

    # --- Construction 1 (Shamir secret sharing) --------------------------
    share = platform.share(alice, photos, context, k=2, construction=1)
    print(f"Alice shared puzzle #{share.puzzle_id}; the post reads:")
    print(f"  {share.post.content!r}")
    print(
        f"  sharer cost: {share.timing.local_s * 1e3:.1f} ms local, "
        f"{share.timing.network_s * 1e3:.1f} ms network"
    )

    # Bob was at the party: he knows at least two answers.
    bobs_memory = context.take(2)
    result = platform.solve(bob, share, bobs_memory, rng=random.Random(5))
    print(f"\nBob solved it and got: {result.plaintext!r}")
    print(
        f"  receiver cost: {result.timing.local_s * 1e3:.1f} ms local, "
        f"{result.timing.network_s * 1e3:.1f} ms network"
    )

    # Carol missed the party and misremembers everything.
    carols_guess = Context.from_mapping(
        {
            "Where was the party held?": "Las Vegas",
            "Who brought the cake?": "Dmitri",
        }
    )
    try:
        platform.solve(carol, share, carols_guess, rng=random.Random(5))
    except AccessDeniedError as exc:
        print(f"\nCarol was denied: {exc}")

    # --- Construction 2 (CP-ABE) ------------------------------------------
    share2 = platform.share(alice, photos, context, k=2, construction=2)
    result2 = platform.solve(bob, share2, bobs_memory, construction=2)
    print(f"\nConstruction 2: Bob decrypted {result2.plaintext!r}")

    # --- Surveillance resistance -------------------------------------------
    for pair in context:
        platform.provider.audit.assert_never_saw(pair.answer_bytes(), "answer")
        platform.storage.audit.assert_never_saw(pair.answer_bytes(), "answer")
    platform.provider.audit.assert_never_saw(photos, "object")
    platform.storage.audit.assert_never_saw(photos, "object")
    print("\nAudit: the SP and the storage host never saw an answer or the album.")


if __name__ == "__main__":
    main()
