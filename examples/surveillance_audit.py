#!/usr/bin/env python3
"""Run the paper's section VI security analysis as live attacks.

Stages every adversarial scenario against the real implementation and
prints a table of outcomes — including the attacks the paper *concedes*
(malicious-SP feedback collusion, unsigned-puzzle DOS) and the dictionary
attack that low-entropy answers invite.

Equivalent to:  python -m repro attacks
Run:            python examples/surveillance_audit.py
"""

from __future__ import annotations

from repro.analysis.scenarios import format_outcomes, run_standard_scenarios


def main() -> None:
    outcomes = run_standard_scenarios()
    print(format_outcomes(outcomes))
    print(
        "\nEvery 'SUCCEEDED' row above is an attack the paper itself concedes"
        "\n(covert-channel collusion, malicious-SP feedback, unsigned DOS) or a"
        "\nusability caveat (guessable answers). The security guarantees —"
        "\nsemi-honest surveillance resistance and threshold access control —"
        "\nall hold."
    )


if __name__ == "__main__":
    main()
