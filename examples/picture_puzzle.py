#!/usr/bin/env python3
"""Picture-based social puzzles — the paper's planned usability feature.

Instead of typing "Lake Tahoe", the receiver *clicks the photo* of the
place. Each question shows one correct image among decoys; the selected
image's content digest becomes the textual answer, so the whole thing
rides on Construction 1 unchanged — the SP still sees only keyed hashes.

The example also shows the strength auditor flagging a puzzle whose
candidate sets are too small (a 1-in-5 click is ~2.3 bits; you need
several questions or bigger grids).

Run:  python examples/picture_puzzle.py
"""

from __future__ import annotations

import random

from repro.core.construction1 import PuzzleServiceC1, ReceiverC1, SharerC1
from repro.core.errors import AccessDeniedError
from repro.core.picture import ImageRef, PicturePuzzleBuilder
from repro.osn.storage import StorageHost


def fake_photo(label: str, seed: int) -> ImageRef:
    """Stand-in for a JPEG: deterministic pseudo-random content."""
    rng = random.Random(seed)
    return ImageRef(label=label, content=bytes(rng.randrange(256) for _ in range(256)))


def main() -> None:
    builder = PicturePuzzleBuilder(min_candidates=5)

    venue = fake_photo("the lakehouse deck", 1)
    cake = fake_photo("hibiscus chiffon cake", 2)
    boat = fake_photo("the crimson rowboat", 3)
    questions = [
        builder.make_question(
            "Which photo shows where the party was held?",
            venue,
            [fake_photo("decoy venue %d" % i, 10 + i) for i in range(4)],
            shuffle_seed=7,
        ),
        builder.make_question(
            "Which cake did Marguerite bring?",
            cake,
            [fake_photo("decoy cake %d" % i, 20 + i) for i in range(4)],
            shuffle_seed=8,
        ),
        builder.make_question(
            "Which boat did we take out at midnight?",
            boat,
            [fake_photo("decoy boat %d" % i, 30 + i) for i in range(4)],
            shuffle_seed=9,
        ),
    ]

    report = builder.audit(questions, k=2)
    print("strength audit: attack cost ~%.1f bits (%s)" % (
        report.attack_cost_bits, "ok" if report.acceptable else "TOO WEAK"
    ))

    context = builder.build_context(questions)
    storage = StorageHost()
    sharer = SharerC1("alice", storage)
    service = PuzzleServiceC1()
    album = b"<the midnight rowing album>"
    puzzle_id = service.store_puzzle(sharer.upload(album, context, k=2, n=3))
    print("shared picture puzzle #%d (3 questions, k=2)" % puzzle_id)

    # Bob was there: he clicks the right venue and cake photos.
    bob = ReceiverC1("bob", storage)
    clicks = {
        questions[0].question: questions[0].correct_index,
        questions[1].question: questions[1].correct_index,
    }
    knowledge = PicturePuzzleBuilder.knowledge_from_selections(questions, clicks)
    seed = next(s for s in range(10_000) if random.Random(s).randint(2, 3) == 3)
    displayed = service.display_puzzle(puzzle_id, rng=random.Random(seed))
    release = service.verify(bob.answer_puzzle(displayed, knowledge))
    print("bob clicked 2 correct photos and got:", bob.access(release, displayed, knowledge))

    # Carol guesses: wrong clicks everywhere.
    carol = ReceiverC1("carol", storage)
    wrong_clicks = {
        q.question: (q.correct_index + 2) % len(q.candidates) for q in questions
    }
    guess = PicturePuzzleBuilder.knowledge_from_selections(questions, wrong_clicks)
    try:
        service.verify(carol.answer_puzzle(displayed, guess))
    except AccessDeniedError as exc:
        print("carol's guesses were rejected:", exc)


if __name__ == "__main__":
    main()
