#!/usr/bin/env python3
"""The paper's motivating workload: event photo sharing on a real-ish OSN.

Builds a 40-user small-world social network, generates a trip event with a
five-question context, splits the sharer's friends into the paper's
audience classes (attendees who know everything, invitees-who-missed who
know about half, and the rest who know nothing), then shares an album at
threshold k = 3 and reports who gets in.

This is the "insider threat" scenario from the introduction: all of these
users are *friends* — a static ACL would admit every one of them — but
context-based access admits only those who actually share the event's
context.

Run:  python examples/event_photo_sharing.py
"""

from __future__ import annotations

import random

from repro.apps.platform import SocialPuzzlePlatform
from repro.core.errors import AccessDeniedError
from repro.osn.workload import WorkloadGenerator


def main() -> None:
    platform = SocialPuzzlePlatform()
    generator = WorkloadGenerator(seed=2014)

    users = generator.populate_social_graph(
        platform.provider, num_users=40, mean_degree=6
    )
    sharer = users[0]
    friends = platform.provider.friends_of(sharer)
    print(f"{sharer.name} has {len(friends)} friends on the network")

    event = generator.event(5, kind="trip")
    print(f"\nEvent: {event.name}")
    for pair in event.context:
        print(f"  Q: {pair.question}  (A: {pair.answer})")

    knowledge = generator.split_audience(
        event.context, friends, attendee_fraction=0.35, invitee_fraction=0.35
    )
    album = b"<trip album: 124 photos>"
    share = platform.share(sharer, album, event.context, k=3, construction=1)
    print(f"\nShared at threshold k=3 as puzzle #{share.puzzle_id}")

    admitted, denied = [], []
    for friend in friends:
        known = knowledge[friend.user_id]
        try:
            if known is None:
                raise AccessDeniedError("knows nothing about the event")
            platform.solve(friend, share, known, rng=random.Random(friend.user_id))
            admitted.append((friend, known))
        except AccessDeniedError:
            denied.append((friend, known))

    print(f"\nAdmitted ({len(admitted)}):")
    for friend, known in admitted:
        print(f"  {friend.name}: knew {len(known)}/5 answers")
    print(f"Denied ({len(denied)}):")
    for friend, known in denied:
        label = "nothing" if known is None else f"{len(known)}/5 answers"
        print(f"  {friend.name}: knew {label}")

    attendees = sum(1 for _, k in admitted if k is not None and len(k) == 5)
    print(
        f"\n{attendees} full attendees admitted; every stranger denied; "
        "partial knowers admitted only when the displayed subset covered "
        "3 of their known answers."
    )

    # The static-ACL counterfactual: every friend would have seen the album.
    print(
        f"A static 'friends' ACL would have admitted all {len(friends)} friends — "
        "including those with no connection to the trip."
    )


if __name__ == "__main__":
    main()
