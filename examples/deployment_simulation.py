#!/usr/bin/env python3
"""A month of social-puzzle deployment, simulated end to end.

Runs the system-level driver: a 50-user OSN where users share
event-protected albums daily and their friends attempt access according
to what they actually know. Prints the aggregate dashboard an operator
would watch — share/solve volumes, denial rates, false negatives, service
load — and the headline invariant: zero strangers ever got in.

Run:  python examples/deployment_simulation.py
"""

from __future__ import annotations

from repro.sim.driver import SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        num_users=50,
        ticks=30,  # one share opportunity per "day"
        share_probability=0.7,
        questions_per_event=4,
        threshold=2,
        seed=2014,
    )
    print(
        "simulating %d days on a %d-user OSN (k=%d of %d)..."
        % (config.ticks, config.num_users, config.threshold, config.questions_per_event)
    )
    report = run_simulation(config)
    print()
    for line in report.summary_lines():
        print(" ", line)

    print("\nshares per day:", report.per_tick_shares)
    print(
        "\ninvariant held: %s strangers were ever granted access"
        % report.stranger_granted
    )

    # Threshold sweep: the operator's tuning table.
    print("\nthreshold sweep (same 30 days):")
    print("  k  grant-rate  attendee-denials")
    for k in (1, 2, 3, 4):
        swept = run_simulation(
            SimulationConfig(
                num_users=50, ticks=30, share_probability=0.7,
                questions_per_event=4, threshold=k, seed=2014,
            )
        )
        print(
            "  %d  %9.0f%%  %16d"
            % (k, 100 * swept.grant_rate, swept.attendee_denied)
        )


if __name__ == "__main__":
    main()
