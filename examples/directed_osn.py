#!/usr/bin/env python3
"""Social puzzles on a directed, Twitter-like OSN.

The paper (section I): directed OSNs "that provide only very minimalistic
access control mechanisms (e.g., Twitter) will benefit even more because
the context-based access mechanism will add a layer of privacy
protection."

Here every tweet is public — anyone on the platform can see the puzzle
post — yet only followers (or anyone!) who actually know the event context
can open the protected object. The OSN contributes zero confidentiality;
the puzzle contributes all of it.

Run:  python examples/directed_osn.py
"""

from __future__ import annotations

import random

from repro.apps.clients import SocialPuzzleAppC1
from repro.core.context import Context
from repro.core.errors import AccessDeniedError
from repro.osn.directed import DirectedServiceProvider
from repro.osn.storage import StorageHost


def main() -> None:
    twitter = DirectedServiceProvider()
    storage = StorageHost()
    app = SocialPuzzleAppC1(twitter, storage)

    journalist = twitter.register_user("journalist")
    source = twitter.register_user("source")
    rival = twitter.register_user("rival_outlet")
    public_user = twitter.register_user("random_reader")
    twitter.follow(source, journalist)
    twitter.follow(rival, journalist)
    twitter.follow(public_user, journalist)

    # Context only the source knows: details of their last meeting.
    context = Context.from_mapping(
        {
            "Which cafe did we meet at last Tuesday?": "the linden room",
            "What did I order and send back?": "a burnt cortado",
            "What codeword did we agree on?": "marmalade skies",
        }
    )
    document = b"<encrypted follow-up questions for the source>"
    share = app.share(
        journalist, document, context, k=2, audience="public"
    )
    print("tweeted:", share.post.content)
    print(
        "the tweet is PUBLIC: rival sees it too ->",
        any(p.post_id == share.post.post_id for p in twitter.feed(rival)),
    )

    # The source answers from memory (sloppy capitalization included).
    memory = Context.from_mapping(
        {
            "Which cafe did we meet at last Tuesday?": "The LINDEN Room",
            "What codeword did we agree on?": "marmalade skies",
        }
    )
    result = app.attempt_access(
        source, share.puzzle_id, memory, rng=random.Random(5)
    )
    print("source retrieved:", result.plaintext)

    # The rival outlet sees the post but cannot answer.
    guess = Context.from_mapping(
        {"Which cafe did we meet at last Tuesday?": "starbucks"}
    )
    try:
        app.attempt_access(rival, share.puzzle_id, guess, rng=random.Random(5))
    except AccessDeniedError as exc:
        print("rival denied:", exc)

    # And the platform itself learned nothing.
    for pair in context:
        twitter.audit.assert_never_saw(pair.answer_bytes(), "answer")
    twitter.audit.assert_never_saw(document, "object")
    print("audit: the platform never saw an answer or the document")


if __name__ == "__main__":
    main()
