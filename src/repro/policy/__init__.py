"""The explainable policy plane: nested S-A-O-C puzzle policies.

Three pieces, stacked:

* :mod:`repro.policy.model` — the IR. :class:`PuzzlePolicy` is an
  arbitrary monotone AND/OR/k-of-N tree over requirement labels
  (questions, ``scope:org|group|thread/...`` gates, escrow attributes);
  :class:`AccessRequest` normalizes who-does-what-to-which-with-what-
  knowledge into one Subject-Action-Object-Context quadruple.
* :mod:`repro.policy.compile` — two compilers from the one IR:
  share-of-shares Shamir recursion for Construction 1, leaf relabeling
  into CP-ABE attributes for Construction 2, plus the label-free gate
  *shape* codec both the wire and the SP-side evaluator use.
* :mod:`repro.policy.explain` — the audit-grade evaluator: given which
  leaves a viewer proved, report the gate-by-gate grant/deny derivation
  without ever shipping answer material.

See the "Policy plane" section of ``docs/ARCHITECTURE.md`` for the
end-to-end walk-through.
"""

from repro.policy.compile import (
    compile_tree_c2,
    decode_shape,
    encode_shape,
    shape_leaf_count,
    shape_tree,
    share_plan,
    solve_shape,
)
from repro.policy.explain import Explanation, NodeTrace, explain_tree
from repro.policy.model import (
    ACTIONS,
    SCOPE_KINDS,
    AccessRequest,
    PolicyError,
    PuzzlePolicy,
    is_scope_label,
    scope_label,
    split_scope_label,
)

__all__ = [
    "ACTIONS",
    "SCOPE_KINDS",
    "AccessRequest",
    "Explanation",
    "NodeTrace",
    "PolicyError",
    "PuzzlePolicy",
    "compile_tree_c2",
    "decode_shape",
    "encode_shape",
    "explain_tree",
    "is_scope_label",
    "scope_label",
    "shape_leaf_count",
    "shape_tree",
    "share_plan",
    "solve_shape",
    "split_scope_label",
]
