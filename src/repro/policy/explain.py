"""Audit-grade policy explanation: the gate-by-gate grant/deny derivation.

Given the question-level policy tree and the set of requirement labels a
viewer *proved* (their keyed/answer hashes matched), :func:`explain_tree`
produces an :class:`Explanation`: one :class:`NodeTrace` per tree node,
in depth-first order, recording which leaves matched and which threshold
gates passed. That is exactly the information an auditor needs to answer
"why was this granted/denied" — and nothing more:

* leaf labels are the puzzle's *questions*, which the SP already shows to
  every prospective receiver at DisplayPuzzle time;
* no answer, answer hash, share, key or digest ever enters a trace — the
  curious-SP test (`tests/policy/test_explain.py`) serializes
  explanations for both outcomes and asserts the absence of answer
  material byte-for-byte.

Explanations have a wire codec so the SP can serve them over the
``Explain`` verb (:mod:`repro.proto.messages`), and a human rendering::

    deny (scope:group/trip and (2 of (ctx_a, ctx_b, ctx_c) or attr:escrow))
    - and [1/2]
      - scope:group/trip
      + or [1/1]
        + 2 of 3 [2/2]
          + ctx_a
          + ctx_b
          - ctx_c
        - attr:escrow
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate
from repro.abe.policy import format_policy
from repro.util.codec import Reader, blob, text, u8, u32

__all__ = ["NodeTrace", "Explanation", "explain_tree"]


@dataclass(frozen=True)
class NodeTrace:
    """One node of the derivation, addressed by its path from the root.

    ``path`` is dotted child positions (root = ``"0"``, its second child
    = ``"0.2"``); ``kind`` is ``"gate"`` or ``"leaf"``. For a gate,
    ``satisfied`` counts satisfied children against ``threshold``; for a
    leaf, ``satisfied`` is 1 iff the viewer's hash matched and the
    threshold is 1. ``passed`` is the node's own verdict.
    """

    path: str
    kind: str
    label: str  # question for leaves, connective ("and"/"or"/"k of n") for gates
    threshold: int
    child_count: int
    satisfied: int
    passed: bool

    @property
    def depth(self) -> int:
        return self.path.count(".")


@dataclass(frozen=True)
class Explanation:
    """The full grant/deny derivation for one verification attempt."""

    construction: int
    puzzle_id: int
    granted: bool
    policy_text: str
    nodes: tuple[NodeTrace, ...]

    def satisfied_leaves(self) -> tuple[str, ...]:
        """Questions the viewer proved, in policy leaf order."""
        return tuple(
            n.label for n in self.nodes if n.kind == "leaf" and n.passed
        )

    def failed_leaves(self) -> tuple[str, ...]:
        """Questions the viewer did not prove, in policy leaf order."""
        return tuple(
            n.label for n in self.nodes if n.kind == "leaf" and not n.passed
        )

    def passed_gates(self) -> tuple[str, ...]:
        """Paths of the threshold gates that cleared, depth-first."""
        return tuple(
            n.path for n in self.nodes if n.kind == "gate" and n.passed
        )

    def render(self) -> str:
        """Human-readable indented derivation (``+`` passed, ``-`` not)."""
        lines = [
            "%s %s" % ("grant" if self.granted else "deny", self.policy_text)
        ]
        for node in self.nodes:
            mark = "+" if node.passed else "-"
            detail = (
                "%s [%d/%d]" % (node.label, node.satisfied, node.threshold)
                if node.kind == "gate"
                else node.label
            )
            lines.append("%s%s %s" % ("  " * (node.depth + 1), mark, detail))
        return "\n".join(lines)

    # -- wire codec ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        body = (
            u8(self.construction)
            + u32(self.puzzle_id)
            + u8(int(self.granted))
            + text(self.policy_text)
            + u32(len(self.nodes))
        )
        for node in self.nodes:
            body += (
                text(node.path)
                + u8(1 if node.kind == "gate" else 0)
                + text(node.label)
                + u32(node.threshold)
                + u32(node.child_count)
                + u32(node.satisfied)
                + u8(int(node.passed))
            )
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "Explanation":
        reader = Reader(data)
        construction = reader.u8()
        puzzle_id = reader.u32()
        granted = bool(reader.u8())
        policy_text = reader.text()
        count = reader.u32()
        nodes = []
        for _ in range(count):
            nodes.append(
                NodeTrace(
                    path=reader.text(),
                    kind="gate" if reader.u8() else "leaf",
                    label=reader.text(),
                    threshold=reader.u32(),
                    child_count=reader.u32(),
                    satisfied=reader.u32(),
                    passed=bool(reader.u8()),
                )
            )
        reader.done()
        return cls(
            construction=construction,
            puzzle_id=puzzle_id,
            granted=granted,
            policy_text=policy_text,
            nodes=tuple(nodes),
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


def _gate_label(gate: ThresholdGate) -> str:
    if gate.threshold == len(gate.children) and len(gate.children) > 1:
        return "and"
    if gate.threshold == 1 and len(gate.children) > 1:
        return "or"
    return "%d of %d" % (gate.threshold, len(gate.children))


def explain_tree(
    tree: AccessTree,
    matched: Iterable[str],
    *,
    construction: int,
    puzzle_id: int,
    policy_text: str | None = None,
) -> Explanation:
    """Evaluate the question-level tree and trace every node's verdict.

    ``matched`` is the set of requirement labels whose hashes verified —
    the only evidence the SP holds. ``policy_text`` defaults to the
    canonical rendering of ``tree`` (the sharer may attach a prettier
    one via the SharePolicy verb).
    """
    matched_set = set(matched)
    nodes: list[NodeTrace] = []

    def walk(node: Node, path: str) -> bool:
        if isinstance(node, AttributeLeaf):
            passed = node.attribute in matched_set
            nodes.append(
                NodeTrace(
                    path=path,
                    kind="leaf",
                    label=node.attribute,
                    threshold=1,
                    child_count=0,
                    satisfied=int(passed),
                    passed=passed,
                )
            )
            return passed
        placeholder = len(nodes)
        nodes.append(None)  # type: ignore[arg-type]  # reserve DFS slot
        satisfied = 0
        for position, child in enumerate(node.children, start=1):
            if walk(child, "%s.%d" % (path, position)):
                satisfied += 1
        passed = satisfied >= node.threshold
        nodes[placeholder] = NodeTrace(
            path=path,
            kind="gate",
            label=_gate_label(node),
            threshold=node.threshold,
            child_count=len(node.children),
            satisfied=satisfied,
            passed=passed,
        )
        return passed

    granted = walk(tree.root, "0")
    return Explanation(
        construction=construction,
        puzzle_id=puzzle_id,
        granted=granted,
        policy_text=policy_text if policy_text is not None else format_policy(tree),
        nodes=tuple(nodes),
    )
