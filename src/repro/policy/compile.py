"""Compile the policy IR down to both constructions.

One policy, two targets:

* **Construction 2** is the easy direction: CP-ABE natively encrypts
  under arbitrary monotone trees, so :func:`compile_tree_c2` just
  relabels every requirement leaf into the ``question || answer``
  attribute form and hands the tree to ``Encrypt`` unchanged.

* **Construction 1** needs the new machinery: the paper's flat puzzle
  splits the object secret M_O with ONE Shamir polynomial. A nested
  policy becomes a *share-of-shares* recursion (:func:`share_plan`):
  every gate with threshold t over m children draws a fresh degree-(t-1)
  polynomial P with the gate's value as P(0), and child j receives
  P(j). Leaf values are blinded into puzzle entries exactly like flat
  shares; gate values are never stored anywhere — they are recomputed
  by Lagrange interpolation on the way back up (:func:`solve_shape`).

  Child x-coordinates are the deterministic positions 1..m. That is
  safe for the same reason the flat construction may reveal its random
  x-coordinates: Shamir's secrecy is over the y-values, and the
  positions are independent of every secret. What the SP stores beyond
  the flat artifact is only the gate *shape* (thresholds and arities —
  :func:`encode_shape`), which it must know anyway to run Verify.

The shape codec is deliberately label-free: leaves encode as a single
byte and are identified by depth-first position, so the wire shape
carries no question text, no answers and no hashes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate
from repro.core.context import Context, normalize_answer
from repro.crypto.field import PrimeField
from repro.crypto.polynomial import Polynomial
from repro.crypto.shamir import Share, reconstruct_secret
from repro.policy.model import PolicyError, PuzzlePolicy
from repro.util.codec import CodecError, Reader, u8, u32

__all__ = [
    "encode_shape",
    "decode_shape",
    "shape_tree",
    "shape_leaf_count",
    "share_plan",
    "solve_shape",
    "compile_tree_c2",
]

_SHAPE_LEAF = 0
_SHAPE_GATE = 1


# -- the label-free shape codec ------------------------------------------------


def encode_shape(tree: AccessTree) -> bytes:
    """Serialize gate structure only: thresholds, arities, leaf slots.

    Leaves carry no payload — their identity is their depth-first
    position, which is also the puzzle-entry index in Construction 1.
    """

    def walk(node: Node) -> bytes:
        if isinstance(node, AttributeLeaf):
            return u8(_SHAPE_LEAF)
        out = u8(_SHAPE_GATE) + u32(node.threshold) + u32(len(node.children))
        for child in node.children:
            out += walk(child)
        return out

    return walk(tree.root)


def decode_shape(shape: bytes) -> Node:
    """Rebuild the gate structure; leaves are labeled by DFS index."""
    reader = Reader(shape)
    counter = [0]

    def read_node() -> Node:
        kind = reader.u8()
        if kind == _SHAPE_LEAF:
            index = counter[0]
            counter[0] += 1
            return AttributeLeaf(str(index))
        if kind != _SHAPE_GATE:
            raise CodecError("unknown shape node kind %d" % kind)
        threshold = reader.u32()
        count = reader.u32()
        if count > reader.remaining():
            # Each child costs at least one byte; reject before allocating.
            raise CodecError("shape gate claims more children than bytes remain")
        children = tuple(read_node() for _ in range(count))
        try:
            return ThresholdGate(threshold, children)
        except ValueError as exc:
            raise CodecError(str(exc)) from exc

    root = read_node()
    reader.done()
    return root


def shape_leaf_count(shape: bytes) -> int:
    """Number of leaf slots in an encoded shape."""
    return len(AccessTree(decode_shape(shape)).leaves())


def shape_tree(shape: bytes, labels: Sequence[str]) -> AccessTree:
    """An encoded shape re-hydrated with requirement labels, DFS order.

    The SP calls this with the puzzle's question list to evaluate and
    explain nested policies — questions are exactly what it already
    stores, so no new information reaches it.
    """
    root = decode_shape(shape)
    tree = AccessTree(root)
    leaves = tree.leaves()
    if len(leaves) != len(labels):
        raise PolicyError(
            "shape has %d leaf slots but %d labels were supplied"
            % (len(leaves), len(labels))
        )
    mapping = {leaf.attribute: label for leaf, label in zip(leaves, labels)}
    return tree.relabel(lambda slot: mapping[slot])


# -- construction 1: share-of-shares -------------------------------------------


def share_plan(tree: AccessTree, field: PrimeField, secret: int) -> list[Share]:
    """Split ``secret`` down the gate tree; one share per leaf, DFS order.

    Gate child j (1-based position) receives P_gate(j) where P_gate is a
    fresh random degree-(threshold-1) polynomial with the gate's own
    value at 0. A leaf's share is ``Share(x=position, y=value)``; a gate
    child recurses with its value as the sub-secret. The flat policy
    degenerates to a single polynomial — the paper's construction.
    """
    if isinstance(tree.root, AttributeLeaf):
        raise PolicyError("share plan needs a gate at the root")
    shares: list[Share] = []

    def walk(gate: ThresholdGate, value: int) -> None:
        polynomial = Polynomial.random(
            field, gate.threshold - 1, constant_term=value
        )
        for position, child in enumerate(gate.children, start=1):
            child_value = int(polynomial(position))
            if isinstance(child, AttributeLeaf):
                shares.append(Share(x=position, y=child_value))
            else:
                walk(child, child_value)

    walk(tree.root, secret % field.p)
    return shares


def solve_shape(
    shape: bytes, leaf_values: Mapping[int, int], field: PrimeField
) -> int | None:
    """Recover the root secret from unblinded leaf shares, or ``None``.

    ``leaf_values`` maps DFS leaf index -> unblinded y-value. Each gate
    interpolates its own value at 0 from any ``threshold`` recovered
    children (at positions 1..m); gates below threshold contribute
    nothing, exactly mirroring CP-ABE's DecryptNode recursion.
    """
    root = decode_shape(shape)
    if isinstance(root, AttributeLeaf):
        raise PolicyError("policy shape must have a gate at the root")

    def solve(node: Node) -> int | None:
        if isinstance(node, AttributeLeaf):
            return leaf_values.get(int(node.attribute))
        recovered: list[Share] = []
        for position, child in enumerate(node.children, start=1):
            value = solve(child)
            if value is not None:
                recovered.append(Share(x=position, y=value % field.p))
            if len(recovered) == node.threshold:
                break
        if len(recovered) < node.threshold:
            return None
        return int(reconstruct_secret(field, recovered, node.threshold))

    return solve(root)


# -- construction 2: straight into CP-ABE --------------------------------------


def compile_tree_c2(policy: PuzzlePolicy, context: Context) -> AccessTree:
    """Relabel requirement leaves into (question, answer) attributes.

    The resulting tree goes directly into ``SharerC2.upload_tree`` —
    ``Encrypt`` and the generalized ``Verify`` already handle arbitrary
    monotone trees, so C2's compiler is exactly this relabeling.
    """
    # Imported lazily: construction2 is a higher layer that may itself
    # import the policy package at module scope.
    from repro.core.construction2 import leaf_attribute

    policy.require_answerable(context)
    return policy.tree.relabel(
        lambda question: leaf_attribute(
            question, normalize_answer(context.answer_for(question))
        )
    )
