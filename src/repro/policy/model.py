"""The normalized policy model: S-A-O-C requests and nested puzzle policies.

Everything the policy plane reasons about is normalized into two values:

* an :class:`AccessRequest` — **S**ubject (who asks), **A**ction (what they
  want to do), **O**bject (which puzzle/post) and **C**ontext (the
  question/answer knowledge they claim) — the openedx-authz-style
  enforcer quadruple; and
* a :class:`PuzzlePolicy` — one intermediate representation for *what must
  be known*: an arbitrary monotone AND/OR/k-of-N tree whose leaves are
  **requirement labels**. A label is simply a question; a *scope gate*
  (``scope:org/acme``, ``scope:group/trip``, ``scope:thread/42``) is a
  question whose answer is the scope's membership secret, and an escrow
  branch (``attr:escrow``) is a question whose answer is the escrow
  agent's credential. Uniformity is the point: both compilers
  (:mod:`repro.policy.compile`) treat every leaf identically, so group
  puzzles, escrowed recovery and scope-boxed access are policies, not
  code paths.

The paper's flat puzzle is the degenerate policy ``k of (q_1, ..., q_n)``
— :meth:`PuzzlePolicy.from_k_of_n` builds exactly that, and
:meth:`PuzzlePolicy.is_flat` detects it so the compilers can emit the
byte-identical classic artifacts for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate
from repro.abe.policy import format_policy, parse_policy
from repro.core.context import Context
from repro.core.errors import PuzzleParameterError

__all__ = [
    "ACTIONS",
    "SCOPE_KINDS",
    "PolicyError",
    "PuzzlePolicy",
    "AccessRequest",
    "scope_label",
    "is_scope_label",
    "split_scope_label",
]

#: Actions a normalized request may name, mirroring the app verbs.
ACTIONS = ("share", "access", "explain", "retract")

#: Scope namespaces recognized by :func:`scope_label`.
SCOPE_KINDS = ("org", "group", "thread")

_SCOPE_PREFIX = "scope:"
_SEP = "\x1f"  # construction 2's question/answer separator


class PolicyError(PuzzleParameterError):
    """An invalid policy or policy request.

    Subclasses :class:`PuzzleParameterError`, so it crosses the wire
    under the existing ``puzzle-parameter`` taxonomy code.
    """


def scope_label(kind: str, name: str) -> str:
    """The requirement label of a scope gate: ``scope:<kind>/<name>``.

    The label is an ordinary puzzle question whose answer is the scope's
    membership secret (distributed to members out of band), so scope
    gates need no new verification machinery in either construction.
    """
    if kind not in SCOPE_KINDS:
        raise PolicyError(
            "unknown scope kind %r (expected one of %s)"
            % (kind, ", ".join(SCOPE_KINDS))
        )
    if not name or "/" in name or any(c.isspace() for c in name):
        raise PolicyError("scope name must be a non-empty word, got %r" % name)
    return "%s%s/%s" % (_SCOPE_PREFIX, kind, name)


def is_scope_label(label: str) -> bool:
    """Whether a requirement label names a scope gate."""
    if not label.startswith(_SCOPE_PREFIX):
        return False
    rest = label[len(_SCOPE_PREFIX) :]
    kind, slash, name = rest.partition("/")
    return bool(slash) and kind in SCOPE_KINDS and bool(name)


def split_scope_label(label: str) -> tuple[str, str]:
    """``(kind, name)`` of a scope label; raises on non-scope labels."""
    if not is_scope_label(label):
        raise PolicyError("not a scope label: %r" % label)
    kind, _, name = label[len(_SCOPE_PREFIX) :].partition("/")
    return kind, name


@dataclass(frozen=True)
class PuzzlePolicy:
    """The policy IR: an access tree over requirement labels.

    The root is always a gate (a single-leaf policy is normalized to the
    ``1 of (leaf)`` gate), leaf labels are distinct and separator-free,
    so one policy compiles cleanly to both constructions:

    * **C1** — a recursive share-of-shares split of the object secret
      (:func:`repro.policy.compile.share_plan`).
    * **C2** — leaf labels become (question, answer) CP-ABE attributes
      and the tree goes straight into ``Encrypt``.
    """

    tree: AccessTree

    def __post_init__(self) -> None:
        root = self.tree.root
        if isinstance(root, AttributeLeaf):
            # Normalize: the compilers, wire shape and explain traces all
            # assume a gate at the root; 1-of-1 is the same policy.
            root = ThresholdGate(1, (root,))
            object.__setattr__(self, "tree", AccessTree(root))
        labels = self.tree.attributes()
        if len(set(labels)) != len(labels):
            raise PolicyError(
                "policy requirement labels must be distinct, got %s" % labels
            )
        for label in labels:
            if _SEP in label:
                raise PolicyError(
                    "requirement label %r contains the reserved separator" % label
                )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "PuzzlePolicy":
        """Parse a cpabe-style policy expression into the IR."""
        return cls(parse_policy(text))

    @classmethod
    def from_k_of_n(cls, k: int, questions: list[str] | tuple[str, ...]) -> "PuzzlePolicy":
        """The degenerate flat policy: the paper's ``k of (q_1..q_n)``."""
        if not 0 < k <= len(questions):
            raise PolicyError(
                "need 0 < k <= n, got k=%d n=%d" % (k, len(questions))
            )
        return cls(AccessTree.k_of_n(k, list(questions)))

    # -- queries ---------------------------------------------------------------

    @property
    def text(self) -> str:
        """Canonical policy expression (parses back to the same tree)."""
        return format_policy(self.tree)

    @property
    def questions(self) -> tuple[str, ...]:
        """All requirement labels in depth-first leaf order."""
        return tuple(self.tree.attributes())

    @property
    def root_threshold(self) -> int:
        return self.tree.root.threshold

    def depth(self) -> int:
        """Height of the tree counting the root gate (flat policy = 1)."""

        def walk(node: Node) -> int:
            if isinstance(node, AttributeLeaf):
                return 0
            return 1 + max(walk(child) for child in node.children)

        return walk(self.tree.root)

    def is_flat(self) -> bool:
        """True for the paper's degenerate k-of-n shape (all leaves at
        the root gate) — the case the compilers map to the classic
        flat-puzzle artifacts."""
        return all(
            isinstance(child, AttributeLeaf) for child in self.tree.root.children
        )

    def scope_labels(self) -> tuple[str, ...]:
        """Scope gates appearing in this policy, in leaf order."""
        return tuple(q for q in self.questions if is_scope_label(q))

    def satisfied_by(self, known_questions: set[str] | frozenset[str]) -> bool:
        """Would a viewer who proves knowledge of exactly these
        requirement labels be granted?"""
        return self.tree.satisfied_by(known_questions)

    def missing_from(self, context: Context) -> tuple[str, ...]:
        """Requirement labels the context holds no answer for."""
        return tuple(q for q in self.questions if not context.knows(q))

    def require_answerable(self, context: Context) -> None:
        """Sharer-side check: the sharer must know every answer to
        compile the policy (both constructions bind answers into the
        artifact)."""
        missing = self.missing_from(context)
        if missing:
            raise PolicyError(
                "context has no answer for policy requirement(s): %s"
                % ", ".join(repr(q) for q in missing)
            )


@dataclass(frozen=True)
class AccessRequest:
    """A normalized Subject-Action-Object-Context policy request.

    The single shape every policy decision is phrased in: *subject* asks
    to perform *action* on *object_id*, claiming the knowledge in
    *context*. Normalization (strip + casefold the action, reject
    unknown verbs and blank subjects) happens at construction, so
    downstream code never re-validates.
    """

    subject: str
    action: str
    object_id: int | None = None
    context: Context | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        subject = self.subject.strip()
        if not subject:
            raise PolicyError("access request needs a non-empty subject")
        action = self.action.strip().casefold()
        if action not in ACTIONS:
            raise PolicyError(
                "unknown action %r (expected one of %s)"
                % (self.action, ", ".join(ACTIONS))
            )
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "action", action)

    def claimed_questions(self, policy: PuzzlePolicy) -> frozenset[str]:
        """Policy requirements the request's context claims to answer.

        Claimed, not proven — only the verifier (matching keyed hashes
        in C1, answer hashes in C2) can promote a claim to a match.
        """
        if self.context is None:
            return frozenset()
        return frozenset(
            q for q in policy.questions if self.context.knows(q)
        )
