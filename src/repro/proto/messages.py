"""Typed protocol messages and their byte codecs.

One dataclass per wire message. Each class carries a unique ``TYPE``
byte, an ``encode_body`` method and a ``decode_body`` classmethod;
:func:`encode_message` / :func:`decode_message` add and strip the
versioned envelope (:mod:`repro.proto.envelope`).

Message bodies reuse the canonical encodings the core layer already
defines (``Puzzle.to_bytes``, ``DisplayedPuzzle.to_bytes``, ...), so a
message's payload size equals the ``byte_size()`` the cost meter charges
— the wire layer adds only the envelope.

Failures cross the wire as :class:`ErrorReply`, which round-trips the
repository's exception taxonomy (:mod:`repro.core.errors`) by stable
code strings, preserving the transient/permanent split the resilience
layer keys on.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.construction1 import DisplayedPuzzle, PuzzleAnswers, ShareRelease
from repro.core.construction2 import AccessGrantC2, C2Upload, DisplayedPuzzleC2
from repro.core.errors import (
    AccessDeniedError,
    CircuitOpenError,
    PuzzleParameterError,
    ShareFailedError,
    TamperDetectedError,
    TransientNetworkError,
    TransientProviderError,
    TransientServiceError,
    UnknownPuzzleError,
    UnroutableMessageError,
)
from repro.core.puzzle import Puzzle
from repro.core.throttle import ThrottledError
from repro.osn.provider import OsnError, Post, User
from repro.osn.storage import StorageError
from repro.proto.envelope import WireFormatError, open_envelope, seal
from repro.util.codec import CodecError, Reader, blob, text, u8, u32

if TYPE_CHECKING:  # the policy plane is a runtime-lazy import (reply decode)
    from repro.policy.explain import Explanation

__all__ = [
    "Message",
    "MESSAGE_TYPES",
    "encode_message",
    "decode_message",
    "message_name",
    "StorePuzzleRequest",
    "StoreUploadRequest",
    "DisplayPuzzleRequest",
    "AnswerSubmission",
    "RetractPuzzleRequest",
    "RetractPrepareRequest",
    "RetractCommitRequest",
    "RetractAbortRequest",
    "PublishPostRequest",
    "FetchPostRequest",
    "RegisterUserRequest",
    "BefriendRequest",
    "SharePolicyRequest",
    "ExplainRequest",
    "StoragePutRequest",
    "StorageGetRequest",
    "StorageExistsRequest",
    "StorageDeleteRequest",
    "BatchRequest",
    "BatchReply",
    "StoreReply",
    "DisplayReplyC1",
    "DisplayReplyC2",
    "ReleaseReply",
    "GrantReply",
    "RetractReply",
    "RetractPrepareReply",
    "PostReply",
    "UserReply",
    "AckReply",
    "ExplainReply",
    "StoragePutReply",
    "StorageGetReply",
    "StorageBoolReply",
    "ErrorReply",
]

MESSAGE_TYPES: dict[int, type["Message"]] = {}


def _register(cls: type["Message"]) -> type["Message"]:
    if cls.TYPE in MESSAGE_TYPES:  # pragma: no cover - programming error
        raise ValueError("duplicate message type 0x%02x" % cls.TYPE)
    MESSAGE_TYPES[cls.TYPE] = cls
    return cls


class Message:
    """Base class: encode/decode glue around the per-class body codecs."""

    TYPE = -1

    def encode_body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def decode_body(cls, body: bytes) -> "Message":
        raise NotImplementedError


def encode_message(message: Message) -> bytes:
    return seal(message.TYPE, message.encode_body())


def decode_message(data: bytes) -> Message:
    msg_type, body = open_envelope(data)
    cls = MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise WireFormatError("unknown message type 0x%02x" % msg_type)
    return cls.decode_body(body)


def message_name(msg_type: int | None) -> str:
    cls = MESSAGE_TYPES.get(msg_type) if msg_type is not None else None
    return cls.__name__ if cls is not None else "invalid"


# -- shared field codecs -----------------------------------------------------


def _encode_user(user: User) -> bytes:
    return u32(user.user_id) + text(user.name)


def _decode_user(reader: Reader) -> User:
    return User(user_id=reader.u32(), name=reader.text())


def _encode_audience(audience: str | frozenset[int]) -> bytes:
    if audience == "friends":
        return u8(0)
    if audience == "public":
        return u8(1)
    if isinstance(audience, str):
        # An invalid audience string is still representable — the
        # provider, not the codec, owns that validation.
        return u8(3) + text(audience)
    members = sorted(audience)
    return u8(2) + u32(len(members)) + b"".join(u32(uid) for uid in members)


def _decode_audience(reader: Reader) -> str | frozenset[int]:
    tag = reader.u8()
    if tag == 0:
        return "friends"
    if tag == 1:
        return "public"
    if tag == 2:
        return frozenset(reader.u32() for _ in range(reader.u32()))
    if tag == 3:
        return reader.text()
    raise CodecError("unknown audience tag %d" % tag)


def _encode_post(post: Post) -> bytes:
    return (
        u32(post.post_id)
        + _encode_user(post.author)
        + text(post.content)
        + _encode_audience(post.audience)
    )


def _decode_post(reader: Reader) -> Post:
    return Post(
        post_id=reader.u32(),
        author=_decode_user(reader),
        content=reader.text(),
        audience=_decode_audience(reader),
    )


# ``random.Random`` state: (version, 625 words + index, optional gauss).
# Serializing the full state keeps the SP's question sampling
# deterministic for a caller-supplied rng even across the wire.
_RngState = tuple


def _encode_rng_state(state: _RngState | None) -> bytes:
    if state is None:
        return u8(0)
    version, words, gauss = state
    body = u8(1) + u32(version) + u32(len(words))
    body += b"".join(u32(word) for word in words)
    if gauss is None:
        body += u8(0)
    else:
        body += u8(1) + struct.pack(">d", gauss)
    return body


def _decode_rng_state(reader: Reader) -> _RngState | None:
    if reader.u8() == 0:
        return None
    version = reader.u32()
    words = tuple(reader.u32() for _ in range(reader.u32()))
    gauss = None
    if reader.u8():
        gauss = struct.unpack(">d", reader.take(8))[0]
    return (version, words, gauss)


def rng_from_state(state: _RngState | None) -> random.Random | None:
    """Rebuild a :class:`random.Random` from a decoded state tuple."""
    if state is None:
        return None
    rng = random.Random()
    try:
        rng.setstate((state[0], tuple(state[1]), state[2]))
    except (ValueError, TypeError, IndexError) as exc:
        raise CodecError("invalid rng state in display request") from exc
    return rng


# -- requests ----------------------------------------------------------------


@_register
@dataclass(frozen=True)
class StorePuzzleRequest(Message):
    """C1 Upload: the sharer ships Z_O to the SP."""

    TYPE = 0x01
    puzzle: Puzzle

    def encode_body(self) -> bytes:
        return self.puzzle.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "StorePuzzleRequest":
        return cls(puzzle=Puzzle.from_bytes(body))


@_register
@dataclass(frozen=True)
class StoreUploadRequest(Message):
    """C2 Upload: tau' + PK + MK + URL_O to the SP."""

    TYPE = 0x02
    record: C2Upload

    def encode_body(self) -> bytes:
        return self.record.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "StoreUploadRequest":
        return cls(record=C2Upload.from_bytes(body))


@_register
@dataclass(frozen=True)
class DisplayPuzzleRequest(Message):
    """DisplayPuzzle: ask the SP for the question subset."""

    TYPE = 0x03
    construction: int
    puzzle_id: int
    rng_state: _RngState | None = None

    def encode_body(self) -> bytes:
        return (
            u8(self.construction)
            + u32(self.puzzle_id)
            + _encode_rng_state(self.rng_state)
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "DisplayPuzzleRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        rng_state = _decode_rng_state(reader)
        reader.done()
        return cls(
            construction=construction, puzzle_id=puzzle_id, rng_state=rng_state
        )


@_register
@dataclass(frozen=True)
class AnswerSubmission(Message):
    """Verify: hashed answers per question (never plaintext answers).

    C1 digests are raw HMAC bytes; C2 digests are hex strings carried as
    their ASCII bytes. ``requester`` feeds per-requester guess throttling
    when the service enforces it.
    """

    TYPE = 0x04
    construction: int
    puzzle_id: int
    requester: str
    digests: dict[str, bytes] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        body = u8(self.construction) + u32(self.puzzle_id) + text(self.requester)
        body += u32(len(self.digests))
        for question, digest in self.digests.items():
            body += text(question) + blob(digest)
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "AnswerSubmission":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        requester = reader.text()
        digests: dict[str, bytes] = {}
        for _ in range(reader.u32()):
            question = reader.text()
            digests[question] = reader.blob()
        reader.done()
        return cls(
            construction=construction,
            puzzle_id=puzzle_id,
            requester=requester,
            digests=digests,
        )

    def to_answers_c1(self) -> PuzzleAnswers:
        return PuzzleAnswers(puzzle_id=self.puzzle_id, digests=dict(self.digests))

    def to_answers_c2(self):
        from repro.core.construction2 import PuzzleAnswersC2

        try:
            digests = {q: d.decode("ascii") for q, d in self.digests.items()}
        except UnicodeDecodeError as exc:
            raise CodecError("C2 digest is not hex text") from exc
        return PuzzleAnswersC2(puzzle_id=self.puzzle_id, digests=digests)


@_register
@dataclass(frozen=True)
class RetractPuzzleRequest(Message):
    """Remove a puzzle registration (retraction or publish rollback)."""

    TYPE = 0x05
    construction: int
    puzzle_id: int

    def encode_body(self) -> bytes:
        return u8(self.construction) + u32(self.puzzle_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractPuzzleRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        reader.done()
        return cls(construction=construction, puzzle_id=puzzle_id)


@_register
@dataclass(frozen=True)
class RetractPrepareRequest(Message):
    """Retract saga phase 1: hide the registration, learn URL_O.

    A prepared registration stops serving display/verify immediately but
    is restorable by :class:`RetractAbortRequest` until the commit —
    the cross-plane contract: no live registration ever points at a
    blob the DH plane has already deleted.
    """

    TYPE = 0x0C
    construction: int
    puzzle_id: int

    def encode_body(self) -> bytes:
        return u8(self.construction) + u32(self.puzzle_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractPrepareRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        reader.done()
        return cls(construction=construction, puzzle_id=puzzle_id)


@_register
@dataclass(frozen=True)
class RetractCommitRequest(Message):
    """Retract saga phase 2: discard the prepared registration for good."""

    TYPE = 0x0D
    construction: int
    puzzle_id: int

    def encode_body(self) -> bytes:
        return u8(self.construction) + u32(self.puzzle_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractCommitRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        reader.done()
        return cls(construction=construction, puzzle_id=puzzle_id)


@_register
@dataclass(frozen=True)
class RetractAbortRequest(Message):
    """Retract saga rollback: restore a prepared registration."""

    TYPE = 0x0E
    construction: int
    puzzle_id: int

    def encode_body(self) -> bytes:
        return u8(self.construction) + u32(self.puzzle_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractAbortRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        reader.done()
        return cls(construction=construction, puzzle_id=puzzle_id)


@_register
@dataclass(frozen=True)
class PublishPostRequest(Message):
    """Place the hyperlink post on the sharer's profile."""

    TYPE = 0x06
    author: User
    content: str
    audience: str | frozenset[int] = "friends"

    def encode_body(self) -> bytes:
        return (
            _encode_user(self.author)
            + text(self.content)
            + _encode_audience(self.audience)
        )

    @classmethod
    def decode_body(cls, body: bytes) -> "PublishPostRequest":
        reader = Reader(body)
        author = _decode_user(reader)
        content = reader.text()
        audience = _decode_audience(reader)
        reader.done()
        return cls(author=author, content=content, audience=audience)


@_register
@dataclass(frozen=True)
class FetchPostRequest(Message):
    """Static-ACL read: fetch a post as a given viewer."""

    TYPE = 0x07
    viewer: User
    post_id: int

    def encode_body(self) -> bytes:
        return _encode_user(self.viewer) + u32(self.post_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "FetchPostRequest":
        reader = Reader(body)
        viewer = _decode_user(reader)
        post_id = reader.u32()
        reader.done()
        return cls(viewer=viewer, post_id=post_id)


@_register
@dataclass(frozen=True)
class RegisterUserRequest(Message):
    """Create an account on the SP — the membership verb a *remote*
    client needs before it can publish the hyperlink post. The local
    platform keeps calling ``provider.register_user`` directly; over the
    wire this travels like everything else and its profile fields land
    in the audit trail (they are public OSN profile data, never puzzle
    answers)."""

    TYPE = 0x0F
    name: str
    profile: dict[str, str] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        body = text(self.name) + u32(len(self.profile))
        for key in sorted(self.profile):
            body += text(key) + text(self.profile[key])
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "RegisterUserRequest":
        reader = Reader(body)
        name = reader.text()
        profile: dict[str, str] = {}
        for _ in range(reader.u32()):
            key = reader.text()
            profile[key] = reader.text()
        reader.done()
        return cls(name=name, profile=profile)


@_register
@dataclass(frozen=True)
class BefriendRequest(Message):
    """Make two accounts friends (symmetric, per the paper's model)."""

    TYPE = 0x10
    a: User
    b: User

    def encode_body(self) -> bytes:
        return _encode_user(self.a) + _encode_user(self.b)

    @classmethod
    def decode_body(cls, body: bytes) -> "BefriendRequest":
        reader = Reader(body)
        a = _decode_user(reader)
        b = _decode_user(reader)
        reader.done()
        return cls(a=a, b=b)


@_register
@dataclass(frozen=True)
class SharePolicyRequest(Message):
    """Attach the canonical policy text to a stored registration.

    The sharer sends this right after Store when the puzzle was compiled
    from a nested policy, so later Explain replies can echo the policy
    the *sharer* wrote rather than a reconstruction. The text contains
    only questions and gate structure — the same strings DisplayPuzzle
    already serves — never answers.
    """

    TYPE = 0x11
    construction: int
    puzzle_id: int
    policy_text: str

    def encode_body(self) -> bytes:
        return u8(self.construction) + u32(self.puzzle_id) + text(self.policy_text)

    @classmethod
    def decode_body(cls, body: bytes) -> "SharePolicyRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        policy_text = reader.text()
        reader.done()
        return cls(
            construction=construction,
            puzzle_id=puzzle_id,
            policy_text=policy_text,
        )


@_register
@dataclass(frozen=True)
class ExplainRequest(Message):
    """Explain: the same hashed evidence as Verify, answered with the
    gate-by-gate derivation instead of (never in addition to) the
    release. A deny explains without raising; throttled services charge
    denied explains against the shared Verify budget.
    """

    TYPE = 0x12
    construction: int
    puzzle_id: int
    requester: str
    digests: dict[str, bytes] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        body = u8(self.construction) + u32(self.puzzle_id) + text(self.requester)
        body += u32(len(self.digests))
        for question, digest in self.digests.items():
            body += text(question) + blob(digest)
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "ExplainRequest":
        reader = Reader(body)
        construction = reader.u8()
        puzzle_id = reader.u32()
        requester = reader.text()
        digests: dict[str, bytes] = {}
        for _ in range(reader.u32()):
            question = reader.text()
            digests[question] = reader.blob()
        reader.done()
        return cls(
            construction=construction,
            puzzle_id=puzzle_id,
            requester=requester,
            digests=digests,
        )

    def to_answers_c1(self) -> PuzzleAnswers:
        return PuzzleAnswers(puzzle_id=self.puzzle_id, digests=dict(self.digests))

    def to_answers_c2(self):
        from repro.core.construction2 import PuzzleAnswersC2

        try:
            digests = {q: d.decode("ascii") for q, d in self.digests.items()}
        except UnicodeDecodeError as exc:
            raise CodecError("C2 digest is not hex text") from exc
        return PuzzleAnswersC2(puzzle_id=self.puzzle_id, digests=digests)


@_register
@dataclass(frozen=True)
class StoragePutRequest(Message):
    TYPE = 0x08
    data: bytes

    def encode_body(self) -> bytes:
        return blob(self.data)

    @classmethod
    def decode_body(cls, body: bytes) -> "StoragePutRequest":
        reader = Reader(body)
        data = reader.blob()
        reader.done()
        return cls(data=data)


@_register
@dataclass(frozen=True)
class StorageGetRequest(Message):
    TYPE = 0x09
    url: str

    def encode_body(self) -> bytes:
        return text(self.url)

    @classmethod
    def decode_body(cls, body: bytes) -> "StorageGetRequest":
        reader = Reader(body)
        url = reader.text()
        reader.done()
        return cls(url=url)


@_register
@dataclass(frozen=True)
class StorageExistsRequest(Message):
    TYPE = 0x0A
    url: str

    def encode_body(self) -> bytes:
        return text(self.url)

    @classmethod
    def decode_body(cls, body: bytes) -> "StorageExistsRequest":
        reader = Reader(body)
        url = reader.text()
        reader.done()
        return cls(url=url)


@_register
@dataclass(frozen=True)
class StorageDeleteRequest(Message):
    TYPE = 0x0B
    url: str

    def encode_body(self) -> bytes:
        return text(self.url)

    @classmethod
    def decode_body(cls, body: bytes) -> "StorageDeleteRequest":
        reader = Reader(body)
        url = reader.text()
        reader.done()
        return cls(url=url)


# -- batching ----------------------------------------------------------------


@_register
@dataclass(frozen=True)
class BatchRequest(Message):
    """N member requests in one round trip.

    Members ride as *fully enveloped frames* (each its own sealed
    message), decoded one by one at execution time: a corrupted member
    yields its own per-member ``bad-message`` :class:`ErrorReply` while
    its siblings execute normally — the same isolation :func:`~repro.proto.frontends.serve`
    gives a lone frame. Batches cannot nest; a batch member that is
    itself a batch is answered with an ``unroutable`` error.
    """

    TYPE = 0x20
    frames: tuple[bytes, ...]

    def encode_body(self) -> bytes:
        body = u32(len(self.frames))
        for frame in self.frames:
            body += blob(frame)
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "BatchRequest":
        reader = Reader(body)
        frames = tuple(reader.blob() for _ in range(reader.u32()))
        reader.done()
        return cls(frames=frames)

    @classmethod
    def of(cls, *messages: Message) -> "BatchRequest":
        """Seal each message into its member frame."""
        for message in messages:
            if isinstance(message, BatchRequest):
                raise ValueError("batch members cannot be batches")
        return cls(frames=tuple(encode_message(m) for m in messages))


@_register
@dataclass(frozen=True)
class BatchReply(Message):
    """Member replies, one enveloped frame per request, in request
    order. Failed members carry an :class:`ErrorReply` frame in their
    slot; success and failure coexist in one reply."""

    TYPE = 0x60
    frames: tuple[bytes, ...]

    def encode_body(self) -> bytes:
        body = u32(len(self.frames))
        for frame in self.frames:
            body += blob(frame)
        return body

    @classmethod
    def decode_body(cls, body: bytes) -> "BatchReply":
        reader = Reader(body)
        frames = tuple(reader.blob() for _ in range(reader.u32()))
        reader.done()
        return cls(frames=frames)

    @classmethod
    def of(cls, *messages: Message) -> "BatchReply":
        return cls(frames=tuple(encode_message(m) for m in messages))


# -- replies -----------------------------------------------------------------


@_register
@dataclass(frozen=True)
class StoreReply(Message):
    """The SP-assigned puzzle identifier."""

    TYPE = 0x40
    puzzle_id: int

    def encode_body(self) -> bytes:
        return u32(self.puzzle_id)

    @classmethod
    def decode_body(cls, body: bytes) -> "StoreReply":
        reader = Reader(body)
        puzzle_id = reader.u32()
        reader.done()
        return cls(puzzle_id=puzzle_id)


@_register
@dataclass(frozen=True)
class DisplayReplyC1(Message):
    TYPE = 0x41
    displayed: DisplayedPuzzle

    def encode_body(self) -> bytes:
        return self.displayed.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "DisplayReplyC1":
        return cls(displayed=DisplayedPuzzle.from_bytes(body))


@_register
@dataclass(frozen=True)
class DisplayReplyC2(Message):
    TYPE = 0x42
    displayed: DisplayedPuzzleC2

    def encode_body(self) -> bytes:
        return self.displayed.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "DisplayReplyC2":
        return cls(displayed=DisplayedPuzzleC2.from_bytes(body))


@_register
@dataclass(frozen=True)
class ReleaseReply(Message):
    """C1 Verify success: blinded shares + URL_O."""

    TYPE = 0x43
    release: ShareRelease

    def encode_body(self) -> bytes:
        return self.release.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "ReleaseReply":
        return cls(release=ShareRelease.from_bytes(body))


@_register
@dataclass(frozen=True)
class GrantReply(Message):
    """C2 Verify success: URL_O + PK + MK."""

    TYPE = 0x44
    grant: AccessGrantC2

    def encode_body(self) -> bytes:
        return self.grant.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "GrantReply":
        return cls(grant=AccessGrantC2.from_bytes(body))


@_register
@dataclass(frozen=True)
class RetractReply(Message):
    TYPE = 0x45
    removed: bool

    def encode_body(self) -> bytes:
        return u8(int(self.removed))

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractReply":
        reader = Reader(body)
        removed = bool(reader.u8())
        reader.done()
        return cls(removed=removed)


@_register
@dataclass(frozen=True)
class RetractPrepareReply(Message):
    """The prepared registration's URL_O — what the DH plane must delete
    before the saga may commit."""

    TYPE = 0x4A
    url: str

    def encode_body(self) -> bytes:
        return text(self.url)

    @classmethod
    def decode_body(cls, body: bytes) -> "RetractPrepareReply":
        reader = Reader(body)
        url = reader.text()
        reader.done()
        return cls(url=url)


@_register
@dataclass(frozen=True)
class PostReply(Message):
    TYPE = 0x46
    post: Post

    def encode_body(self) -> bytes:
        return _encode_post(self.post)

    @classmethod
    def decode_body(cls, body: bytes) -> "PostReply":
        reader = Reader(body)
        post = _decode_post(reader)
        reader.done()
        return cls(post=post)


@_register
@dataclass(frozen=True)
class UserReply(Message):
    """The freshly registered account."""

    TYPE = 0x4B
    user: User

    def encode_body(self) -> bytes:
        return _encode_user(self.user)

    @classmethod
    def decode_body(cls, body: bytes) -> "UserReply":
        reader = Reader(body)
        user = _decode_user(reader)
        reader.done()
        return cls(user=user)


@_register
@dataclass(frozen=True)
class AckReply(Message):
    """A bare success acknowledgement (befriend and friends).

    Failures never travel as a negative ack — they cross the wire as
    :class:`ErrorReply` with their taxonomy code, like everywhere else.
    """

    TYPE = 0x4C

    def encode_body(self) -> bytes:
        return b""

    @classmethod
    def decode_body(cls, body: bytes) -> "AckReply":
        Reader(body).done()
        return cls()


@_register
@dataclass(frozen=True)
class ExplainReply(Message):
    """The grant/deny derivation for one Explain request.

    Carries :class:`repro.policy.explain.Explanation` in its canonical
    encoding — questions and gate arithmetic only, no answer material
    (the curious-SP test pins this byte-for-byte).
    """

    TYPE = 0x4D
    explanation: "Explanation"

    def encode_body(self) -> bytes:
        return self.explanation.to_bytes()

    @classmethod
    def decode_body(cls, body: bytes) -> "ExplainReply":
        from repro.policy.explain import Explanation

        return cls(explanation=Explanation.from_bytes(body))


@_register
@dataclass(frozen=True)
class StoragePutReply(Message):
    TYPE = 0x47
    url: str

    def encode_body(self) -> bytes:
        return text(self.url)

    @classmethod
    def decode_body(cls, body: bytes) -> "StoragePutReply":
        reader = Reader(body)
        url = reader.text()
        reader.done()
        return cls(url=url)


@_register
@dataclass(frozen=True)
class StorageGetReply(Message):
    TYPE = 0x48
    data: bytes

    def encode_body(self) -> bytes:
        return blob(self.data)

    @classmethod
    def decode_body(cls, body: bytes) -> "StorageGetReply":
        reader = Reader(body)
        data = reader.blob()
        reader.done()
        return cls(data=data)


@_register
@dataclass(frozen=True)
class StorageBoolReply(Message):
    """Reply to exists/delete: a single boolean."""

    TYPE = 0x49
    value: bool

    def encode_body(self) -> bytes:
        return u8(int(self.value))

    @classmethod
    def decode_body(cls, body: bytes) -> "StorageBoolReply":
        reader = Reader(body)
        value = bool(reader.u8())
        reader.done()
        return cls(value=value)


# -- the error reply and the taxonomy mapping --------------------------------

# Ordered most-specific-first: the first isinstance match wins. Codes are
# wire-stable strings; classes are looked up on the receiving side to
# re-raise the same exception type (and therefore the same
# transient/permanent retry classification).
def _error_registry() -> list[tuple[str, type[BaseException]]]:
    from repro.osn.faults import TransientStorageError

    return [
        ("throttled", ThrottledError),
        ("access-denied", AccessDeniedError),
        ("tamper-detected", TamperDetectedError),
        ("unknown-puzzle", UnknownPuzzleError),
        ("unroutable", UnroutableMessageError),
        ("puzzle-parameter", PuzzleParameterError),
        ("share-failed", ShareFailedError),
        ("circuit-open", CircuitOpenError),
        ("transient-storage", TransientStorageError),
        ("transient-provider", TransientProviderError),
        ("transient-network", TransientNetworkError),
        ("transient-service", TransientServiceError),
        ("storage", StorageError),
        ("osn", OsnError),
    ]


@_register
@dataclass(frozen=True)
class ErrorReply(Message):
    """A failure crossing the wire, typed by taxonomy code.

    ``bad-message`` (transient) marks a request frame the server could
    not decode; ``internal`` marks an unrecognized server-side exception
    and is deliberately NOT a :class:`SocialPuzzleError` on re-raise, so
    atomic-share handling wraps it in :class:`ShareFailedError` exactly
    as it would a local untyped bug.
    """

    TYPE = 0x7F
    code: str
    message: str
    transient: bool

    def encode_body(self) -> bytes:
        return text(self.code) + text(self.message) + u8(int(self.transient))

    @classmethod
    def decode_body(cls, body: bytes) -> "ErrorReply":
        reader = Reader(body)
        code = reader.text()
        message = reader.text()
        transient = bool(reader.u8())
        reader.done()
        return cls(code=code, message=message, transient=transient)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorReply":
        for code, klass in _error_registry():
            if isinstance(exc, klass):
                return cls(
                    code=code,
                    message=str(exc),
                    transient=isinstance(exc, TransientServiceError),
                )
        return cls(code="internal", message=str(exc), transient=False)

    def to_exception(self) -> BaseException:
        from repro.proto.client import RemoteServiceError

        if self.code == "bad-message":
            return TransientNetworkError(
                "peer rejected a corrupted frame: %s" % self.message
            )
        for code, klass in _error_registry():
            if code == self.code:
                return klass(self.message)
        return RemoteServiceError(
            "remote error (%s): %s" % (self.code, self.message)
        )
