"""The message bus: the one seam every wire frame crosses.

A :class:`MessageBus` carries serialized requests to a
``dispatch(bytes) -> bytes`` target and serialized replies back. Because
every frame crosses this one choke point, the cross-cutting concerns
attach here exactly once:

* observability — a ``bus.dispatch`` span per round trip, request
  counters and a byte-size histogram (``proto.msg_bytes``);
* surveillance audit — every frame the SP-side handles is recorded into
  an :class:`~repro.osn.storage.AuditTrail`, making the paper's
  "curious SP" claim checkable against the *actual wire bytes*;
* network modelling — an optional :class:`~repro.osn.network.NetworkLink`
  charges per-frame transfer costs.

The link is ``None`` by default: protocol-step transfer costs are
modelled by the apps' :class:`~repro.sim.timing.CostMeter` (the paper's
Figure 10 breakdown), and charging the bus too would double-count.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.metrics import BYTE_BOUNDS
from repro.obs.runtime import count, maybe_span, observe
from repro.proto.envelope import peek_type
from repro.proto.messages import message_name

__all__ = ["MessageBus", "wire_summary"]


def wire_summary(data: bytes) -> str:
    """A human-readable one-liner for a frame: type name + size."""
    return "%s (%d bytes)" % (message_name(peek_type(data)), len(data))


class MessageBus:
    """Carries frames between a protocol client and a dispatch frontend."""

    def __init__(
        self,
        dispatcher,
        audit=None,
        link=None,
    ):
        self.dispatcher = dispatcher
        self.audit = audit
        self.link = link

    @property
    def _target(self) -> Callable[[bytes], bytes]:
        inner = self.dispatcher
        return inner.dispatch if hasattr(inner, "dispatch") else inner

    def dispatch(self, request: bytes) -> bytes:
        """One round trip: request frame in, reply frame out."""
        with maybe_span(
            "bus.dispatch",
            msg=message_name(peek_type(request)),
            num_bytes=len(request),
        ):
            count("proto.requests")
            observe("proto.msg_bytes", len(request), BYTE_BOUNDS)
            if self.audit is not None:
                self.audit.record(request)
            if self.link is not None:
                self.link.upload(len(request), wire_summary(request))
            reply = self._target(request)
            observe("proto.msg_bytes", len(reply), BYTE_BOUNDS)
            if self.audit is not None:
                self.audit.record(reply)
            if self.link is not None:
                self.link.download(len(reply), wire_summary(reply))
            return reply
