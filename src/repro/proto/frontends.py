"""Serve loops and per-substrate message frontends.

:func:`serve` is the one place a serialized request becomes a serialized
reply: decode, handle, and map *every* failure onto the wire — a frame
that cannot be decoded answers with a transient ``bad-message`` error
(resending an uncorrupted copy may well succeed), and handler exceptions
become :class:`~repro.proto.messages.ErrorReply` with their taxonomy
code. A dispatch frontend therefore never raises; bad input costs the
caller one round trip, not the server its loop.

``ProviderFrontend`` and ``StorageFrontend`` give the OSN substrates
their ``dispatch(bytes) -> bytes`` face; the puzzle state machines live
in :class:`~repro.proto.engine.PuzzleProtocolEngine`, which routes
substrate-bound messages here.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import UnroutableMessageError
from repro.obs.runtime import count
from repro.proto.messages import (
    AckReply,
    BatchReply,
    BatchRequest,
    BefriendRequest,
    ErrorReply,
    FetchPostRequest,
    Message,
    PostReply,
    PublishPostRequest,
    RegisterUserRequest,
    StorageBoolReply,
    StorageDeleteRequest,
    StorageExistsRequest,
    StorageGetReply,
    StorageGetRequest,
    StoragePutReply,
    StoragePutRequest,
    UserReply,
    decode_message,
    encode_message,
)
from repro.util.codec import CodecError

__all__ = ["serve", "serve_batch", "ProviderFrontend", "StorageFrontend"]


def serve(request: bytes, handler: Callable[[Message], Message]) -> bytes:
    """Decode -> handle -> encode, never raising across the wire."""
    try:
        message = decode_message(request)
    except CodecError as exc:
        count("proto.bad_message")
        reply: Message = ErrorReply(
            code="bad-message", message=str(exc), transient=True
        )
    else:
        try:
            reply = handler(message)
        except Exception as exc:
            count("proto.error_replies")
            reply = ErrorReply.from_exception(exc)
    return encode_message(reply)


def serve_batch(
    batch: BatchRequest, handler: Callable[[Message], Message]
) -> BatchReply:
    """Execute every member frame through :func:`serve`, in order.

    Member isolation is the contract: a malformed or failing member
    produces its own :class:`~repro.proto.messages.ErrorReply` frame in
    its reply slot while its siblings execute normally. Nested batches
    are refused per member with an ``unroutable`` error rather than
    recursing.
    """

    def member_handler(message: Message) -> Message:
        if isinstance(message, BatchRequest):
            raise UnroutableMessageError("batch members cannot be batches")
        return handler(message)

    count("proto.batch.requests")
    count("proto.batch.members", len(batch.frames))
    return BatchReply(
        frames=tuple(serve(frame, member_handler) for frame in batch.frames)
    )


class ProviderFrontend:
    """Wire face of a :class:`~repro.osn.provider.ServiceProvider`:
    profile posts and static-ACL reads."""

    def __init__(self, provider):
        self.provider = provider

    def handle(self, message: Message) -> Message:
        if isinstance(message, BatchRequest):
            return serve_batch(message, self.handle)
        if isinstance(message, PublishPostRequest):
            post = self.provider.post(
                message.author, message.content, audience=message.audience
            )
            return PostReply(post=post)
        if isinstance(message, FetchPostRequest):
            return PostReply(
                post=self.provider.get_post(message.viewer, message.post_id)
            )
        if isinstance(message, RegisterUserRequest):
            return UserReply(
                user=self.provider.register_user(message.name, dict(message.profile))
            )
        if isinstance(message, BefriendRequest):
            self.provider.befriend(message.a, message.b)
            return AckReply()
        raise UnroutableMessageError(
            "provider frontend cannot serve %s" % type(message).__name__
        )

    def dispatch(self, request: bytes) -> bytes:
        return serve(request, self.handle)


class StorageFrontend:
    """Wire face of a :class:`~repro.osn.storage.StorageHost` (DH)."""

    def __init__(self, storage):
        self.storage = storage

    def handle(self, message: Message) -> Message:
        if isinstance(message, BatchRequest):
            return serve_batch(message, self.handle)
        if isinstance(message, StoragePutRequest):
            return StoragePutReply(url=self.storage.put(message.data))
        if isinstance(message, StorageGetRequest):
            return StorageGetReply(data=self.storage.get(message.url))
        if isinstance(message, StorageExistsRequest):
            return StorageBoolReply(value=self.storage.exists(message.url))
        if isinstance(message, StorageDeleteRequest):
            return StorageBoolReply(value=self.storage.delete(message.url))
        raise UnroutableMessageError(
            "storage frontend cannot serve %s" % type(message).__name__
        )

    def dispatch(self, request: bytes) -> bytes:
        return serve(request, self.handle)
