"""Versioned wire envelope for every protocol message.

Frame layout (all integers big-endian, built on :mod:`repro.util.codec`):

    +-------+---------+----------+-----------------+----------+
    | magic | version | msg type | body (u32-len)  | crc32    |
    | "SPW" | u8      | u8       | 4 + N bytes     | u32      |
    +-------+---------+----------+-----------------+----------+

The trailing CRC-32 covers everything before it, so a bit flip or a
truncation anywhere in the frame is detected at decode time and surfaces
as a :class:`WireFormatError` — the engine answers those with a
*transient* ``bad-message`` error, because a corrupted frame is exactly
the kind of fault a resend fixes. The checksum is an integrity hint
against mundane corruption, not an authenticator; authenticated framing
is the secure channel's job (:mod:`repro.osn.securechannel`).
"""

from __future__ import annotations

import zlib

from repro.util.codec import CodecError, Reader, blob, u8, u32

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "ENVELOPE_OVERHEAD",
    "WireFormatError",
    "seal",
    "open_envelope",
    "peek_type",
]

MAGIC = b"SPW"
WIRE_VERSION = 1

# magic(3) + version(1) + type(1) + body length prefix(4) + crc32(4).
ENVELOPE_OVERHEAD = len(MAGIC) + 1 + 1 + 4 + 4


class WireFormatError(CodecError):
    """A frame failed envelope validation (magic, version, checksum...)."""


def seal(msg_type: int, body: bytes) -> bytes:
    """Wrap a message body in a versioned, checksummed frame."""
    frame = MAGIC + u8(WIRE_VERSION) + u8(msg_type) + blob(body)
    return frame + u32(zlib.crc32(frame))


def open_envelope(data: bytes) -> tuple[int, bytes]:
    """Validate a frame; returns ``(msg_type, body)`` or raises
    :class:`WireFormatError` on any malformation."""
    reader = Reader(data)
    if reader.take(len(MAGIC)) != MAGIC:
        raise WireFormatError("bad magic — not a social-puzzle wire frame")
    version = reader.u8()
    if version != WIRE_VERSION:
        raise WireFormatError(
            "unsupported wire version %d (this build speaks %d)"
            % (version, WIRE_VERSION)
        )
    msg_type = reader.u8()
    body = reader.blob()
    checksum = reader.u32()
    reader.done()
    if zlib.crc32(data[:-4]) != checksum:
        raise WireFormatError("checksum mismatch — frame corrupted in transit")
    return msg_type, body


def peek_type(data: bytes) -> int | None:
    """Best-effort read of the frame's message type without validating
    the body — for labels and traces only, never for dispatch."""
    if len(data) < len(MAGIC) + 2 or data[: len(MAGIC)] != MAGIC:
        return None
    return data[len(MAGIC) + 1]
