"""Typed client stubs over the message bus.

A :class:`ProtocolClient` turns method calls into wire frames and reply
frames back into domain objects. Each round trip runs under the same
span label and retry policy the apps used before the wire existed
(``sp.store_puzzle``, ``sp.verify``, ...), so traces, retry metrics and
backoff behaviour are indistinguishable from the pre-protocol layering —
only the transport changed.

Failure mapping is the inverse of
:meth:`~repro.proto.messages.ErrorReply.from_exception`: taxonomy-coded
errors re-raise as their original exception classes (keeping the
transient/permanent retry classification), a reply frame that cannot be
decoded raises :class:`~repro.core.errors.TransientNetworkError`, and an
unrecognized remote failure raises :class:`RemoteServiceError` — a plain
``RuntimeError`` and deliberately *not* a ``SocialPuzzleError``, so the
atomic-share path wraps it in ``ShareFailedError`` exactly as it would a
local untyped bug.
"""

from __future__ import annotations

import random

from repro.core.construction1 import DisplayedPuzzle, Puzzle, PuzzleAnswers, ShareRelease
from repro.core.construction2 import (
    AccessGrantC2,
    C2Upload,
    DisplayedPuzzleC2,
    PuzzleAnswersC2,
)
from repro.core.errors import TransientNetworkError
from repro.obs.runtime import maybe_span
from repro.osn.provider import Post, User
from repro.proto.messages import (
    AnswerSubmission,
    BatchReply,
    BatchRequest,
    BefriendRequest,
    DisplayPuzzleRequest,
    ErrorReply,
    ExplainRequest,
    FetchPostRequest,
    Message,
    PublishPostRequest,
    RegisterUserRequest,
    RetractAbortRequest,
    RetractCommitRequest,
    RetractPrepareRequest,
    RetractPuzzleRequest,
    SharePolicyRequest,
    StoragePutRequest,
    StorageDeleteRequest,
    StorageExistsRequest,
    StorageGetRequest,
    StorePuzzleRequest,
    StoreUploadRequest,
    decode_message,
    encode_message,
)
from repro.util.codec import CodecError

__all__ = ["ProtocolClient", "RemoteServiceError"]


class RemoteServiceError(RuntimeError):
    """An unrecognized failure reported by the remote side."""


class ProtocolClient:
    """Encode, dispatch, decode — with spans and retries per request."""

    def __init__(self, bus, retry=None):
        self.bus = bus
        self.retry = retry

    # -- the round trip ----------------------------------------------------------

    def _roundtrip(self, label: str, message: Message) -> Message:
        request = encode_message(message)

        def exchange() -> Message:
            raw = self.bus.dispatch(request)
            try:
                reply = decode_message(raw)
            except CodecError as exc:
                raise TransientNetworkError(
                    "reply frame corrupted in transit: %s" % exc
                ) from exc
            if isinstance(reply, ErrorReply):
                raise reply.to_exception()
            return reply

        with maybe_span(label):
            if self.retry is None:
                return exchange()
            return self.retry.call(exchange, label)

    # -- batched round trips -----------------------------------------------------

    def call_batch(
        self,
        label: str,
        messages: "list[Message] | tuple[Message, ...]",
        return_exceptions: bool = False,
    ) -> list:
        """Submit every message in ONE BatchRequest round trip.

        Returns the decoded member replies in request order. A failed
        member decodes to its taxonomy exception: with
        ``return_exceptions=True`` it is returned *in place* (so callers
        can act on partial success), otherwise the first member failure
        raises — after the whole batch executed server-side either way.
        The retry policy wraps only whole-batch transport failures;
        per-member errors are never retried here, since their siblings
        already committed.
        """
        reply = self._roundtrip(label, BatchRequest.of(*messages))
        if not isinstance(reply, BatchReply):
            raise RemoteServiceError(
                "expected BatchReply, got %s" % type(reply).__name__
            )
        if len(reply.frames) != len(messages):
            raise RemoteServiceError(
                "batch reply carries %d members for %d requests"
                % (len(reply.frames), len(messages))
            )
        results: list = []
        first_error: BaseException | None = None
        for frame in reply.frames:
            member: object
            try:
                decoded = decode_message(frame)
            except CodecError as exc:
                member = TransientNetworkError(
                    "batch member corrupted in transit: %s" % exc
                )
            else:
                if isinstance(decoded, ErrorReply):
                    member = decoded.to_exception()
                else:
                    member = decoded
            if first_error is None and isinstance(member, BaseException):
                first_error = member
            results.append(member)
        if first_error is not None and not return_exceptions:
            raise first_error
        return results

    def storage_get_many(
        self, urls: "list[str] | tuple[str, ...]", return_exceptions: bool = False
    ) -> list:
        """Fetch every URL in one round trip; see :meth:`call_batch` for
        the per-member failure contract."""
        replies = self.call_batch(
            "dh.get_many",
            [StorageGetRequest(url=url) for url in urls],
            return_exceptions=return_exceptions,
        )
        return [
            reply.data if isinstance(reply, Message) else reply for reply in replies
        ]

    def submit_answers_c1_batched(
        self, answers_list: "list[PuzzleAnswers]", requester: str
    ) -> list[ShareRelease]:
        """Verify several C1 answer sets in one SP-plane round trip."""
        submissions = [
            AnswerSubmission(
                construction=1,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests=dict(answers.digests),
            )
            for answers in answers_list
        ]
        return [reply.release for reply in self.call_batch("sp.verify", submissions)]

    def submit_answers_c2_batched(
        self, answers_list: "list[PuzzleAnswersC2]", requester: str
    ) -> list[AccessGrantC2]:
        """Verify several C2 answer sets in one SP-plane round trip."""
        submissions = [
            AnswerSubmission(
                construction=2,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests={q: d.encode("ascii") for q, d in answers.digests.items()},
            )
            for answers in answers_list
        ]
        return [reply.grant for reply in self.call_batch("sp.verify", submissions)]

    # -- puzzle protocol ---------------------------------------------------------

    def store_puzzle(self, puzzle: Puzzle) -> int:
        reply = self._roundtrip("sp.store_puzzle", StorePuzzleRequest(puzzle=puzzle))
        return reply.puzzle_id

    def store_upload(self, record: C2Upload) -> int:
        reply = self._roundtrip("sp.store_upload", StoreUploadRequest(record=record))
        return reply.puzzle_id

    def display_puzzle_c1(
        self, puzzle_id: int, rng: random.Random | None = None
    ) -> DisplayedPuzzle:
        reply = self._roundtrip(
            "sp.display_puzzle",
            DisplayPuzzleRequest(
                construction=1,
                puzzle_id=puzzle_id,
                rng_state=rng.getstate() if rng is not None else None,
            ),
        )
        return reply.displayed

    def display_puzzle_c2(self, puzzle_id: int) -> DisplayedPuzzleC2:
        reply = self._roundtrip(
            "sp.display_puzzle",
            DisplayPuzzleRequest(construction=2, puzzle_id=puzzle_id),
        )
        return reply.displayed

    def submit_answers_c1(
        self, answers: PuzzleAnswers, requester: str
    ) -> ShareRelease:
        reply = self._roundtrip(
            "sp.verify",
            AnswerSubmission(
                construction=1,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests=dict(answers.digests),
            ),
        )
        return reply.release

    def submit_answers_c2(
        self, answers: PuzzleAnswersC2, requester: str
    ) -> AccessGrantC2:
        reply = self._roundtrip(
            "sp.verify",
            AnswerSubmission(
                construction=2,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests={
                    q: d.encode("ascii") for q, d in answers.digests.items()
                },
            ),
        )
        return reply.grant

    def share_policy(
        self, construction: int, puzzle_id: int, policy_text: str
    ) -> None:
        """Attach the canonical policy text to a stored registration so
        later Explain replies echo the sharer's own rendering."""
        self._roundtrip(
            "sp.share_policy",
            SharePolicyRequest(
                construction=construction,
                puzzle_id=puzzle_id,
                policy_text=policy_text,
            ),
        )

    def explain_c1(self, answers: PuzzleAnswers, requester: str):
        """Ask for the grant/deny derivation under the C1 evidence."""
        reply = self._roundtrip(
            "sp.explain",
            ExplainRequest(
                construction=1,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests=dict(answers.digests),
            ),
        )
        return reply.explanation

    def explain_c2(self, answers: PuzzleAnswersC2, requester: str):
        """Ask for the grant/deny derivation under the C2 evidence."""
        reply = self._roundtrip(
            "sp.explain",
            ExplainRequest(
                construction=2,
                puzzle_id=answers.puzzle_id,
                requester=requester,
                digests={
                    q: d.encode("ascii") for q, d in answers.digests.items()
                },
            ),
        )
        return reply.explanation

    def retract(self, construction: int, puzzle_id: int) -> bool:
        reply = self._roundtrip(
            "sp.retract",
            RetractPuzzleRequest(construction=construction, puzzle_id=puzzle_id),
        )
        return reply.removed

    # -- the two-phase retract saga ----------------------------------------------

    def retract_prepare(self, construction: int, puzzle_id: int) -> str:
        """Saga phase 1: hide the registration; returns its URL_O."""
        reply = self._roundtrip(
            "sp.retract_prepare",
            RetractPrepareRequest(construction=construction, puzzle_id=puzzle_id),
        )
        return reply.url

    def retract_commit(self, construction: int, puzzle_id: int) -> bool:
        reply = self._roundtrip(
            "sp.retract_commit",
            RetractCommitRequest(construction=construction, puzzle_id=puzzle_id),
        )
        return reply.removed

    def retract_abort(self, construction: int, puzzle_id: int) -> bool:
        reply = self._roundtrip(
            "sp.retract_abort",
            RetractAbortRequest(construction=construction, puzzle_id=puzzle_id),
        )
        return reply.removed

    # -- OSN substrate -----------------------------------------------------------

    def register_user(self, name: str, **profile: str) -> User:
        """Create an account on the remote SP; returns the ``User``."""
        reply = self._roundtrip(
            "sp.register_user", RegisterUserRequest(name=name, profile=profile)
        )
        return reply.user

    def befriend(self, a: User, b: User) -> None:
        self._roundtrip("sp.befriend", BefriendRequest(a=a, b=b))

    def publish_post(
        self, author: User, content: str, audience: str | frozenset[int] = "friends"
    ) -> Post:
        reply = self._roundtrip(
            "sp.post",
            PublishPostRequest(author=author, content=content, audience=audience),
        )
        return reply.post

    def get_post(self, viewer: User, post_id: int) -> Post:
        reply = self._roundtrip(
            "sp.get_post", FetchPostRequest(viewer=viewer, post_id=post_id)
        )
        return reply.post

    def storage_put(self, data: bytes) -> str:
        return self._roundtrip("dh.put", StoragePutRequest(data=data)).url

    def storage_get(self, url: str) -> bytes:
        return self._roundtrip("dh.get", StorageGetRequest(url=url)).data

    def storage_exists(self, url: str) -> bool:
        return self._roundtrip("dh.exists", StorageExistsRequest(url=url)).value

    def storage_delete(self, url: str) -> bool:
        return self._roundtrip("dh.delete", StorageDeleteRequest(url=url)).value
