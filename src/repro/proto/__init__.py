"""repro.proto — the wire-protocol layer.

Every SP interaction in both constructions is a typed, byte-serializable
message: the client encodes a request, a :class:`MessageBus` carries the
frame to a ``dispatch(bytes) -> bytes`` frontend, and the
:class:`PuzzleProtocolEngine` runs the share/access state machines once
for both construction backends. See ``docs/PROTOCOLS.md`` ("Wire
format") for the message tables.

Layering: ``envelope`` (framing) -> ``messages`` (typed codecs) ->
``engine``/``frontends`` (server side) -> ``bus`` (transport seam) ->
``client`` (typed stubs + retry/span integration).
"""

from repro.proto.bus import MessageBus, wire_summary
from repro.proto.client import ProtocolClient, RemoteServiceError
from repro.proto.engine import PuzzleProtocolEngine
from repro.proto.envelope import (
    ENVELOPE_OVERHEAD,
    WIRE_VERSION,
    WireFormatError,
    open_envelope,
    seal,
)
from repro.proto.messages import decode_message, encode_message

__all__ = [
    "ENVELOPE_OVERHEAD",
    "WIRE_VERSION",
    "WireFormatError",
    "open_envelope",
    "seal",
    "decode_message",
    "encode_message",
    "PuzzleProtocolEngine",
    "MessageBus",
    "wire_summary",
    "ProtocolClient",
    "RemoteServiceError",
]
