"""The unified puzzle protocol engine.

One server-side state machine for both constructions: store -> display
-> verify -> release/grant, plus retraction, the profile post and the
static-ACL read. The construction-specific behaviour lives entirely in
the registered *backend* (a ``PuzzleServiceC1`` for Shamir, a
``PuzzleServiceC2`` for CP-ABE, or any fault-injecting/throttling proxy
around one); the engine owns the message routing, the throttle-aware
requester plumbing and the error mapping — exactly once.

``dispatch(bytes) -> bytes`` is the only entry point. Everything a
client can do to a puzzle travels through it as a serialized message, so
sharding, batching or moving the SP out of process later is a transport
change, not a protocol change.

Thread-safety contract
======================

``dispatch`` is **reentrant**: the smart server (:mod:`repro.serve`)
calls it concurrently from many worker threads, one call per in-flight
request, with no external locking. The engine upholds this by holding
no per-request mutable state at all:

* routing is a *read-only* handler table built once in ``__init__``
  (``_route`` binds message classes to bound methods and never mutates
  afterwards);
* every value a request needs (decoded message, rng rebuilt from the
  wire state, backend lookup) lives on the stack of its own
  ``dispatch`` call;
* ``register_backend`` is a single GIL-atomic dict store — swapping a
  backend mid-flight is safe, with requests observing either the old or
  the new service, never a torn mix;
* mutable state *behind* the engine is the backends' problem, and the
  shipped services honour it: identifier allocation in
  ``PuzzleServiceC1`` / ``PuzzleServiceC2`` is lock-protected, the
  metrics registry takes an update lock, and the observability runtime
  keeps per-thread activation stacks.

The regression test ``tests/proto/test_engine_reentrancy.py``
interleaves two in-flight batches mid-member to pin this contract down.
"""

from __future__ import annotations

from repro.core.throttle import ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2
from repro.proto.envelope import peek_type
from repro.proto.frontends import ProviderFrontend, StorageFrontend, serve, serve_batch
from repro.proto.messages import (
    AnswerSubmission,
    BatchRequest,
    BefriendRequest,
    AckReply,
    DisplayPuzzleRequest,
    DisplayReplyC1,
    DisplayReplyC2,
    ExplainReply,
    ExplainRequest,
    FetchPostRequest,
    GrantReply,
    Message,
    PublishPostRequest,
    RegisterUserRequest,
    ReleaseReply,
    RetractAbortRequest,
    RetractCommitRequest,
    RetractPrepareReply,
    RetractPrepareRequest,
    RetractPuzzleRequest,
    RetractReply,
    SharePolicyRequest,
    StorageDeleteRequest,
    StorageExistsRequest,
    StorageGetRequest,
    StoragePutRequest,
    StorePuzzleRequest,
    StoreReply,
    StoreUploadRequest,
    rng_from_state,
)

__all__ = ["PuzzleProtocolEngine"]

# Frame types a pure-storage batch is made of; such a batch hands over to
# the storage frontend wholesale so a cluster can fan it out per node.
_STORAGE_FRAME_TYPES = frozenset(
    cls.TYPE
    for cls in (
        StoragePutRequest,
        StorageGetRequest,
        StorageExistsRequest,
        StorageDeleteRequest,
    )
)


def _unwrap(service: object) -> object:
    """Peel fault-injection / resilience proxies off a wrapped service."""
    while hasattr(service, "wrapped"):
        service = service.wrapped  # type: ignore[attr-defined]
    return service


class PuzzleProtocolEngine:
    """Owns the share/access state machines over construction backends."""

    def __init__(self, provider, storage, storage_frontend=None):
        self.provider = provider
        self.storage = storage
        self._backends: dict[int, object] = {}
        self._provider_frontend = ProviderFrontend(provider)
        # A caller may substitute the storage wire face (e.g. a
        # ClusterStorageFrontend when the DH is a quorum cluster); the
        # message surface must stay identical either way.
        self._storage_frontend = (
            storage_frontend
            if storage_frontend is not None
            else StorageFrontend(storage)
        )
        # The routing table: message class -> bound handler. Built once,
        # never mutated — concurrent dispatch calls only ever read it
        # (the reentrancy contract in the module docstring).
        self._route = {
            BatchRequest: self._handle_batch,
            StorePuzzleRequest: self._store_c1,
            StoreUploadRequest: self._store_c2,
            DisplayPuzzleRequest: self._display,
            AnswerSubmission: self._verify,
            SharePolicyRequest: self._share_policy,
            ExplainRequest: self._explain,
            RetractPuzzleRequest: self._retract,
            RetractPrepareRequest: self._retract_saga,
            RetractCommitRequest: self._retract_saga,
            RetractAbortRequest: self._retract_saga,
            # Substrate-bound messages route to the owning frontend, so
            # one bus serves the SP's whole surface.
            PublishPostRequest: self._provider_frontend.handle,
            FetchPostRequest: self._provider_frontend.handle,
            RegisterUserRequest: self._provider_frontend.handle,
            BefriendRequest: self._provider_frontend.handle,
        }

    # -- backend registry --------------------------------------------------------

    def register_backend(self, construction: int, service: object) -> None:
        """Attach (or replace) the service handling one construction.

        Re-registration is deliberate: tests and the chaos harness wrap a
        live service in fault-injecting proxies after construction.
        """
        if construction not in (1, 2):
            raise ValueError("construction must be 1 or 2, got %r" % construction)
        self._backends[construction] = service

    def backend(self, construction: int):
        try:
            return self._backends[construction]
        except KeyError:
            raise RuntimeError(
                "no backend registered for construction %d" % construction
            ) from None

    # -- the dispatch frontend ---------------------------------------------------

    def dispatch(self, request: bytes) -> bytes:
        """Serve one serialized request; never raises across the wire."""
        return serve(request, self.handle)

    def handle(self, message: Message) -> Message:
        handler = self._route.get(type(message))
        if handler is not None:
            return handler(message)
        # Everything else is storage-plane traffic (or unroutable, which
        # the storage frontend reports with the proper taxonomy code).
        return self._storage_frontend.handle(message)

    def _handle_batch(self, batch: BatchRequest) -> Message:
        """Execute a batch with per-member isolation.

        A batch made purely of storage frames is handed to the storage
        frontend wholesale, so a quorum-cluster frontend can fan the
        member gets across its nodes and charge the link once per node;
        mixed batches run member-by-member through the engine's own
        routing. Either way one bad member answers with its own
        :class:`~repro.proto.messages.ErrorReply` while the rest succeed.
        """
        if batch.frames and all(
            peek_type(frame) in _STORAGE_FRAME_TYPES for frame in batch.frames
        ):
            return self._storage_frontend.handle(batch)
        return serve_batch(batch, self.handle)

    # -- puzzle state machine ----------------------------------------------------

    def _store_c1(self, message: StorePuzzleRequest) -> Message:
        return StoreReply(puzzle_id=self.backend(1).store_puzzle(message.puzzle))

    def _store_c2(self, message: StoreUploadRequest) -> Message:
        return StoreReply(puzzle_id=self.backend(2).store_upload(message.record))

    def _display(self, message: DisplayPuzzleRequest) -> Message:
        backend = self.backend(message.construction)
        if message.construction == 1:
            rng = rng_from_state(message.rng_state)
            displayed = backend.display_puzzle(message.puzzle_id, rng=rng)
            return DisplayReplyC1(displayed=displayed)
        return DisplayReplyC2(displayed=backend.display_puzzle(message.puzzle_id))

    def _verify(self, message: AnswerSubmission) -> Message:
        backend = self.backend(message.construction)
        throttled = isinstance(
            _unwrap(backend), (ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2)
        )
        if message.construction == 1:
            answers = message.to_answers_c1()
            if throttled:
                release = backend.verify(answers, requester=message.requester)
            else:
                release = backend.verify(answers)
            return ReleaseReply(release=release)
        answers = message.to_answers_c2()
        if throttled:
            grant = backend.verify(answers, requester=message.requester)
        else:
            grant = backend.verify(answers)
        return GrantReply(grant=grant)

    def _share_policy(self, message: SharePolicyRequest) -> Message:
        self.backend(message.construction).attach_policy(
            message.puzzle_id, message.policy_text
        )
        return AckReply()

    def _explain(self, message: ExplainRequest) -> Message:
        """Serve the grant/deny derivation for the submitted evidence.

        Explains share the verify throttle budget, so the requester
        travels exactly as it does for :class:`AnswerSubmission`.
        """
        backend = self.backend(message.construction)
        throttled = isinstance(
            _unwrap(backend), (ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2)
        )
        answers = (
            message.to_answers_c1()
            if message.construction == 1
            else message.to_answers_c2()
        )
        if throttled:
            explanation = backend.explain(answers, requester=message.requester)
        else:
            explanation = backend.explain(answers)
        return ExplainReply(explanation=explanation)

    def _retract(self, message: RetractPuzzleRequest) -> Message:
        backend = self.backend(message.construction)
        if message.construction == 1:
            return RetractReply(removed=backend.remove_puzzle(message.puzzle_id))
        return RetractReply(removed=backend.remove_upload(message.puzzle_id))

    def _retract_saga(self, message: Message) -> Message:
        """The two-phase retract verbs; both backends implement the same
        ``prepare_retract`` / ``commit_retract`` / ``abort_retract``
        surface, so routing is construction-agnostic."""
        backend = self.backend(message.construction)
        if isinstance(message, RetractPrepareRequest):
            return RetractPrepareReply(url=backend.prepare_retract(message.puzzle_id))
        if isinstance(message, RetractCommitRequest):
            return RetractReply(removed=backend.commit_retract(message.puzzle_id))
        return RetractReply(removed=backend.abort_retract(message.puzzle_id))
