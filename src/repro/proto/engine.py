"""The unified puzzle protocol engine.

One server-side state machine for both constructions: store -> display
-> verify -> release/grant, plus retraction, the profile post and the
static-ACL read. The construction-specific behaviour lives entirely in
the registered *backend* (a ``PuzzleServiceC1`` for Shamir, a
``PuzzleServiceC2`` for CP-ABE, or any fault-injecting/throttling proxy
around one); the engine owns the message routing, the throttle-aware
requester plumbing and the error mapping — exactly once.

``dispatch(bytes) -> bytes`` is the only entry point. Everything a
client can do to a puzzle travels through it as a serialized message, so
sharding, batching or moving the SP out of process later is a transport
change, not a protocol change.
"""

from __future__ import annotations

from repro.core.throttle import ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2
from repro.proto.envelope import peek_type
from repro.proto.frontends import ProviderFrontend, StorageFrontend, serve, serve_batch
from repro.proto.messages import (
    AnswerSubmission,
    BatchRequest,
    DisplayPuzzleRequest,
    DisplayReplyC1,
    DisplayReplyC2,
    FetchPostRequest,
    GrantReply,
    Message,
    PublishPostRequest,
    ReleaseReply,
    RetractAbortRequest,
    RetractCommitRequest,
    RetractPrepareReply,
    RetractPrepareRequest,
    RetractPuzzleRequest,
    RetractReply,
    StorageDeleteRequest,
    StorageExistsRequest,
    StorageGetRequest,
    StoragePutRequest,
    StorePuzzleRequest,
    StoreReply,
    StoreUploadRequest,
    rng_from_state,
)

__all__ = ["PuzzleProtocolEngine"]

# Frame types a pure-storage batch is made of; such a batch hands over to
# the storage frontend wholesale so a cluster can fan it out per node.
_STORAGE_FRAME_TYPES = frozenset(
    cls.TYPE
    for cls in (
        StoragePutRequest,
        StorageGetRequest,
        StorageExistsRequest,
        StorageDeleteRequest,
    )
)


def _unwrap(service: object) -> object:
    """Peel fault-injection / resilience proxies off a wrapped service."""
    while hasattr(service, "wrapped"):
        service = service.wrapped  # type: ignore[attr-defined]
    return service


class PuzzleProtocolEngine:
    """Owns the share/access state machines over construction backends."""

    def __init__(self, provider, storage, storage_frontend=None):
        self.provider = provider
        self.storage = storage
        self._backends: dict[int, object] = {}
        self._provider_frontend = ProviderFrontend(provider)
        # A caller may substitute the storage wire face (e.g. a
        # ClusterStorageFrontend when the DH is a quorum cluster); the
        # message surface must stay identical either way.
        self._storage_frontend = (
            storage_frontend
            if storage_frontend is not None
            else StorageFrontend(storage)
        )

    # -- backend registry --------------------------------------------------------

    def register_backend(self, construction: int, service: object) -> None:
        """Attach (or replace) the service handling one construction.

        Re-registration is deliberate: tests and the chaos harness wrap a
        live service in fault-injecting proxies after construction.
        """
        if construction not in (1, 2):
            raise ValueError("construction must be 1 or 2, got %r" % construction)
        self._backends[construction] = service

    def backend(self, construction: int):
        try:
            return self._backends[construction]
        except KeyError:
            raise RuntimeError(
                "no backend registered for construction %d" % construction
            ) from None

    # -- the dispatch frontend ---------------------------------------------------

    def dispatch(self, request: bytes) -> bytes:
        """Serve one serialized request; never raises across the wire."""
        return serve(request, self.handle)

    def handle(self, message: Message) -> Message:
        if isinstance(message, BatchRequest):
            return self._handle_batch(message)
        if isinstance(message, StorePuzzleRequest):
            return StoreReply(
                puzzle_id=self.backend(1).store_puzzle(message.puzzle)
            )
        if isinstance(message, StoreUploadRequest):
            return StoreReply(
                puzzle_id=self.backend(2).store_upload(message.record)
            )
        if isinstance(message, DisplayPuzzleRequest):
            return self._display(message)
        if isinstance(message, AnswerSubmission):
            return self._verify(message)
        if isinstance(message, RetractPuzzleRequest):
            return self._retract(message)
        if isinstance(
            message,
            (RetractPrepareRequest, RetractCommitRequest, RetractAbortRequest),
        ):
            return self._retract_saga(message)
        # Substrate-bound messages route to the owning frontend, so one
        # bus serves the SP's whole surface.
        if isinstance(message, (PublishPostRequest, FetchPostRequest)):
            return self._provider_frontend.handle(message)
        return self._storage_frontend.handle(message)

    def _handle_batch(self, batch: BatchRequest) -> Message:
        """Execute a batch with per-member isolation.

        A batch made purely of storage frames is handed to the storage
        frontend wholesale, so a quorum-cluster frontend can fan the
        member gets across its nodes and charge the link once per node;
        mixed batches run member-by-member through the engine's own
        routing. Either way one bad member answers with its own
        :class:`~repro.proto.messages.ErrorReply` while the rest succeed.
        """
        if batch.frames and all(
            peek_type(frame) in _STORAGE_FRAME_TYPES for frame in batch.frames
        ):
            return self._storage_frontend.handle(batch)
        return serve_batch(batch, self.handle)

    # -- puzzle state machine ----------------------------------------------------

    def _display(self, message: DisplayPuzzleRequest) -> Message:
        backend = self.backend(message.construction)
        if message.construction == 1:
            rng = rng_from_state(message.rng_state)
            displayed = backend.display_puzzle(message.puzzle_id, rng=rng)
            return DisplayReplyC1(displayed=displayed)
        return DisplayReplyC2(displayed=backend.display_puzzle(message.puzzle_id))

    def _verify(self, message: AnswerSubmission) -> Message:
        backend = self.backend(message.construction)
        throttled = isinstance(
            _unwrap(backend), (ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2)
        )
        if message.construction == 1:
            answers = message.to_answers_c1()
            if throttled:
                release = backend.verify(answers, requester=message.requester)
            else:
                release = backend.verify(answers)
            return ReleaseReply(release=release)
        answers = message.to_answers_c2()
        if throttled:
            grant = backend.verify(answers, requester=message.requester)
        else:
            grant = backend.verify(answers)
        return GrantReply(grant=grant)

    def _retract(self, message: RetractPuzzleRequest) -> Message:
        backend = self.backend(message.construction)
        if message.construction == 1:
            return RetractReply(removed=backend.remove_puzzle(message.puzzle_id))
        return RetractReply(removed=backend.remove_upload(message.puzzle_id))

    def _retract_saga(self, message: Message) -> Message:
        """The two-phase retract verbs; both backends implement the same
        ``prepare_retract`` / ``commit_retract`` / ``abort_retract``
        surface, so routing is construction-agnostic."""
        backend = self.backend(message.construction)
        if isinstance(message, RetractPrepareRequest):
            return RetractPrepareReply(url=backend.prepare_retract(message.puzzle_id))
        if isinstance(message, RetractCommitRequest):
            return RetractReply(removed=backend.commit_retract(message.puzzle_id))
        return RetractReply(removed=backend.abort_retract(message.puzzle_id))
