"""Construction 2: context-based access control from CP-ABE
(paper section V-B).

The sharer encrypts the object under a height-1 access tree tau whose root
is a k-of-N threshold gate and whose leaves carry (question, answer)
attributes. Two algorithms are new relative to vanilla CP-ABE:

* ``Perturb(tau)``  — replace every leaf's answer with its hash H(a_i),
  producing tau'. tau' goes to the SP (for answer verification) and is
  embedded in the ciphertext CT' stored on the DH, so neither service ever
  holds a plaintext answer.
* ``Reconstruct(tau')`` — a receiver who knows >= k answers replaces the
  matching hashes with the real answers, yielding tau^; substituting tau^
  into CT' gives a decryptable ciphertext.

The receiver then runs the *public* KeyGen(MK, S) with her real answer
attributes (the paper publishes PK and MK to the whole social network —
confidentiality rests solely on knowledge of the context, mirroring
Construction 1) and decrypts.

Notable fidelity point: the paper's prototype could not rewrite the cpabe
toolkit's ciphertext encoding, so it shipped CT with the *unperturbed*
tree, sacrificing surveillance resistance "only in the implementation".
Our serialization is our own, so the full design is implemented; a
``legacy_unperturbed_ciphertext`` switch reproduces the prototype's
weakened behaviour for the security-analysis experiments.

Answer hashes default to SHA-1 exactly because the paper's Implementation
2 uses OpenSSL SHA-1 (``digestmod`` accepts any from-scratch hash).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.abe.access_tree import AccessTree
from repro.abe.cpabe import CPABE, HybridCiphertext, MasterKey, PolicyNotSatisfiedError, PublicKey
from repro.abe.serialize import (
    decode_access_tree,
    decode_hybrid_ciphertext,
    decode_master_key,
    decode_public_key,
    encode_access_tree,
    encode_hybrid_ciphertext,
    encode_master_key,
    encode_public_key,
)
from repro.core.context import Context, normalize_answer
from repro.core.errors import (
    AccessDeniedError,
    PuzzleParameterError,
    TamperDetectedError,
    UnknownPuzzleError,
)
from repro.crypto.ec import CurveParams
from repro.crypto.hashes import new as new_hash
from repro.crypto.parallel import PairingPool
from repro.crypto.modes import IntegrityError
from repro.osn.storage import AuditTrail, StorageHost
from repro.util.codec import Reader, blob, text, u32

__all__ = [
    "leaf_attribute",
    "perturbed_attribute",
    "answer_digest_hex",
    "perturb_tree",
    "reconstruct_tree",
    "SharerC2",
    "PuzzleServiceC2",
    "ReceiverC2",
    "C2Upload",
    "DisplayedPuzzleC2",
    "PuzzleAnswersC2",
    "AccessGrantC2",
]

# Unit separator: cannot occur in normalized questions/answers.
_SEP = "\x1f"
_HASH_PREFIX = "#"


def leaf_attribute(question: str, answer: str) -> str:
    """The real attribute of a leaf: question || answer (normalized)."""
    return question + _SEP + normalize_answer(answer)


def answer_digest_hex(answer: str, digestmod: str = "sha1") -> str:
    """H(a_i) in hex — what the perturbed tree and the SP's check use."""
    return new_hash(digestmod, normalize_answer(answer).encode()).hexdigest()


def perturbed_attribute(question: str, digest_hex: str) -> str:
    """A leaf label carrying H(a_i) instead of a_i."""
    return question + _SEP + _HASH_PREFIX + digest_hex


def split_attribute(attribute: str) -> tuple[str, str]:
    """(question, answer-or-hash-part) of a leaf label."""
    question, _, rest = attribute.partition(_SEP)
    if not rest:
        raise PuzzleParameterError("malformed leaf attribute %r" % attribute)
    return question, rest


def is_perturbed(attribute: str) -> bool:
    _, rest = split_attribute(attribute)
    return rest.startswith(_HASH_PREFIX)


def perturb_tree(tree: AccessTree, digestmod: str = "sha1") -> AccessTree:
    """Perturb(tau): hash every leaf's answer part (paper's new algorithm)."""

    def relabel(attribute: str) -> str:
        question, rest = split_attribute(attribute)
        if rest.startswith(_HASH_PREFIX):
            return attribute  # already perturbed — idempotent
        digest = new_hash(digestmod, rest.encode()).hexdigest()
        return perturbed_attribute(question, digest)

    return tree.relabel(relabel)


def reconstruct_tree(
    perturbed: AccessTree, knowledge: Context, digestmod: str = "sha1"
) -> tuple[AccessTree, list[str]]:
    """Reconstruct(tau'): substitute known answers back for their hashes.

    Returns the (partially) reconstructed tree tau^ plus the list of real
    attributes that were resolved — the receiver's KeyGen set S. Hashes
    the receiver cannot invert stay perturbed (and will simply not match
    any key attribute, exactly as the paper intends).
    """
    resolved: list[str] = []

    def relabel(attribute: str) -> str:
        question, rest = split_attribute(attribute)
        if not rest.startswith(_HASH_PREFIX):
            # Already a real attribute (legacy unperturbed ciphertext).
            # It still only helps a receiver who knows the answer herself.
            if knowledge.knows(question) and (
                normalize_answer(knowledge.answer_for(question)) == rest
            ):
                resolved.append(attribute)
            return attribute
        if not knowledge.knows(question):
            return attribute
        candidate = normalize_answer(knowledge.answer_for(question))
        digest = new_hash(digestmod, candidate.encode()).hexdigest()
        if _HASH_PREFIX + digest != rest:
            return attribute  # the receiver's answer is wrong
        real = question + _SEP + candidate
        resolved.append(real)
        return real

    return perturbed.relabel(relabel), resolved


@dataclass(frozen=True)
class C2Upload:
    """What the sharer ships: tau' + PK + MK to the SP, CT' to the DH.

    ``file_sizes`` records the four-file split of the paper's prototype
    (details.txt, pub_key, master_key, message.txt.cpabe) for network
    accounting.
    """

    puzzle_id: int
    tree_perturbed: AccessTree
    pk_bytes: bytes
    mk_bytes: bytes
    url: str
    sharer_name: str

    def file_sizes(self) -> dict[str, int]:
        return {
            "details.txt": len(encode_access_tree(self.tree_perturbed)),
            "pub_key": len(self.pk_bytes),
            "master_key": len(self.mk_bytes),
        }

    def to_bytes(self) -> bytes:
        return (
            u32(self.puzzle_id)
            + blob(encode_access_tree(self.tree_perturbed))
            + blob(self.pk_bytes)
            + blob(self.mk_bytes)
            + text(self.url)
            + text(self.sharer_name)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "C2Upload":
        reader = Reader(data)
        puzzle_id = reader.u32()
        tree = decode_access_tree(reader.blob())
        pk_bytes = reader.blob()
        mk_bytes = reader.blob()
        url = reader.text()
        sharer_name = reader.text()
        reader.done()
        return cls(
            puzzle_id=puzzle_id,
            tree_perturbed=tree,
            pk_bytes=pk_bytes,
            mk_bytes=mk_bytes,
            url=url,
            sharer_name=sharer_name,
        )


@dataclass(frozen=True)
class DisplayedPuzzleC2:
    """Questions shown by the SP (from tau')."""

    puzzle_id: int
    questions: tuple[str, ...]
    threshold: int

    def to_bytes(self) -> bytes:
        body = u32(self.puzzle_id) + u32(self.threshold)
        for question in self.questions:
            body += text(question)
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DisplayedPuzzleC2":
        reader = Reader(data)
        puzzle_id = reader.u32()
        threshold = reader.u32()
        questions = []
        while reader.remaining():
            questions.append(reader.text())
        return cls(
            puzzle_id=puzzle_id, questions=tuple(questions), threshold=threshold
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class PuzzleAnswersC2:
    """Receiver response: hex answer hashes per question."""

    puzzle_id: int
    digests: dict[str, str]  # question -> H(answer) hex

    def to_bytes(self) -> bytes:
        body = u32(self.puzzle_id)
        for question, digest in self.digests.items():
            body += text(question) + text(digest)
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "PuzzleAnswersC2":
        reader = Reader(data)
        puzzle_id = reader.u32()
        digests: dict[str, str] = {}
        while reader.remaining():
            question = reader.text()
            digests[question] = reader.text()
        return cls(puzzle_id=puzzle_id, digests=digests)

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class AccessGrantC2:
    """SP reply on success: where the ciphertext lives, plus PK and MK."""

    puzzle_id: int
    url: str
    pk_bytes: bytes
    mk_bytes: bytes

    def to_bytes(self) -> bytes:
        return (
            u32(self.puzzle_id) + text(self.url) + blob(self.pk_bytes) + blob(self.mk_bytes)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "AccessGrantC2":
        reader = Reader(data)
        puzzle_id = reader.u32()
        url = reader.text()
        pk_bytes = reader.blob()
        mk_bytes = reader.blob()
        reader.done()
        return cls(
            puzzle_id=puzzle_id, url=url, pk_bytes=pk_bytes, mk_bytes=mk_bytes
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


class SharerC2:
    """Sharer role for Construction 2."""

    def __init__(
        self,
        name: str,
        storage: StorageHost,
        params: CurveParams,
        digestmod: str = "sha1",
        legacy_unperturbed_ciphertext: bool = False,
    ):
        self.name = name
        self.storage = storage
        self.params = params
        self.digestmod = digestmod
        self.legacy_unperturbed_ciphertext = legacy_unperturbed_ciphertext
        self.abe = CPABE(params)

    def build_tree(self, context: Context, k: int, n: int | None = None) -> AccessTree:
        """The height-1 tree of Fig. 3: root k-of-n over QA attributes."""
        n = len(context) if n is None else n
        if not 0 < k <= n:
            raise PuzzleParameterError("need 0 < k <= n, got k=%d n=%d" % (k, n))
        if n > len(context):
            raise PuzzleParameterError(
                "tree needs n=%d pairs but context has only %d" % (n, len(context))
            )
        if (k, n) == (1, 1):
            # The paper: "CP-ABE does not support (1,1) threshold" — the
            # toolkit rejects a single-child root, so observations start
            # at N = 2. We keep the restriction for fidelity.
            raise PuzzleParameterError("CP-ABE does not support a (1, 1) threshold")
        attributes = [
            leaf_attribute(pair.question, pair.answer) for pair in context.pairs[:n]
        ]
        return AccessTree.k_of_n(k, attributes)

    def upload(self, obj: bytes, context: Context, k: int, n: int | None = None) -> tuple[C2Upload, bytes]:
        """Setup + Encrypt + Perturb + store (the paper's height-1 tree).

        Returns the SP-bound record and the ciphertext bytes bound for the
        DH (already stored; bytes returned for cost accounting).
        """
        return self.upload_tree(obj, self.build_tree(context, k, n))

    def upload_tree(self, obj: bytes, tree: AccessTree) -> tuple[C2Upload, bytes]:
        """Like :meth:`upload` but for an arbitrary QA-policy tree.

        Every leaf must be a (question, answer) attribute built with
        :func:`leaf_attribute` — nested AND/OR/threshold gates over them
        are allowed (an extension past the paper's flat puzzles; the
        generalized Verify evaluates the same tree over hashed answers).
        """
        for attribute in tree.attributes():
            split_attribute(attribute)  # raises on malformed leaves
        pk, mk = self.abe.setup()
        ciphertext = self.abe.encrypt_bytes(pk, obj, tree)

        perturbed = perturb_tree(tree, self.digestmod)
        if not self.legacy_unperturbed_ciphertext:
            ciphertext = ciphertext.with_tree(perturbed)
        ct_bytes = encode_hybrid_ciphertext(ciphertext)
        url = self.storage.put(ct_bytes)

        record = C2Upload(
            puzzle_id=0,  # assigned by the SP at store time
            tree_perturbed=perturbed,
            pk_bytes=encode_public_key(pk),
            mk_bytes=encode_master_key(self.params, mk),
            url=url,
            sharer_name=self.name,
        )
        return record, ct_bytes

    def upload_policy(
        self, obj: bytes, context: Context, policy
    ) -> tuple[C2Upload, bytes]:
        """Upload under a :class:`~repro.policy.model.PuzzlePolicy`.

        C2's compiler is a relabeling: every requirement leaf becomes a
        (question, answer) attribute and the nested tree goes straight
        into CP-ABE ``Encrypt``. The flat degenerate case keeps the
        paper's (1, 1) fidelity restriction from :meth:`build_tree`.
        """
        from repro.policy.compile import compile_tree_c2

        if policy.is_flat() and (
            policy.root_threshold,
            len(policy.questions),
        ) == (1, 1):
            raise PuzzleParameterError("CP-ABE does not support a (1, 1) threshold")
        return self.upload_tree(obj, compile_tree_c2(policy, context))


class PuzzleServiceC2:
    """SP-side service for Construction 2: holds tau', PK, MK and URL_O."""

    def __init__(self, audit: AuditTrail | None = None, digestmod: str = "sha1"):
        self.audit = audit if audit is not None else AuditTrail()
        self.digestmod = digestmod
        self._records: dict[int, C2Upload] = {}
        self._retracting: dict[int, C2Upload] = {}
        self._policy_texts: dict[int, str] = {}
        self._serial = 0
        # Guards identifier allocation under concurrent dispatch (see
        # PuzzleServiceC1); everything else relies on GIL-atomic dict ops.
        self._serial_lock = threading.Lock()

    def store_upload(self, record: C2Upload) -> int:
        self.audit.record(encode_access_tree(record.tree_perturbed))
        self.audit.record(record.pk_bytes)
        self.audit.record(record.mk_bytes)
        self.audit.record(record.url.encode())
        with self._serial_lock:
            self._serial += 1
            puzzle_id = self._serial
        stored = C2Upload(
            puzzle_id=puzzle_id,
            tree_perturbed=record.tree_perturbed,
            pk_bytes=record.pk_bytes,
            mk_bytes=record.mk_bytes,
            url=record.url,
            sharer_name=record.sharer_name,
        )
        self._records[puzzle_id] = stored
        return puzzle_id

    def _record(self, puzzle_id: int) -> C2Upload:
        try:
            return self._records[puzzle_id]
        except KeyError:
            raise UnknownPuzzleError(puzzle_id) from None

    def puzzle_count(self) -> int:
        return len(self._records)

    def remove_upload(self, puzzle_id: int) -> bool:
        """Unregister an upload (sharer retraction or publish rollback);
        returns whether anything was removed."""
        prepared = self._retracting.pop(puzzle_id, None) is not None
        self._policy_texts.pop(puzzle_id, None)
        return self._records.pop(puzzle_id, None) is not None or prepared

    # -- the policy plane ----------------------------------------------------------

    def attach_policy(self, puzzle_id: int, policy_text: str) -> None:
        """Record the sharer's canonical policy expression (SharePolicy
        verb); used only to echo a faithful rendering in explain replies."""
        self._record(puzzle_id)  # raises UnknownPuzzleError
        self._policy_texts[puzzle_id] = policy_text

    def policy_text(self, puzzle_id: int) -> str | None:
        """The attached policy expression, if the sharer registered one."""
        return self._policy_texts.get(puzzle_id)

    def question_tree(self, puzzle_id: int) -> AccessTree:
        """tau' with every leaf reduced to its question — the policy
        structure an explain trace may legitimately reveal."""
        record = self._record(puzzle_id)
        return record.tree_perturbed.relabel(
            lambda attribute: split_attribute(attribute)[0]
        )

    def _matched_questions(self, answers: PuzzleAnswersC2) -> set[str]:
        record = self._record(answers.puzzle_id)
        matched: set[str] = set()
        for attribute in record.tree_perturbed.attributes():
            question, rest = split_attribute(attribute)
            if not rest.startswith(_HASH_PREFIX):
                continue
            if answers.digests.get(question) == rest[len(_HASH_PREFIX) :]:
                matched.add(question)
        return matched

    def explain(self, answers: PuzzleAnswersC2):
        """Gate-by-gate grant/deny derivation over hashed answers only
        (see :meth:`PuzzleServiceC1.explain` — identical contract)."""
        from repro.policy.explain import explain_tree

        matched = self._matched_questions(answers)
        return explain_tree(
            self.question_tree(answers.puzzle_id),
            matched,
            construction=2,
            puzzle_id=answers.puzzle_id,
            policy_text=self._policy_texts.get(answers.puzzle_id),
        )

    # -- the two-phase retract saga ----------------------------------------------

    def prepare_retract(self, puzzle_id: int) -> str:
        """Saga phase 1: move the record into the retracting set —
        display/verify stop serving it immediately — and return its
        URL_O so the DH plane can delete the blob. Idempotent per
        puzzle; unknown ids raise :class:`UnknownPuzzleError`."""
        if puzzle_id in self._retracting:
            return self._retracting[puzzle_id].url
        record = self._record(puzzle_id)
        self._retracting[puzzle_id] = record
        del self._records[puzzle_id]
        return record.url

    def commit_retract(self, puzzle_id: int) -> bool:
        """Saga phase 2: discard the prepared record for good; returns
        whether a prepared retract existed (idempotent)."""
        committed = self._retracting.pop(puzzle_id, None) is not None
        if committed:
            self._policy_texts.pop(puzzle_id, None)
        return committed

    def abort_retract(self, puzzle_id: int) -> bool:
        """Saga rollback: restore a prepared record unchanged; returns
        whether one was pending."""
        record = self._retracting.pop(puzzle_id, None)
        if record is None:
            return False
        self._records[puzzle_id] = record
        return True

    def pending_retracts(self) -> list[int]:
        """Prepared-but-uncommitted retracts (recovery introspection)."""
        return sorted(self._retracting)

    def display_puzzle(self, puzzle_id: int) -> DisplayedPuzzleC2:
        record = self._record(puzzle_id)
        root = record.tree_perturbed.root
        questions = tuple(
            split_attribute(attr)[0] for attr in record.tree_perturbed.attributes()
        )
        threshold = getattr(root, "threshold", 1)
        return DisplayedPuzzleC2(
            puzzle_id=puzzle_id, questions=questions, threshold=threshold
        )

    def verify(self, answers: PuzzleAnswersC2) -> AccessGrantC2:
        """Match hashed answers against the hashes embedded in tau'.

        For the paper's height-1 trees this is the threshold count of
        section V-B; for general trees (nested AND/OR/threshold policies)
        the SP evaluates satisfiability of tau' over the *matched* leaves —
        still using only hashes, so surveillance resistance is unchanged.
        """
        record = self._record(answers.puzzle_id)
        self.audit.record(
            b"".join(q.encode() + d.encode() for q, d in answers.digests.items())
        )
        matched_attributes: set[str] = set()
        matches = 0
        for attribute in record.tree_perturbed.attributes():
            question, rest = split_attribute(attribute)
            if not rest.startswith(_HASH_PREFIX):
                continue
            digest = rest[len(_HASH_PREFIX) :]
            if answers.digests.get(question) == digest:
                matched_attributes.add(attribute)
                matches += 1
        if not record.tree_perturbed.satisfied_by(matched_attributes):
            threshold = getattr(record.tree_perturbed.root, "threshold", 1)
            raise AccessDeniedError(
                "only %d of the required %d answers verified"
                % (matches, threshold)
            )
        return AccessGrantC2(
            puzzle_id=answers.puzzle_id,
            url=record.url,
            pk_bytes=record.pk_bytes,
            mk_bytes=record.mk_bytes,
        )


class ReceiverC2:
    """Receiver role: reconstruct the tree, KeyGen with real answers,
    decrypt."""

    def __init__(
        self,
        name: str,
        storage: StorageHost,
        params: CurveParams,
        digestmod: str = "sha1",
        pairing_pool: "PairingPool | None" = None,
    ):
        self.name = name
        self.storage = storage
        self.params = params
        self.digestmod = digestmod
        self.abe = CPABE(params, pairing_pool=pairing_pool)

    def answer_puzzle(
        self, displayed: DisplayedPuzzleC2, knowledge: Context
    ) -> PuzzleAnswersC2:
        digests: dict[str, str] = {}
        for question in displayed.questions:
            if knowledge.knows(question):
                digests[question] = answer_digest_hex(
                    knowledge.answer_for(question), self.digestmod
                )
        return PuzzleAnswersC2(puzzle_id=displayed.puzzle_id, digests=digests)

    def access(self, grant: AccessGrantC2, knowledge: Context) -> bytes:
        """Download CT', Reconstruct tau^, KeyGen(MK, S), Decrypt."""
        ct_bytes = self.storage.get(grant.url)
        ciphertext: HybridCiphertext = decode_hybrid_ciphertext(self.params, ct_bytes)
        pk: PublicKey = decode_public_key(self.params, grant.pk_bytes)
        mk: MasterKey = decode_master_key(self.params, grant.mk_bytes)

        reconstructed, resolved = reconstruct_tree(
            ciphertext.header.tree, knowledge, self.digestmod
        )
        if not resolved:
            raise AccessDeniedError("no answer hash could be inverted")
        ciphertext = ciphertext.with_tree(reconstructed)

        secret_key = self.abe.keygen(pk, mk, set(resolved))
        try:
            return self.abe.decrypt_bytes(pk, secret_key, ciphertext)
        except PolicyNotSatisfiedError as exc:
            raise AccessDeniedError(str(exc)) from exc
        except IntegrityError as exc:
            raise TamperDetectedError(
                "ciphertext body failed its integrity check — tampered storage"
            ) from exc
