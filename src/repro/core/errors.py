"""Exception hierarchy for the social-puzzle core."""

from __future__ import annotations

__all__ = [
    "SocialPuzzleError",
    "PuzzleParameterError",
    "AccessDeniedError",
    "TamperDetectedError",
    "UnknownPuzzleError",
]


class SocialPuzzleError(Exception):
    """Base class for all social-puzzle failures."""


class PuzzleParameterError(SocialPuzzleError, ValueError):
    """Invalid puzzle parameters (bad k/n, empty context, ...)."""


class AccessDeniedError(SocialPuzzleError):
    """The responder did not demonstrate knowledge of >= k context pairs."""


class TamperDetectedError(SocialPuzzleError):
    """A signature check failed: the SP or DH modified protocol data
    (the denial-of-service attacks of the paper's section VI)."""


class UnknownPuzzleError(SocialPuzzleError, KeyError):
    """No puzzle with the given identifier exists on the service."""
