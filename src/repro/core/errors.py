"""Exception hierarchy for the social-puzzle core."""

from __future__ import annotations

__all__ = [
    "SocialPuzzleError",
    "PuzzleParameterError",
    "AccessDeniedError",
    "TamperDetectedError",
    "UnknownPuzzleError",
    "TransientServiceError",
    "TransientProviderError",
    "TransientNetworkError",
    "CircuitOpenError",
    "ShareFailedError",
]


class SocialPuzzleError(Exception):
    """Base class for all social-puzzle failures."""


class PuzzleParameterError(SocialPuzzleError, ValueError):
    """Invalid puzzle parameters (bad k/n, empty context, ...)."""


class AccessDeniedError(SocialPuzzleError):
    """The responder did not demonstrate knowledge of >= k context pairs."""


class TamperDetectedError(SocialPuzzleError):
    """A signature check failed: the SP or DH modified protocol data
    (the denial-of-service attacks of the paper's section VI)."""


class UnknownPuzzleError(SocialPuzzleError, KeyError):
    """No puzzle with the given identifier exists on the service."""


class TransientServiceError(SocialPuzzleError):
    """Base class for *retryable* substrate failures (timeouts, 5xx...).

    The resilience layer (:mod:`repro.osn.resilience`) retries anything
    that is-a ``TransientServiceError``; every other exception is treated
    as permanent and surfaces on the first attempt.
    """


class TransientProviderError(TransientServiceError):
    """The service provider SP timed out or dropped a request."""


class TransientNetworkError(TransientServiceError):
    """The client-to-server network path dropped a request."""


class CircuitOpenError(SocialPuzzleError):
    """A circuit breaker is open: the dependency is failing fast, the
    call was rejected without being attempted."""


class ShareFailedError(SocialPuzzleError):
    """A share operation failed and was rolled back.

    The atomicity guarantee of ``SocialPuzzleAppC1/C2.share``: when this
    is raised, the storage host holds no orphaned blob and the SP holds
    neither a puzzle registration nor a profile post for the attempt.
    """
