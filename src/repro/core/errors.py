"""Exception hierarchy for the social-puzzle core.

Error taxonomy
==============

Every failure the repository raises on purpose is-a
:class:`SocialPuzzleError`, and falls into one of three classes that
determine how callers (and the resilience layer) react:

**Permanent protocol errors** — the request itself is wrong or denied;
retrying is useless and the resilience layer surfaces them on the first
attempt:

======================== ====================================================
:class:`PuzzleParameterError` malformed share parameters (bad k/n, empty
                              context); also ``ValueError``
:class:`AccessDeniedError`    fewer than k correct answers at Verify
:class:`TamperDetectedError`  a BLS signature check failed — the SP/DH
                              modified protocol data (section VI attacks)
:class:`UnknownPuzzleError`   no such puzzle id; also ``KeyError``
:class:`UnroutableMessageError` a well-formed wire message sent to a
                              frontend that does not serve its type;
                              also ``TypeError``
======================== ====================================================

**Transient substrate errors** — the environment hiccuped; the request may
well succeed if replayed. Anything that is-a
:class:`TransientServiceError` is retried by
:class:`~repro.osn.resilience.RetryPolicy`:

============================ ================================================
:class:`TransientProviderError` the SP timed out / dropped the request
:class:`TransientNetworkError`  the client-to-server path dropped it
============================ ================================================

**Resilience-layer outcomes** — raised by the machinery itself, never by
the protocol:

========================= ===================================================
:class:`CircuitOpenError`  breaker open: failed fast, nothing was attempted
:class:`ShareFailedError`  a share was rolled back atomically (no orphaned
                           blob, registration, or post remains)
========================= ===================================================

One deliberate outlier: ``ThrottledError`` (an online guesser exhausted
their failed-attempt budget) lives next to its policy in
:mod:`repro.core.throttle`, but is still a :class:`SocialPuzzleError` and
still permanent — lockouts are cleared by the sharer, not by retrying.
"""

from __future__ import annotations

__all__ = [
    "SocialPuzzleError",
    "PuzzleParameterError",
    "AccessDeniedError",
    "TamperDetectedError",
    "UnknownPuzzleError",
    "UnroutableMessageError",
    "TransientServiceError",
    "TransientProviderError",
    "TransientNetworkError",
    "CircuitOpenError",
    "ShareFailedError",
]


class SocialPuzzleError(Exception):
    """Base class for all social-puzzle failures."""


class PuzzleParameterError(SocialPuzzleError, ValueError):
    """Invalid puzzle parameters (bad k/n, empty context, ...)."""


class AccessDeniedError(SocialPuzzleError):
    """The responder did not demonstrate knowledge of >= k context pairs."""


class TamperDetectedError(SocialPuzzleError):
    """A signature check failed: the SP or DH modified protocol data
    (the denial-of-service attacks of the paper's section VI)."""


class UnknownPuzzleError(SocialPuzzleError, KeyError):
    """No puzzle with the given identifier exists on the service."""


class UnroutableMessageError(SocialPuzzleError, TypeError):
    """A well-formed message reached a frontend that does not serve its
    type (e.g. a puzzle request dispatched to a bare storage host).
    Permanent: the caller is talking to the wrong endpoint, and resending
    the same frame cannot succeed."""


class TransientServiceError(SocialPuzzleError):
    """Base class for *retryable* substrate failures (timeouts, 5xx...).

    The resilience layer (:mod:`repro.osn.resilience`) retries anything
    that is-a ``TransientServiceError``; every other exception is treated
    as permanent and surfaces on the first attempt.
    """


class TransientProviderError(TransientServiceError):
    """The service provider SP timed out or dropped a request."""


class TransientNetworkError(TransientServiceError):
    """The client-to-server network path dropped a request."""


class CircuitOpenError(SocialPuzzleError):
    """A circuit breaker is open: the dependency is failing fast, the
    call was rejected without being attempted."""


class ShareFailedError(SocialPuzzleError):
    """A share operation failed and was rolled back.

    The atomicity guarantee of ``SocialPuzzleAppC1/C2.share``: when this
    is raised, the storage host holds no orphaned blob and the SP holds
    neither a puzzle registration nor a profile post for the attempt.
    """
