"""Online-guessing throttling for the SP-side verifier.

The offline dictionary attack of :mod:`repro.analysis.security` needs the
puzzle (and K_Z); an *online* guesser needs only the displayed questions —
it can submit candidate answers to Verify until the threshold clears. The
paper's semi-honest SP model doesn't address this, but any deployment
must: :class:`ThrottledPuzzleServiceC1` locks a requester out of a puzzle
after a bounded number of failed verifications, turning the attack cost
from "vocabulary size" into "max_failures".

This interacts with the entropy auditor: a puzzle whose k weakest answers
total ~20 bits is hopeless against an offline adversary (the SP itself)
but fine against outside users when the SP throttles — which is exactly
the trust distinction of the paper's section IV model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construction1 import PuzzleAnswers, PuzzleServiceC1, ShareRelease
from repro.core.errors import AccessDeniedError, SocialPuzzleError

__all__ = ["ThrottledError", "ThrottledPuzzleServiceC1"]


class ThrottledError(SocialPuzzleError):
    """The requester exhausted their failed-attempt budget for a puzzle."""


@dataclass
class _Budget:
    failures: int = 0
    locked: bool = False


class ThrottledPuzzleServiceC1(PuzzleServiceC1):
    """A PuzzleServiceC1 that bounds failed verifications per requester.

    ``max_failures`` — failed Verify calls allowed per (requester, puzzle)
    before lockout. A successful verification resets the count (a friend
    who mistyped once isn't punished). Requests without a requester name
    share the anonymous budget — an anonymous-access deployment would key
    on a session or network identifier instead.
    """

    def __init__(self, max_failures: int = 5, **kwargs):
        super().__init__(**kwargs)
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self.max_failures = max_failures
        self._budgets: dict[tuple[int, str], _Budget] = {}

    def _budget(self, puzzle_id: int, requester: str) -> _Budget:
        return self._budgets.setdefault((puzzle_id, requester), _Budget())

    def verify(
        self, answers: PuzzleAnswers, requester: str = ""
    ) -> ShareRelease:
        budget = self._budget(answers.puzzle_id, requester)
        if budget.locked:
            raise ThrottledError(
                "requester %r is locked out of puzzle %d after %d failures"
                % (requester, answers.puzzle_id, self.max_failures)
            )
        try:
            release = super().verify(answers)
        except AccessDeniedError:
            budget.failures += 1
            if budget.failures >= self.max_failures:
                budget.locked = True
            raise
        budget.failures = 0
        return release

    def failures_for(self, puzzle_id: int, requester: str = "") -> int:
        return self._budget(puzzle_id, requester).failures

    def is_locked(self, puzzle_id: int, requester: str = "") -> bool:
        return self._budget(puzzle_id, requester).locked

    def unlock(self, puzzle_id: int, requester: str = "") -> None:
        """Sharer-initiated forgiveness (e.g. after rotating the puzzle)."""
        self._budgets.pop((puzzle_id, requester), None)
