"""Online-guessing throttling for the SP-side verifiers.

The offline dictionary attack of :mod:`repro.analysis.security` needs the
puzzle (and K_Z); an *online* guesser needs only the displayed questions —
it can submit candidate answers to Verify until the threshold clears. The
paper's semi-honest SP model doesn't address this, but any deployment
must: the throttled services lock a requester out of a puzzle after a
bounded number of failed verifications, turning the attack cost from
"vocabulary size" into "max_failures".

Both constructions share the same lockout policy, extracted into
:class:`GuessThrottle`: per-(puzzle, requester) failed-attempt budgets,
reset on success, with sharer-initiated forgiveness. Construction 1 and 2
verifiers differ only in what "verify" means.

This interacts with the entropy auditor: a puzzle whose k weakest answers
total ~20 bits is hopeless against an offline adversary (the SP itself)
but fine against outside users when the SP throttles — which is exactly
the trust distinction of the paper's section IV model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construction1 import PuzzleAnswers, PuzzleServiceC1, ShareRelease
from repro.core.construction2 import AccessGrantC2, PuzzleAnswersC2, PuzzleServiceC2
from repro.core.errors import AccessDeniedError, SocialPuzzleError
from repro.obs.runtime import count, emit_event

__all__ = [
    "ThrottledError",
    "GuessThrottle",
    "ThrottledPuzzleServiceC1",
    "ThrottledPuzzleServiceC2",
]


class ThrottledError(SocialPuzzleError):
    """The requester exhausted their failed-attempt budget for a puzzle."""


@dataclass
class _Budget:
    failures: int = 0
    locked: bool = False


class GuessThrottle:
    """Per-(puzzle, requester) failed-verification budgets.

    ``max_failures`` — failed Verify calls allowed per (requester, puzzle)
    before lockout. A successful verification resets the count (a friend
    who mistyped once isn't punished). Requests without a requester name
    share the anonymous budget — an anonymous-access deployment would key
    on a session or network identifier instead.
    """

    def __init__(self, max_failures: int = 5):
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self.max_failures = max_failures
        self._budgets: dict[tuple[int, str], _Budget] = {}

    def _budget(self, puzzle_id: int, requester: str) -> _Budget:
        return self._budgets.setdefault((puzzle_id, requester), _Budget())

    def check(self, puzzle_id: int, requester: str) -> None:
        """Gate a verification attempt; raises once locked out."""
        if self._budget(puzzle_id, requester).locked:
            raise ThrottledError(
                "requester %r is locked out of puzzle %d after %d failures"
                % (requester, puzzle_id, self.max_failures)
            )

    def record_failure(self, puzzle_id: int, requester: str) -> None:
        """Charge one failed verification against the requester's budget.

        Locks the (puzzle, requester) pair once ``max_failures`` is
        reached; the lockout is observable as a ``throttle.lockout``
        event (the requester name is redacted by the event log — it is
        personal data, not an operational label).
        """
        budget = self._budget(puzzle_id, requester)
        budget.failures += 1
        count("core.throttle.failures")
        if budget.failures >= self.max_failures:
            budget.locked = True
            count("core.throttle.lockouts")
            emit_event(
                "throttle.lockout",
                puzzle_id=puzzle_id,
                requester=requester,
                failures=budget.failures,
            )

    def record_success(self, puzzle_id: int, requester: str) -> None:
        """Reset the failure count — a verified friend isn't punished for
        an earlier typo. Does not clear an existing lockout."""
        self._budget(puzzle_id, requester).failures = 0

    def failures_for(self, puzzle_id: int, requester: str = "") -> int:
        """Current failed-attempt count for the (puzzle, requester) pair."""
        return self._budget(puzzle_id, requester).failures

    def is_locked(self, puzzle_id: int, requester: str = "") -> bool:
        """Whether the pair has exhausted its budget and is locked out."""
        return self._budget(puzzle_id, requester).locked

    def unlock(self, puzzle_id: int, requester: str = "") -> None:
        """Sharer-initiated forgiveness (e.g. after rotating the puzzle)."""
        self._budgets.pop((puzzle_id, requester), None)


class _ThrottleMixin:
    """Shared glue: delegate budget bookkeeping to a GuessThrottle."""

    throttle: GuessThrottle

    @property
    def max_failures(self) -> int:
        return self.throttle.max_failures

    def failures_for(self, puzzle_id: int, requester: str = "") -> int:
        return self.throttle.failures_for(puzzle_id, requester)

    def is_locked(self, puzzle_id: int, requester: str = "") -> bool:
        return self.throttle.is_locked(puzzle_id, requester)

    def unlock(self, puzzle_id: int, requester: str = "") -> None:
        self.throttle.unlock(puzzle_id, requester)


class ThrottledPuzzleServiceC1(_ThrottleMixin, PuzzleServiceC1):
    """A PuzzleServiceC1 that bounds failed verifications per requester."""

    def __init__(self, max_failures: int = 5, **kwargs):
        super().__init__(**kwargs)
        self.throttle = GuessThrottle(max_failures)

    def verify(self, answers: PuzzleAnswers, requester: str = "") -> ShareRelease:
        """Gate, verify, and account: raises :class:`ThrottledError` once
        the requester is locked out, charges a failure on
        :class:`~repro.core.errors.AccessDeniedError`, resets on success."""
        self.throttle.check(answers.puzzle_id, requester)
        try:
            release = super().verify(answers)
        except AccessDeniedError:
            self.throttle.record_failure(answers.puzzle_id, requester)
            raise
        self.throttle.record_success(answers.puzzle_id, requester)
        return release

    def explain(self, answers: PuzzleAnswers, requester: str = ""):
        """Explain shares the verify budget: a denied explanation is an
        answer-probing attempt and charges a failure, so Explain cannot
        be used as an unthrottled guessing oracle."""
        self.throttle.check(answers.puzzle_id, requester)
        explanation = super().explain(answers)
        if explanation.granted:
            self.throttle.record_success(answers.puzzle_id, requester)
        else:
            self.throttle.record_failure(answers.puzzle_id, requester)
        return explanation


class ThrottledPuzzleServiceC2(_ThrottleMixin, PuzzleServiceC2):
    """A PuzzleServiceC2 that bounds failed verifications per requester."""

    def __init__(self, max_failures: int = 5, **kwargs):
        super().__init__(**kwargs)
        self.throttle = GuessThrottle(max_failures)

    def verify(self, answers: PuzzleAnswersC2, requester: str = "") -> AccessGrantC2:
        """Same lockout contract as the C1 verifier, returning the C2
        access grant (URL + master key + public key) on success."""
        self.throttle.check(answers.puzzle_id, requester)
        try:
            grant = super().verify(answers)
        except AccessDeniedError:
            self.throttle.record_failure(answers.puzzle_id, requester)
            raise
        self.throttle.record_success(answers.puzzle_id, requester)
        return grant

    def explain(self, answers: PuzzleAnswersC2, requester: str = ""):
        """Same explain/verify shared budget as the C1 service."""
        self.throttle.check(answers.puzzle_id, requester)
        explanation = super().explain(answers)
        if explanation.granted:
            self.throttle.record_success(answers.puzzle_id, requester)
        else:
            self.throttle.record_failure(answers.puzzle_id, requester)
        return explanation
