"""Social puzzles — the paper's core contribution.

Two constructions for context-based access control:

* :mod:`repro.core.construction1` — Shamir-secret-sharing based (Fig. 1):
  :class:`SharerC1`, :class:`PuzzleServiceC1`, :class:`ReceiverC1`.
* :mod:`repro.core.construction2` — CP-ABE based (Fig. 2) with the new
  Perturb/Reconstruct algorithms: :class:`SharerC2`,
  :class:`PuzzleServiceC2`, :class:`ReceiverC2`.

Shared vocabulary: :class:`Context` / :class:`QAPair` (section IV's
key-value context model) and :class:`Puzzle` (the Z_O object). Baselines
live in :mod:`repro.core.baseline`.
"""

from repro.core.context import Context, QAPair, normalize_answer
from repro.core.cookies import AnswerStore
from repro.core.construction1 import (
    DisplayedPuzzle,
    PuzzleAnswers,
    PuzzleServiceC1,
    ReceiverC1,
    ShareRelease,
    SharerC1,
)
from repro.core.construction2 import (
    AccessGrantC2,
    DisplayedPuzzleC2,
    PuzzleAnswersC2,
    PuzzleServiceC2,
    ReceiverC2,
    SharerC2,
    perturb_tree,
    reconstruct_tree,
)
from repro.core.errors import (
    AccessDeniedError,
    PuzzleParameterError,
    SocialPuzzleError,
    TamperDetectedError,
    UnknownPuzzleError,
)
from repro.core.entropy import (
    AnswerStrength,
    PuzzleStrengthReport,
    audit_puzzle_strength,
    estimate_answer_entropy_bits,
)
from repro.core.album import AlbumManifest, AlbumReceiver, AlbumSharer
from repro.core.picture import ImageRef, PicturePuzzleBuilder, PictureQuestion
from repro.core.throttle import ThrottledError, ThrottledPuzzleServiceC1
from repro.core.puzzle import Puzzle, PuzzleEntry
from repro.core.recommend import CandidateQuestion, ContextRecommender
from repro.core.rotation import (
    RotatingPuzzleService,
    RotationPolicy,
    install_rotation_c2,
    rotate_puzzle,
    rotate_upload_c2,
)

__all__ = [
    "Context",
    "QAPair",
    "normalize_answer",
    "AnswerStore",
    "Puzzle",
    "PuzzleEntry",
    "audit_puzzle_strength",
    "estimate_answer_entropy_bits",
    "AnswerStrength",
    "PuzzleStrengthReport",
    "ContextRecommender",
    "CandidateQuestion",
    "rotate_puzzle",
    "rotate_upload_c2",
    "install_rotation_c2",
    "RotationPolicy",
    "RotatingPuzzleService",
    "ImageRef",
    "PictureQuestion",
    "PicturePuzzleBuilder",
    "AlbumSharer",
    "AlbumReceiver",
    "AlbumManifest",
    "ThrottledPuzzleServiceC1",
    "ThrottledError",
    "SharerC1",
    "PuzzleServiceC1",
    "ReceiverC1",
    "DisplayedPuzzle",
    "PuzzleAnswers",
    "ShareRelease",
    "SharerC2",
    "PuzzleServiceC2",
    "ReceiverC2",
    "DisplayedPuzzleC2",
    "PuzzleAnswersC2",
    "AccessGrantC2",
    "perturb_tree",
    "reconstruct_tree",
    "SocialPuzzleError",
    "PuzzleParameterError",
    "AccessDeniedError",
    "TamperDetectedError",
    "UnknownPuzzleError",
]
