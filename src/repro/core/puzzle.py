"""The social puzzle object Z_O of Construction 1 (paper section V-A).

    Z_O = { <q_1, H(a_1, K_Z), a_1 XOR d_1>, ...,
            <q_n, H(a_n, K_Z), a_n XOR d_n>,  n, k, K_Z, URL_O }

Each entry binds a question to (i) the keyed hash of its normalized answer
under the puzzle key K_Z — what the SP matches responses against — and
(ii) the Shamir share of the object secret, blinded with the answer.

**Blinding detail.** The paper writes ``a_i XOR d_i`` directly; answers and
shares are different lengths, so (like any real implementation must) we
XOR the share with a keystream derived from the answer:
``mask_i = HKDF(ikm=a_i, salt=K_Z, info="blind"||i)``. Anyone who knows
a_i removes the mask; to anyone who does not, the blinded share is
indistinguishable from random — the same two properties the paper's
security analysis uses.

Entries also carry the x-coordinate s_i of the share in the clear. This
matches the protocol: the SP returns ``<sigma(j), a XOR d>`` pairs, and
the x-coordinates are random field elements chosen independently of the
secret, so revealing them leaks nothing (Shamir's secrecy is over the
y-values).

A puzzle may be *signed* (BLS over every component, section VI's
countermeasure) so receivers can detect SP tampering.

**Nested policies.** A puzzle whose shares were dealt by the policy
plane's share-of-shares compiler (:mod:`repro.policy.compile`) carries
the label-free gate shape in ``policy_shape``; entries map to shape
leaves in order, and ``k`` is the root gate's threshold. Flat puzzles
leave the field empty and their byte encoding (and therefore their BLS
signature) is unchanged from the classic artifact — the shape blob is
appended only when present, and it is signature-covered when it is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import PuzzleParameterError
from repro.crypto.bls import BlsScheme
from repro.crypto.ec import CurveParams, Point
from repro.crypto.field import PrimeField
from repro.crypto.kdf import hkdf
from repro.crypto.mac import keyed_hash
from repro.crypto.shamir import Share
from repro.util.codec import Reader, blob, text, u32

__all__ = ["PuzzleEntry", "Puzzle", "blind_share", "unblind_share"]


def _blind_mask(answer: bytes, puzzle_key: bytes, index: int, length: int) -> bytes:
    return hkdf(
        ikm=answer,
        length=length,
        salt=puzzle_key,
        info=b"repro.c1.blind." + index.to_bytes(4, "big"),
    )


def blind_share(
    share: Share, field: PrimeField, answer: bytes, puzzle_key: bytes, index: int
) -> bytes:
    """``a_i XOR d_i``: the share's y-value masked by the answer keystream."""
    width = field.byte_length
    y_bytes = share.y.to_bytes(width, "big")
    mask = _blind_mask(answer, puzzle_key, index, width)
    return bytes(a ^ b for a, b in zip(y_bytes, mask))


def unblind_share(
    x: int,
    blinded: bytes,
    field: PrimeField,
    answer: bytes,
    puzzle_key: bytes,
    index: int,
) -> Share:
    """Inverse of :func:`blind_share` for a receiver who knows the answer."""
    mask = _blind_mask(answer, puzzle_key, index, len(blinded))
    y = int.from_bytes(bytes(a ^ b for a, b in zip(blinded, mask)), "big")
    return Share(x=x, y=y % field.p)


_SHARE_X_WIDTH = 32  # the C1 field is 256-bit; fixed width keeps wire sizes stable


@dataclass(frozen=True)
class PuzzleEntry:
    """One puzzle row <q_i, H(a_i, K_Z), s_i, a_i XOR d_i>."""

    question: str
    answer_digest: bytes
    share_x: int
    blinded_share: bytes

    def to_bytes(self) -> bytes:
        return (
            text(self.question)
            + blob(self.answer_digest)
            + blob(self.share_x.to_bytes(_SHARE_X_WIDTH, "big"))
            + blob(self.blinded_share)
        )

    @classmethod
    def read_from(cls, reader: Reader) -> "PuzzleEntry":
        return cls(
            question=reader.text(),
            answer_digest=reader.blob(),
            share_x=int.from_bytes(reader.blob(), "big"),
            blinded_share=reader.blob(),
        )


@dataclass(frozen=True)
class Puzzle:
    """The complete Z_O uploaded to the service provider."""

    entries: tuple[PuzzleEntry, ...]
    k: int
    puzzle_key: bytes
    url: str
    sharer_name: str = ""
    signature: bytes = b""  # BLS point encoding; empty = unsigned
    signer_public: bytes = b""  # BLS public key point encoding
    policy_shape: bytes = b""  # encoded gate shape; empty = flat k-of-n

    def __post_init__(self) -> None:
        if not self.entries:
            raise PuzzleParameterError("a puzzle needs at least one entry")
        if not 0 < self.k <= len(self.entries):
            raise PuzzleParameterError(
                "threshold k=%d out of range for n=%d entries"
                % (self.k, len(self.entries))
            )
        questions = [e.question for e in self.entries]
        if len(set(questions)) != len(questions):
            raise PuzzleParameterError("puzzle questions must be distinct")

    @property
    def n(self) -> int:
        return len(self.entries)

    @property
    def questions(self) -> list[str]:
        return [e.question for e in self.entries]

    def entry_for(self, question: str) -> PuzzleEntry:
        for entry in self.entries:
            if entry.question == question:
                return entry
        raise KeyError("no entry for question %r" % question)

    def verify_response(self, question: str, response_digest: bytes) -> bool:
        """The SP-side check: does the keyed hash match?"""
        entry = self.entry_for(question)
        return entry.answer_digest == response_digest

    @staticmethod
    def response_digest(answer_normalized: bytes, puzzle_key: bytes) -> bytes:
        """What a receiver sends: H(a, K_Z)."""
        return keyed_hash(answer_normalized, puzzle_key)

    # -- signatures (section VI countermeasure) --------------------------------------

    def _base_payload(self) -> bytes:
        out = u32(self.k) + blob(self.puzzle_key) + text(self.url)
        out += text(self.sharer_name)
        out += u32(len(self.entries))
        for entry in self.entries:
            out += entry.to_bytes()
        return out

    def signed_payload(self) -> bytes:
        """Every SP-tamperable component, canonically encoded.

        The policy shape joins the payload only when present so flat
        puzzles keep their classic signature bytes; when present it is
        covered — an SP rewriting gate thresholds is tampering exactly
        like rewriting k.
        """
        out = self._base_payload()
        if self.policy_shape:
            out += blob(self.policy_shape)
        return out

    def sign(self, scheme: BlsScheme, secret: int, public: Point) -> "Puzzle":
        signature = scheme.sign(secret, self.signed_payload())
        return replace(
            self,
            signature=signature.to_bytes(),
            signer_public=public.to_bytes(),
        )

    def verify_signature(self, scheme: BlsScheme) -> bool:
        """Check the sharer's signature over all components."""
        if not self.signature or not self.signer_public:
            return False
        params: CurveParams = scheme.params
        try:
            signature = Point.from_bytes(params, self.signature)
            public = Point.from_bytes(params, self.signer_public)
        except ValueError:
            return False
        return scheme.verify(public, self.signed_payload(), signature)

    # -- wire encoding ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = (
            self._base_payload() + blob(self.signature) + blob(self.signer_public)
        )
        if self.policy_shape:
            out += blob(self.policy_shape)
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "Puzzle":
        reader = Reader(data)
        k = reader.u32()
        puzzle_key = reader.blob()
        url = reader.text()
        sharer_name = reader.text()
        count = reader.u32()
        entries = tuple(PuzzleEntry.read_from(reader) for _ in range(count))
        signature = reader.blob()
        signer_public = reader.blob()
        # Optional trailing shape: absent in (and byte-compatible with)
        # every flat puzzle ever encoded.
        policy_shape = reader.blob() if reader.remaining() else b""
        reader.done()
        return cls(
            entries=entries,
            k=k,
            puzzle_key=puzzle_key,
            url=url,
            sharer_name=sharer_name,
            signature=signature,
            signer_public=signer_public,
            policy_shape=policy_shape,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())
