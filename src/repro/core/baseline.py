"""Baseline schemes the paper argues against.

* :class:`TrivialContextScheme` — the strawman from the introduction: the
  key is derived from *all* context answers, so a receiver must know the
  entire context (no threshold flexibility). Useful as a comparison point
  in benchmarks and as an executable argument for why thresholds matter.
* :class:`StaticAclScheme` — plain access-control-list sharing as OSNs do
  natively: the SP holds the plaintext and the list. It trivially offers
  no surveillance resistance (the SP sees everything), which the
  benchmark/analysis suites demonstrate against the audit trail.
"""

from __future__ import annotations

from repro.core.context import Context, normalize_answer
from repro.core.errors import AccessDeniedError
from repro.crypto import gibberish
from repro.crypto.hashes import sha3_256
from repro.osn.provider import ServiceProvider, User
from repro.osn.storage import StorageHost

__all__ = ["TrivialContextScheme", "StaticAclScheme"]


class TrivialContextScheme:
    """Encrypt under H(all answers); decrypt requires the full context."""

    # A wrong key occasionally survives CBC unpadding by chance (~2^-8);
    # the header makes wrong-context failures deterministic.
    _HEADER = b"TRIVIAL-V1\x1e"

    def __init__(self, storage: StorageHost):
        self.storage = storage

    @staticmethod
    def _derive_key(context: Context) -> bytes:
        material = b"\x1f".join(
            normalize_answer(pair.answer).encode() for pair in context.pairs
        )
        return sha3_256(material).hexdigest().encode()

    def share(self, obj: bytes, context: Context) -> str:
        """Encrypt ``obj`` under the full context; returns URL_O."""
        return self.storage.put(
            gibberish.encrypt(self._HEADER + obj, self._derive_key(context))
        )

    def access(self, url: str, knowledge: Context) -> bytes:
        """Succeeds only when ``knowledge`` matches the ENTIRE context,
        in the same order — the inflexibility the paper criticizes."""
        encrypted = self.storage.get(url)
        try:
            plaintext = gibberish.decrypt(encrypted, self._derive_key(knowledge))
        except ValueError as exc:
            raise AccessDeniedError(
                "trivial scheme requires knowledge of the full context"
            ) from exc
        if not plaintext.startswith(self._HEADER):
            raise AccessDeniedError(
                "trivial scheme requires knowledge of the full context"
            )
        return plaintext[len(self._HEADER):]


class StaticAclScheme:
    """Native OSN sharing: plaintext post restricted to an explicit ACL."""

    def __init__(self, provider: ServiceProvider):
        self.provider = provider

    def share(self, author: User, obj: bytes, allowed: list[User]) -> int:
        """Post the object (plaintext!) with a custom audience."""
        post = self.provider.post(
            author,
            obj.decode("utf-8", errors="replace"),
            audience=[u.user_id for u in allowed],
        )
        return post.post_id

    def access(self, viewer: User, post_id: int) -> bytes:
        try:
            post = self.provider.get_post(viewer, post_id)
        except Exception as exc:
            raise AccessDeniedError("viewer is not on the ACL") from exc
        return post.content.encode("utf-8")
