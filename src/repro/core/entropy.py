"""Answer-strength auditing for social puzzles.

The section VI analysis (and our executable dictionary attacks in
:mod:`repro.analysis.security`) shows that the whole design rests on the
answers not being efficiently guessable: the SP holds K_Z and the keyed
hashes, so a low-entropy answer is one dictionary away from being cracked,
and Construction 2's unkeyed hashes are even precomputable.

This module gives sharers the tool the paper's prototype lacked: estimate
each answer's guessing entropy, model the best-case attacker (who targets
the k *weakest* answers — that is all a threshold puzzle requires), and
produce actionable warnings before a puzzle is published.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.context import Context, normalize_answer

__all__ = [
    "estimate_answer_entropy_bits",
    "AnswerStrength",
    "PuzzleStrengthReport",
    "audit_puzzle_strength",
]

# Common low-entropy answers (colors, yes/no, weekdays, months...): an
# attacker's first dictionary. Deliberately small — it models the *shape*
# of such lists, and callers can pass domain vocabularies explicitly.
_COMMON_ANSWERS = {
    "yes", "no", "maybe", "red", "blue", "green", "black", "white", "pink",
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday", "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
    "pizza", "beer", "wine", "cake", "home", "work", "school", "park",
    "beach", "one", "two", "three", "1", "2", "3", "0", "true", "false",
}

# Per-character entropy by character class, in bits (conservative
# estimates in the spirit of NIST SP 800-63's password guidance).
_BITS_PER_LOWER = 2.0
_BITS_PER_DIGIT = 1.5
_BITS_PER_OTHER = 3.0


def estimate_answer_entropy_bits(
    answer: str, vocabulary_size: int | None = None
) -> float:
    """Estimated guessing entropy of one (normalized) answer, in bits.

    When the answer is known to come from a fixed domain (the paper's
    model: "each key defines a domain" — e.g. one of ~40 plausible party
    venues), pass ``vocabulary_size``; the entropy is then log2 of that.
    Otherwise a character-class estimate is used, floored to near zero for
    answers in the common-answer dictionary.
    """
    normalized = normalize_answer(answer)
    if not normalized:
        return 0.0
    if normalized in _COMMON_ANSWERS:
        return math.log2(len(_COMMON_ANSWERS))
    bits = 0.0
    for ch in normalized:
        if ch.isdigit():
            bits += _BITS_PER_DIGIT
        elif ch.isalpha():
            bits += _BITS_PER_LOWER
        elif ch != " ":
            bits += _BITS_PER_OTHER
    # Multi-word answers repeat per-word structure; damp beyond 24 chars.
    if len(normalized) > 24:
        bits = 48.0 + (bits - 48.0) * 0.5
    if vocabulary_size is not None:
        # A known answer domain caps the attacker's search space: the
        # effective entropy is the smaller of the two estimates.
        if vocabulary_size < 1:
            raise ValueError("vocabulary_size must be >= 1")
        bits = min(bits, math.log2(vocabulary_size))
    return bits


@dataclass(frozen=True)
class AnswerStrength:
    """Strength estimate for one context pair."""

    question: str
    entropy_bits: float
    weak: bool


@dataclass(frozen=True)
class PuzzleStrengthReport:
    """Strength audit of a full (context, k) puzzle configuration.

    ``warnings`` block publication (the k-weakest attack cost is below the
    floor); ``notes`` are advisory per-answer observations — a threshold
    puzzle tolerates individually weak answers as long as the combined
    cost of the cheapest k stays high.
    """

    answers: tuple[AnswerStrength, ...]
    threshold: int
    attack_cost_bits: float
    warnings: tuple[str, ...]
    notes: tuple[str, ...] = ()

    @property
    def acceptable(self) -> bool:
        return not self.warnings


def audit_puzzle_strength(
    context: Context,
    k: int,
    vocabulary_sizes: dict[str, int] | None = None,
    weak_threshold_bits: float = 16.0,
    minimum_attack_bits: float = 40.0,
) -> PuzzleStrengthReport:
    """Audit a puzzle before publication.

    The attacker model matches :func:`repro.analysis.security.
    sp_dictionary_attack_c1`: the adversary needs ANY k correct answers,
    so the effective attack cost is the sum of the k smallest per-answer
    entropies (guessing each independently).
    """
    if not 0 < k <= len(context):
        raise ValueError("threshold k=%d out of range for context of %d" % (k, len(context)))
    vocabulary_sizes = vocabulary_sizes or {}

    strengths = []
    for pair in context.pairs:
        bits = estimate_answer_entropy_bits(
            pair.answer, vocabulary_sizes.get(pair.question)
        )
        strengths.append(
            AnswerStrength(
                question=pair.question,
                entropy_bits=bits,
                weak=bits < weak_threshold_bits,
            )
        )

    weakest_k = sorted(s.entropy_bits for s in strengths)[:k]
    attack_cost = sum(weakest_k)

    notes: list[str] = []
    for strength in strengths:
        if strength.weak:
            notes.append(
                "answer to %r has only ~%.0f bits of guessing entropy"
                % (strength.question, strength.entropy_bits)
            )
    warnings: list[str] = []
    if attack_cost < minimum_attack_bits:
        warnings.append(
            "the %d weakest answers total ~%.0f bits — below the %.0f-bit "
            "floor; a dictionary attack by the SP is practical"
            % (k, attack_cost, minimum_attack_bits)
        )

    return PuzzleStrengthReport(
        answers=tuple(strengths),
        threshold=k,
        attack_cost_bits=attack_cost,
        warnings=tuple(warnings),
        notes=tuple(notes),
    )
