"""The context model (paper section IV-A).

The context C_O of a shared object O is a set of N key-value
(question-answer) pairs ``{<q_1, a_1>, ..., <q_N, a_N>}``: each question
defines a domain and its answer takes a single value from that domain.
People who took part in the underlying event are presumed to know (some
of) the answers.

Answers are *normalized* before hashing — receivers type them by hand, so
"Lake Tahoe ", "lake tahoe" and "LAKE  TAHOE" must verify identically.
Normalization is part of the protocol contract: sharer and receiver must
apply the same function, and the hashes the SP stores are hashes of the
normalized form.
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.core.errors import PuzzleParameterError

__all__ = ["normalize_answer", "QAPair", "Context"]


def normalize_answer(answer: str) -> str:
    """Canonical form of a typed answer: NFKC, casefolded, whitespace
    collapsed. Questions are NOT normalized (they are display text)."""
    folded = unicodedata.normalize("NFKC", answer).casefold()
    return " ".join(folded.split())


@dataclass(frozen=True)
class QAPair:
    """One context pair <q_i, a_i>."""

    question: str
    answer: str

    def __post_init__(self) -> None:
        if not self.question.strip():
            raise PuzzleParameterError("question must be non-empty")
        if not normalize_answer(self.answer):
            raise PuzzleParameterError("answer must be non-empty")

    @property
    def normalized_answer(self) -> str:
        return normalize_answer(self.answer)

    def answer_bytes(self) -> bytes:
        return self.normalized_answer.encode("utf-8")

    def matches(self, candidate: str) -> bool:
        """Case/whitespace-insensitive answer comparison."""
        return normalize_answer(candidate) == self.normalized_answer


class Context:
    """An ordered, immutable collection of distinct-question QA pairs."""

    __slots__ = ("pairs",)

    def __init__(self, pairs: Iterable[QAPair]):
        collected = tuple(pairs)
        if not collected:
            raise PuzzleParameterError("a context needs at least one QA pair")
        questions = [p.question for p in collected]
        if len(set(questions)) != len(questions):
            raise PuzzleParameterError("context questions must be distinct")
        object.__setattr__(self, "pairs", collected)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Context is immutable")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, str]) -> "Context":
        return cls(QAPair(q, a) for q, a in mapping.items())

    # -- queries -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[QAPair]:
        return iter(self.pairs)

    def __getitem__(self, index: int) -> QAPair:
        return self.pairs[index]

    @property
    def questions(self) -> list[str]:
        return [p.question for p in self.pairs]

    def answer_for(self, question: str) -> str:
        for pair in self.pairs:
            if pair.question == question:
                return pair.answer
        raise KeyError("no such question: %r" % question)

    def knows(self, question: str) -> bool:
        return any(p.question == question for p in self.pairs)

    def subset(self, questions: Iterable[str]) -> "Context":
        """The sub-context restricted to the given questions — models a
        receiver with partial knowledge of the event."""
        wanted = list(questions)
        return Context(QAPair(q, self.answer_for(q)) for q in wanted)

    def take(self, count: int) -> "Context":
        """The first ``count`` pairs (partial knowledge, prefix form)."""
        if not 0 < count <= len(self.pairs):
            raise PuzzleParameterError(
                "cannot take %d pairs from a context of %d" % (count, len(self.pairs))
            )
        return Context(self.pairs[:count])

    def as_mapping(self) -> dict[str, str]:
        return {p.question: p.answer for p in self.pairs}

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Context) and self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        return f"Context({len(self.pairs)} pairs)"
