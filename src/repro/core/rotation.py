"""Puzzle rotation — the paper's section VI-C collusion countermeasure.

"Sharers can periodically modify the puzzle Z_O and/or the encryption key
K_O (by re-encrypting the object) to partially protect against such
collusion attacks."

:func:`rotate_puzzle` re-runs the Upload pipeline for an existing object:
a fresh polynomial secret M_O' (hence a fresh object key K_O'), a fresh
puzzle key K_Z', fresh share points, a re-encrypted object at a *new*
URL, and removal of the old ciphertext. Everything an adversary may have
hoarded — released blinded shares, the old K_Z, the old URL — becomes
useless, while legitimate receivers simply solve the rotated puzzle with
the same answers (the context itself does not change).

:class:`RotationPolicy` decides *when* to rotate (after a number of
released-share events or a time budget), so a service can automate the
paper's "periodically".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construction1 import PuzzleServiceC1, SharerC1
from repro.core.construction2 import C2Upload, PuzzleServiceC2, SharerC2, split_attribute
from repro.core.context import Context
from repro.core.errors import PuzzleParameterError, UnknownPuzzleError
from repro.core.puzzle import Puzzle

__all__ = [
    "rotate_puzzle",
    "rotate_upload_c2",
    "install_rotation_c2",
    "RotationPolicy",
    "RotatingPuzzleService",
]


def rotate_puzzle(
    sharer: SharerC1,
    old_puzzle: Puzzle,
    obj: bytes,
    context: Context,
    delete_old_object: bool = True,
) -> Puzzle:
    """Produce a freshly keyed replacement for ``old_puzzle``.

    The sharer must still hold the object and its context (the paper's
    sharer-side rotation). The new puzzle keeps k and n, but every secret
    component is regenerated.
    """
    new_puzzle = sharer.upload(obj, context, k=old_puzzle.k, n=old_puzzle.n)
    if delete_old_object:
        sharer.storage.delete(old_puzzle.url)
    if new_puzzle.puzzle_key == old_puzzle.puzzle_key:
        raise PuzzleParameterError("rotation failed to refresh the puzzle key")
    return new_puzzle


def rotate_upload_c2(
    sharer: SharerC2,
    old_record: C2Upload,
    obj: bytes,
    context: Context,
    k: int,
    n: int | None = None,
    delete_old_object: bool = True,
) -> tuple[C2Upload, bytes]:
    """Construction 2 rotation: a fresh CP-ABE Setup (new alpha/beta, new
    PK/MK), fresh encryption randomness, a new ciphertext at a new URL.

    Hoarded master keys and ciphertexts from before the rotation become
    useless; the context (and therefore receivers' answers) stays put.
    """
    record, ct_bytes = sharer.upload(obj, context, k=k, n=n)
    if delete_old_object:
        sharer.storage.delete(old_record.url)
    if record.mk_bytes == old_record.mk_bytes:
        raise PuzzleParameterError("rotation failed to refresh the master key")
    return record, ct_bytes


def install_rotation_c2(
    service: PuzzleServiceC2, puzzle_id: int, new_record: C2Upload
) -> None:
    """Swap a rotated C2 upload in under an existing puzzle id."""
    old = service._record(puzzle_id)
    if new_record.mk_bytes == old.mk_bytes:
        raise PuzzleParameterError("replacement upload was not re-keyed")
    old_questions = {
        split_attribute(a)[0] for a in old.tree_perturbed.attributes()
    }
    new_questions = {
        split_attribute(a)[0] for a in new_record.tree_perturbed.attributes()
    }
    if old_questions != new_questions:
        raise PuzzleParameterError(
            "rotation must preserve the question set (the context is fixed)"
        )
    service._records[puzzle_id] = C2Upload(
        puzzle_id=puzzle_id,
        tree_perturbed=new_record.tree_perturbed,
        pk_bytes=new_record.pk_bytes,
        mk_bytes=new_record.mk_bytes,
        url=new_record.url,
        sharer_name=new_record.sharer_name,
    )


@dataclass
class RotationPolicy:
    """When to rotate: after ``max_releases`` successful share releases
    (each release leaks blinded shares to one receiver) — the quantity a
    colluding audience accumulates."""

    max_releases: int = 25

    def __post_init__(self) -> None:
        if self.max_releases < 1:
            raise ValueError("max_releases must be >= 1")

    def should_rotate(self, releases_since_rotation: int) -> bool:
        return releases_since_rotation >= self.max_releases


class RotatingPuzzleService(PuzzleServiceC1):
    """A PuzzleServiceC1 that tracks release counts and tells the sharer
    when rotation is due.

    The SP cannot rotate by itself (it never holds the object or the
    answers); it can only *signal*. ``due_for_rotation`` is that signal,
    and :meth:`install_rotation` applies a sharer-produced replacement
    under the same puzzle id so existing hyperlinks keep working.
    """

    def __init__(self, policy: RotationPolicy | None = None, **kwargs):
        super().__init__(**kwargs)
        self.policy = policy if policy is not None else RotationPolicy()
        self._releases: dict[int, int] = {}

    def verify(self, answers):
        release = super().verify(answers)
        self._releases[answers.puzzle_id] = (
            self._releases.get(answers.puzzle_id, 0) + 1
        )
        return release

    def releases_since_rotation(self, puzzle_id: int) -> int:
        self._puzzle(puzzle_id)  # raises UnknownPuzzleError when absent
        return self._releases.get(puzzle_id, 0)

    def due_for_rotation(self, puzzle_id: int) -> bool:
        return self.policy.should_rotate(self.releases_since_rotation(puzzle_id))

    def install_rotation(self, puzzle_id: int, new_puzzle: Puzzle) -> None:
        """Swap in a rotated puzzle under the existing identifier."""
        old = self._puzzle(puzzle_id)
        if old.puzzle_key == new_puzzle.puzzle_key:
            raise PuzzleParameterError("replacement puzzle was not re-keyed")
        if {e.question for e in old.entries} != {
            e.question for e in new_puzzle.entries
        }:
            raise PuzzleParameterError(
                "rotation must preserve the question set (the context is fixed)"
            )
        self.audit.record(new_puzzle.to_bytes())
        self._puzzles[puzzle_id] = new_puzzle
        self._releases[puzzle_id] = 0
