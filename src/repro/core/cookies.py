"""The client-side answer store — the paper's "local cookie file".

Section VII (Implementation 1): "On receiving the answers to the questions
from the receiver, a JavaScript subroutine (at the receiver) writes all
the answers to a local cookie file. ... the receiver first retrieves the
actual answers from the cookie file."

The prototype stored answers in a *plaintext* browser cookie — a privacy
hazard on a shared machine. This store keeps the convenience (answer once,
reuse across the flow and across puzzles about the same event) while
encrypting at rest: the whole store is one GibberishAES container under a
user passphrase, so a stolen cookie file is as useless as the DH's blobs.

Contents are per-question answers, shared across puzzles: a user who
answered "Where was the party held?" once is auto-filled on every later
puzzle asking the same question (the paper's events "remain the same for
future similar events").
"""

from __future__ import annotations

from repro.core.context import Context, QAPair, normalize_answer
from repro.crypto import gibberish
from repro.util.codec import Reader, text, u32

__all__ = ["AnswerStore"]


class AnswerStore:
    """An encrypted, file-backed map of question -> answer."""

    def __init__(self, passphrase: bytes):
        if not passphrase:
            raise ValueError("the answer store needs a non-empty passphrase")
        self._passphrase = passphrase
        self._answers: dict[str, str] = {}

    # -- content ---------------------------------------------------------------

    def remember(self, question: str, answer: str) -> None:
        if not question.strip():
            raise ValueError("question must be non-empty")
        self._answers[question] = normalize_answer(answer)

    def remember_context(self, context: Context) -> None:
        for pair in context.pairs:
            self.remember(pair.question, pair.answer)

    def recall(self, question: str) -> str | None:
        return self._answers.get(question)

    def forget(self, question: str) -> None:
        self._answers.pop(question, None)

    def forget_all(self) -> None:
        self._answers.clear()

    def __len__(self) -> int:
        return len(self._answers)

    def knowledge_for(self, questions: list[str]) -> Context | None:
        """Auto-fill: the sub-context of remembered answers among the
        displayed questions (None when nothing matches)."""
        pairs = [
            QAPair(question, self._answers[question])
            for question in questions
            if question in self._answers
        ]
        return Context(pairs) if pairs else None

    # -- persistence -------------------------------------------------------------

    def _encode(self) -> bytes:
        out = u32(len(self._answers))
        for question in sorted(self._answers):
            out += text(question) + text(self._answers[question])
        return out

    def save(self, path: str) -> None:
        """Encrypt and write the whole store."""
        with open(path, "wb") as handle:
            handle.write(gibberish.encrypt(self._encode(), self._passphrase))

    @classmethod
    def load(cls, path: str, passphrase: bytes) -> "AnswerStore":
        """Decrypt and load; raises ValueError on a wrong passphrase or a
        tampered file."""
        store = cls(passphrase)
        with open(path, "rb") as handle:
            plaintext = gibberish.decrypt(handle.read(), passphrase)
        reader = Reader(plaintext)
        count = reader.u32()
        for _ in range(count):
            question = reader.text()
            answer = reader.text()
            store._answers[question] = answer
        reader.done()
        return store
