"""Albums: many objects behind one social puzzle.

The paper's motivating example is "sharing messages or pictures of a past
social gathering" — usually a whole album, not one file. Rather than one
puzzle per photo (receivers would answer the same questions repeatedly),
an album shares ONE polynomial secret M_O: each item is encrypted under a
per-item key derived from M_O and the item's title, and an encrypted
*manifest* (the item titles and their DH URLs) sits behind the puzzle's
URL_O. Solving the puzzle once unlocks the manifest and every item.

Security is unchanged from Construction 1: the DH stores only ciphertexts
(manifest included), the SP sees only the puzzle, and per-item keys are
independent hashes of the secret, so a leaked item key reveals neither
M_O nor sibling keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.construction1 import DisplayedPuzzle, ReceiverC1, ShareRelease, SharerC1
from repro.core.context import Context
from repro.core.errors import PuzzleParameterError, TamperDetectedError
from repro.core.puzzle import Puzzle
from repro.crypto import gibberish
from repro.crypto.hashes import sha3_256
from repro.util.codec import Reader, text, u32

__all__ = ["AlbumManifest", "AlbumSharer", "AlbumReceiver"]

_MANIFEST_LABEL = b"\x00manifest"


def _album_key(secret_m: int, label: bytes) -> bytes:
    """Per-item passphrase: H(M_O || label), domain-separated from the
    single-object K_O = H(M_O)."""
    material = secret_m.to_bytes(32, "big") + b"\x1e" + label
    return sha3_256(material).hexdigest().encode()


@dataclass(frozen=True)
class AlbumManifest:
    """Titles and storage URLs of an album's items, in upload order."""

    items: tuple[tuple[str, str], ...]  # (title, url)

    def titles(self) -> list[str]:
        return [title for title, _ in self.items]

    def url_for(self, title: str) -> str:
        for item_title, url in self.items:
            if item_title == title:
                return url
        raise KeyError("no album item titled %r" % title)

    def to_bytes(self) -> bytes:
        out = u32(len(self.items))
        for title, url in self.items:
            out += text(title) + text(url)
        return out

    @classmethod
    def from_bytes(cls, data: bytes) -> "AlbumManifest":
        reader = Reader(data)
        count = reader.u32()
        items = tuple((reader.text(), reader.text()) for _ in range(count))
        reader.done()
        return cls(items=items)


class AlbumSharer:
    """Wraps a :class:`SharerC1` to share multi-item albums."""

    def __init__(self, sharer: SharerC1):
        self.sharer = sharer

    def upload_album(
        self, items: dict[str, bytes], context: Context, k: int, n: int
    ) -> Puzzle:
        """Encrypt every item + a manifest under one puzzle secret.

        ``items`` maps titles to contents; titles must be distinct and
        non-empty.
        """
        if not items:
            raise PuzzleParameterError("an album needs at least one item")
        if any(not title.strip() for title in items):
            raise PuzzleParameterError("album item titles must be non-empty")

        # Share a placeholder first to obtain the puzzle (and its secret):
        # we need M_O before we can encrypt the items, but M_O only exists
        # inside upload(). Instead, run the standard upload on the
        # *manifest* and derive item keys from the same secret — which
        # requires recovering M_O the way a receiver would. To keep the
        # dealer honest we replicate upload()'s secret generation here.
        from repro.crypto.polynomial import Polynomial

        polynomial = Polynomial.random(self.sharer.field, k - 1)
        secret_m = int(polynomial.constant_term())

        manifest_items = []
        for title, content in items.items():
            encrypted = gibberish.encrypt(content, _album_key(secret_m, title.encode()))
            url = self.sharer.storage.put(encrypted)
            manifest_items.append((title, url))
        manifest = AlbumManifest(items=tuple(manifest_items))

        encrypted_manifest = gibberish.encrypt(
            manifest.to_bytes(), _album_key(secret_m, _MANIFEST_LABEL)
        )
        return self.sharer.upload_with_polynomial(
            encrypted_manifest, context, k, n, polynomial
        )


class AlbumReceiver:
    """Wraps a :class:`ReceiverC1` to open albums item by item."""

    def __init__(self, receiver: ReceiverC1):
        self.receiver = receiver
        self._secret: int | None = None
        self._manifest: AlbumManifest | None = None

    def open_album(
        self,
        release: ShareRelease,
        displayed: DisplayedPuzzle,
        knowledge: Context,
        expected_signature: Puzzle | None = None,
    ) -> AlbumManifest:
        """Solve the puzzle once; decrypt and cache the manifest."""
        self._secret = self.receiver.recover_object_secret(
            release, displayed, knowledge, expected_signature=expected_signature
        )
        encrypted_manifest = self.receiver.storage.get(release.url)
        try:
            manifest_bytes = gibberish.decrypt(
                encrypted_manifest, _album_key(self._secret, _MANIFEST_LABEL)
            )
        except ValueError as exc:
            raise TamperDetectedError(
                "manifest decryption failed — wrong answers or tampered storage"
            ) from exc
        self._manifest = AlbumManifest.from_bytes(manifest_bytes)
        return self._manifest

    def fetch_item(self, title: str) -> bytes:
        """Download and decrypt one item (after :meth:`open_album`)."""
        if self._secret is None or self._manifest is None:
            raise PuzzleParameterError("open_album must succeed before fetching items")
        url = self._manifest.url_for(title)
        encrypted = self.receiver.storage.get(url)
        try:
            return gibberish.decrypt(encrypted, _album_key(self._secret, title.encode()))
        except ValueError as exc:
            raise TamperDetectedError(
                "album item decryption failed — tampered storage"
            ) from exc

    def fetch_all(self) -> dict[str, bytes]:
        if self._manifest is None:
            raise PuzzleParameterError("open_album must succeed before fetching items")
        return {title: self.fetch_item(title) for title in self._manifest.titles()}
