"""Picture-based puzzles (paper section VIII, planned features).

"We also plan to add additional features to our applications, e.g.,
support for non-textual data, picture-based puzzles ..."

A picture puzzle asks "which of these photos shows where we had dinner?"
instead of asking the receiver to *type* the place: each question is
answered by selecting an image. Under the hood this reduces cleanly to
Construction 1 — the textual "answer" becomes a digest of the correct
image's canonical bytes — so all security properties carry over, and the
SP still sees only keyed hashes.

Why it helps usability: selection is typo-free (no normalization hazards)
and recall of an image is easier than recall of exact wording. Why it
needs care: the answer space is the *candidate set shown*, so the
per-question entropy is log2(#candidates) — the strength auditor's
vocabulary-size hook models exactly this, and :class:`PicturePuzzleBuilder`
enforces a minimum candidate count.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.core.context import Context, QAPair
from repro.core.entropy import audit_puzzle_strength
from repro.core.errors import PuzzleParameterError

__all__ = ["ImageRef", "PictureQuestion", "PicturePuzzleBuilder", "image_answer_token"]


def image_answer_token(image_bytes: bytes) -> str:
    """The canonical textual answer for an image: a hex digest of its
    content. Selecting the image == knowing the token."""
    from repro.crypto.hashes import sha3_256

    if not image_bytes:
        raise PuzzleParameterError("an image must have content")
    return "img:" + sha3_256(image_bytes).hexdigest()


@dataclass(frozen=True)
class ImageRef:
    """One candidate image: opaque content plus a display label."""

    label: str
    content: bytes

    def token(self) -> str:
        return image_answer_token(self.content)


@dataclass(frozen=True)
class PictureQuestion:
    """A question answered by picking one of ``candidates``."""

    question: str
    candidates: tuple[ImageRef, ...]
    correct_index: int

    def __post_init__(self) -> None:
        if not 0 <= self.correct_index < len(self.candidates):
            raise PuzzleParameterError("correct_index out of range")
        tokens = [c.token() for c in self.candidates]
        if len(set(tokens)) != len(tokens):
            raise PuzzleParameterError("candidate images must be distinct")

    @property
    def correct(self) -> ImageRef:
        return self.candidates[self.correct_index]

    def answer_for_selection(self, index: int) -> str:
        """The textual answer a client submits after the user clicks
        candidate ``index``."""
        return self.candidates[index].token()


class PicturePuzzleBuilder:
    """Builds a Construction-1-compatible context from picture questions."""

    def __init__(self, min_candidates: int = 4):
        if min_candidates < 2:
            raise PuzzleParameterError("a picture question needs >= 2 candidates")
        self.min_candidates = min_candidates

    def make_question(
        self,
        question: str,
        correct: ImageRef,
        decoys: list[ImageRef],
        shuffle_seed: int | None = None,
    ) -> PictureQuestion:
        """Assemble one picture question with the correct image placed at
        a random position among the decoys."""
        if len(decoys) + 1 < self.min_candidates:
            raise PuzzleParameterError(
                "need at least %d candidates, got %d"
                % (self.min_candidates, len(decoys) + 1)
            )
        import random

        rng = random.Random(
            shuffle_seed if shuffle_seed is not None else secrets.randbits(32)
        )
        candidates = list(decoys)
        position = rng.randrange(len(decoys) + 1)
        candidates.insert(position, correct)
        return PictureQuestion(
            question=question,
            candidates=tuple(candidates),
            correct_index=position,
        )

    def build_context(self, questions: list[PictureQuestion]) -> Context:
        """The C1-compatible context: answers are the correct tokens."""
        if not questions:
            raise PuzzleParameterError("a picture puzzle needs at least one question")
        return Context(
            QAPair(q.question, q.correct.token()) for q in questions
        )

    def audit(self, questions: list[PictureQuestion], k: int):
        """Strength audit with each question's true domain: the candidate
        count (an attacker just tries every shown image)."""
        context = self.build_context(questions)
        vocab = {q.question: len(q.candidates) for q in questions}
        return audit_puzzle_strength(
            context,
            k,
            vocabulary_sizes=vocab,
            # Picture selection domains are inherently tiny (one click out
            # of a handful); the floor reflects "more candidates or more
            # questions", not passphrase-grade entropy.
            weak_threshold_bits=2.0,
            minimum_attack_bits=float(k * 2),
        )

    @staticmethod
    def knowledge_from_selections(
        questions: list[PictureQuestion], selections: dict[str, int]
    ) -> Context:
        """What a receiver 'knows' after clicking: question -> token of
        the image they selected (right or wrong)."""
        pairs = []
        for question in questions:
            if question.question in selections:
                pairs.append(
                    QAPair(
                        question.question,
                        question.answer_for_selection(
                            selections[question.question]
                        ),
                    )
                )
        if not pairs:
            raise PuzzleParameterError("no selections made")
        return Context(pairs)
