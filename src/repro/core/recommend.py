"""Automated context recommendation (paper section VIII, planned features).

"We also plan to add additional features to our applications, e.g., ...
automated client-side context recommendations, to improve its
ease-of-usage and to enhance user-experience."

:class:`ContextRecommender` implements that feature: given an event kind
(and optionally a few facts the sharer already typed), it proposes
candidate question-answer pairs from a curated template bank, scores each
candidate's answer strength with :mod:`repro.core.entropy`, and assembles
a publication-ready context of the requested size whose strength audit
passes. Recommendation is entirely client-side — nothing here talks to
the SP, preserving surveillance resistance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.context import Context, QAPair
from repro.core.entropy import audit_puzzle_strength, estimate_answer_entropy_bits
from repro.core.errors import PuzzleParameterError

__all__ = ["CandidateQuestion", "ContextRecommender"]

# Question templates per event kind. Answers are supplied by the sharer;
# the `example_domain_size` models how many plausible answers an outside
# attacker would have to try (the paper's "each key defines a domain").
_TEMPLATE_BANK: dict[str, list[tuple[str, int]]] = {
    # Recommended questions are deliberately open-ended compounds ("who +
    # what + why") precisely so their answer domains are large; a closed
    # domain like "which conference room" (a few hundred options) is what
    # this feature steers sharers away from.
    "party": [
        ("Where exactly was the party held, down to the room?", 10**7),
        ("Who brought the cake, and what flavor was it?", 10**8),
        ("What embarrassing thing happened after midnight?", 10**9),
        ("Which song did everyone dance to at the end?", 10**6),
        ("What was written on the banner?", 10**8),
        ("Who arrived last, and what was their excuse?", 10**8),
    ],
    "trip": [
        ("Which hostel did we stay at, and what was wrong with it?", 10**8),
        ("What did we rent to get around, and from whom?", 10**8),
        ("What dish did the group order twice, and where?", 10**7),
        ("Who lost something important, and what was it?", 10**8),
        ("What was the name of the guide or driver?", 10**6),
        ("Which detour did we take that was not on the itinerary?", 10**9),
    ],
    "meeting": [
        ("What is the internal codename of the project?", 10**6),
        ("What deadline did the team commit to, verbatim?", 10**6),
        ("Who presented the roadmap, and which slide broke?", 10**8),
        ("What metric did we agree to track weekly, and why?", 10**7),
        ("What did the client ask for that made everyone groan?", 10**9),
    ],
    "wedding": [
        ("What was the first dance song, and who chose it?", 10**7),
        ("Who caught the bouquet, and how?", 10**7),
        ("What went wrong during the toast?", 10**9),
        ("What was served as the main course, with which side?", 10**7),
        ("Where did the couple sneak off to for photos?", 10**7),
    ],
}


@dataclass(frozen=True)
class CandidateQuestion:
    """A recommended question plus the modelled answer-domain size."""

    question: str
    domain_size: int


class ContextRecommender:
    """Client-side recommendation of strong puzzle contexts."""

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)

    @staticmethod
    def event_kinds() -> list[str]:
        return sorted(_TEMPLATE_BANK)

    def suggest_questions(
        self, kind: str, count: int | None = None
    ) -> list[CandidateQuestion]:
        """Questions for the sharer to answer, strongest domains first."""
        try:
            bank = _TEMPLATE_BANK[kind]
        except KeyError:
            raise PuzzleParameterError(
                "unknown event kind %r; choose from %s"
                % (kind, self.event_kinds())
            ) from None
        ranked = sorted(bank, key=lambda item: -item[1])
        if count is not None:
            if count < 1:
                raise PuzzleParameterError("count must be >= 1")
            ranked = ranked[:count]
        return [CandidateQuestion(q, size) for q, size in ranked]

    def score_answer(self, answer: str) -> float:
        """Entropy estimate the UI can surface while the sharer types."""
        return estimate_answer_entropy_bits(answer)

    def build_context(
        self,
        kind: str,
        answers: dict[str, str],
        k: int,
        min_answer_bits: float = 10.0,
    ) -> Context:
        """Assemble a context from sharer-provided answers, rejecting
        configurations whose strength audit fails.

        ``answers`` maps recommended questions to the sharer's answers.
        Answers weaker than ``min_answer_bits`` are dropped with the
        remaining set re-audited, so one lazy "yes" cannot sink the
        whole puzzle.
        """
        bank = {c.question: c.domain_size for c in self.suggest_questions(kind)}
        unknown = set(answers) - set(bank)
        if unknown:
            raise PuzzleParameterError(
                "answers supplied for non-recommended questions: %s"
                % sorted(unknown)
            )
        kept: list[QAPair] = []
        for question, answer in answers.items():
            if estimate_answer_entropy_bits(answer) >= min_answer_bits:
                kept.append(QAPair(question, answer))
        if len(kept) < k:
            raise PuzzleParameterError(
                "only %d answers met the %.0f-bit minimum; threshold k=%d "
                "is unreachable" % (len(kept), min_answer_bits, k)
            )
        context = Context(kept)
        vocab = {pair.question: bank[pair.question] for pair in kept}
        report = audit_puzzle_strength(context, k, vocabulary_sizes=vocab)
        if not report.acceptable:
            raise PuzzleParameterError(
                "recommended context failed its strength audit: %s"
                % "; ".join(report.warnings)
            )
        return context
