"""Construction 1: context-based access control from Shamir secret sharing
(paper section V-A).

Five subroutines, split across the three principals exactly as in Fig. 1:

* sharer S            — ``Upload(O, k, n)``
* service provider SP — ``DisplayPuzzle(Z_O)`` and ``Verify(u, h_1..h_r)``
* receiver u          — ``AnswerPuzzle(q_1..q_r, K_Z)`` and ``Access(...)``

The sharer draws a random degree-k polynomial P with secret M_O = P(0),
derives the object key K_O = H(M_O), encrypts O (GibberishAES container,
as the paper's JavaScript prototype does), stores it on the storage host
DH, and uploads the puzzle Z_O (questions, keyed answer hashes, blinded
shares, k, K_Z, URL_O) to the SP. The SP displays a random subset of
r in [k, n] questions; a receiver returns keyed hashes of her answers; the
SP releases the blinded shares of correctly answered questions once at
least k verify; the receiver unblinds k shares, interpolates M_O and
decrypts.

The SP handles only: questions, keyed hashes, blinded shares, K_Z and
URL_O — never a plaintext answer or the object. That is the surveillance
resistance property, and the integration tests assert it against the SP's
audit trail.
"""

from __future__ import annotations

import random
import secrets
import threading
from dataclasses import dataclass

from repro.abe.access_tree import AccessTree
from repro.core.context import Context, normalize_answer
from repro.core.errors import (
    AccessDeniedError,
    PuzzleParameterError,
    TamperDetectedError,
    UnknownPuzzleError,
)
from repro.core.puzzle import Puzzle, PuzzleEntry, blind_share, unblind_share
from repro.crypto import gibberish
from repro.crypto.bls import BlsKeyPair, BlsScheme
from repro.crypto.field import PrimeField
from repro.crypto.hashes import sha3_256
from repro.crypto.polynomial import Polynomial
from repro.crypto.shamir import Share, reconstruct_secret
from repro.osn.storage import AuditTrail, StorageHost
from repro.policy.compile import encode_shape, share_plan, shape_tree, solve_shape
from repro.policy.explain import Explanation, explain_tree
from repro.policy.model import PuzzlePolicy
from repro.util.codec import Reader, blob, text, u32

__all__ = [
    "C1_FIELD_PRIME",
    "DisplayedPuzzle",
    "PuzzleAnswers",
    "ShareRelease",
    "SharerC1",
    "PuzzleServiceC1",
    "ReceiverC1",
]

# The finite field F for secrets and shares: the largest 256-bit prime.
C1_FIELD_PRIME = 2**256 - 189


def _object_key(secret_m: int) -> bytes:
    """K_O = H(M_O): hex passphrase for the GibberishAES container."""
    return sha3_256(secret_m.to_bytes(32, "big")).hexdigest().encode()


@dataclass(frozen=True)
class DisplayedPuzzle:
    """What the SP shows a prospective receiver: a permuted random subset
    of r in [k, n] questions plus the puzzle key K_Z."""

    puzzle_id: int
    questions: tuple[str, ...]
    puzzle_key: bytes
    k: int

    def to_bytes(self) -> bytes:
        body = u32(self.puzzle_id) + u32(self.k) + blob(self.puzzle_key)
        for question in self.questions:
            body += text(question)
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "DisplayedPuzzle":
        reader = Reader(data)
        puzzle_id = reader.u32()
        k = reader.u32()
        puzzle_key = reader.blob()
        questions = []
        while reader.remaining():
            questions.append(reader.text())
        return cls(
            puzzle_id=puzzle_id,
            questions=tuple(questions),
            puzzle_key=puzzle_key,
            k=k,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class PuzzleAnswers:
    """A receiver's response: keyed hashes H(a, K_Z) per question."""

    puzzle_id: int
    digests: dict[str, bytes]  # question -> H(answer, K_Z)

    def to_bytes(self) -> bytes:
        body = u32(self.puzzle_id)
        for question, digest in self.digests.items():
            body += text(question) + blob(digest)
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "PuzzleAnswers":
        reader = Reader(data)
        puzzle_id = reader.u32()
        digests: dict[str, bytes] = {}
        while reader.remaining():
            question = reader.text()
            digests[question] = reader.blob()
        return cls(puzzle_id=puzzle_id, digests=digests)

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class ReleasedShare:
    """One <sigma(j), a XOR d> element sent back for a correct answer."""

    question: str
    entry_index: int
    share_x: int
    blinded_share: bytes


@dataclass(frozen=True)
class ShareRelease:
    """The SP's reply when the puzzle policy is satisfied: blinded shares
    of the correctly answered questions plus URL_O.

    For a flat puzzle "satisfied" means >= k hashes matched; for a
    nested-policy puzzle the released entries satisfied the gate shape,
    which rides along in ``policy_shape`` so the receiver can run the
    share-of-shares reconstruction (entry indices identify shape leaves).
    """

    puzzle_id: int
    k: int
    url: str
    shares: tuple[ReleasedShare, ...]
    policy_shape: bytes = b""

    def to_bytes(self) -> bytes:
        body = (
            u32(self.puzzle_id)
            + u32(self.k)
            + text(self.url)
            + blob(self.policy_shape)
        )
        for released in self.shares:
            body += (
                text(released.question)
                + u32(released.entry_index)
                + blob(released.share_x.to_bytes(32, "big"))
                + blob(released.blinded_share)
            )
        return body

    @classmethod
    def from_bytes(cls, data: bytes) -> "ShareRelease":
        reader = Reader(data)
        puzzle_id = reader.u32()
        k = reader.u32()
        url = reader.text()
        policy_shape = reader.blob()
        shares = []
        while reader.remaining():
            shares.append(
                ReleasedShare(
                    question=reader.text(),
                    entry_index=reader.u32(),
                    share_x=int.from_bytes(reader.blob(), "big"),
                    blinded_share=reader.blob(),
                )
            )
        return cls(
            puzzle_id=puzzle_id,
            k=k,
            url=url,
            shares=tuple(shares),
            policy_shape=policy_shape,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


class SharerC1:
    """The sharer role: builds puzzles and uploads encrypted objects."""

    def __init__(
        self,
        name: str,
        storage: StorageHost,
        bls: BlsScheme | None = None,
        field_prime: int = C1_FIELD_PRIME,
    ):
        self.name = name
        self.storage = storage
        self.field = PrimeField(field_prime, check_prime=False)
        self.bls = bls
        self.keys: BlsKeyPair | None = bls.keygen() if bls else None

    def upload(self, obj: bytes, context: Context, k: int, n: int) -> Puzzle:
        """The paper's Upload(O, k, n): encrypt, store, build Z_O.

        ``n`` questions are taken from the context (n <= N) and ``k`` is
        the knowledge threshold zeta_O.
        """
        if not 0 < k <= n:
            raise PuzzleParameterError("need 0 < k <= n, got k=%d n=%d" % (k, n))
        polynomial = Polynomial.random(self.field, k - 1)
        object_key = _object_key(int(polynomial.constant_term()))
        encrypted = gibberish.encrypt(obj, object_key)
        return self.upload_with_polynomial(encrypted, context, k, n, polynomial)

    def upload_with_polynomial(
        self,
        encrypted_obj: bytes,
        context: Context,
        k: int,
        n: int,
        polynomial: Polynomial,
    ) -> Puzzle:
        """Build and publish Z_O around an already-encrypted object using a
        caller-supplied sharing polynomial.

        Higher layers (e.g. :mod:`repro.core.album`) use this to derive
        several object keys from one secret; the polynomial's constant term
        is M_O and MUST have been generated fresh for this puzzle.
        """
        if not 0 < k <= n:
            raise PuzzleParameterError("need 0 < k <= n, got k=%d n=%d" % (k, n))
        if n > len(context):
            raise PuzzleParameterError(
                "puzzle needs n=%d pairs but context has only %d" % (n, len(context))
            )
        degree_ok = polynomial.degree == k - 1 or (
            polynomial.degree == -1 and k == 1  # zero constant term, k=1
        )
        if polynomial.field != self.field or not degree_ok:
            raise PuzzleParameterError(
                "sharing polynomial must be over the puzzle field with degree k-1"
            )

        url = self.storage.put(encrypted_obj)
        puzzle_key = secrets.token_bytes(16)
        entries = []
        used_x: set[int] = set()
        for index, pair in enumerate(context.pairs[:n]):
            while True:
                x = secrets.randbelow(self.field.p - 1) + 1
                if x not in used_x:
                    used_x.add(x)
                    break
            share = Share(x=x, y=int(polynomial(x)))
            answer = pair.answer_bytes()
            entries.append(
                PuzzleEntry(
                    question=pair.question,
                    answer_digest=Puzzle.response_digest(answer, puzzle_key),
                    share_x=x,
                    blinded_share=blind_share(
                        share, self.field, answer, puzzle_key, index
                    ),
                )
            )

        puzzle = Puzzle(
            entries=tuple(entries),
            k=k,
            puzzle_key=puzzle_key,
            url=url,
            sharer_name=self.name,
        )
        if self.bls and self.keys:
            puzzle = puzzle.sign(self.bls, self.keys.secret, self.keys.public)
        return puzzle

    def upload_policy(
        self, obj: bytes, context: Context, policy: PuzzlePolicy
    ) -> Puzzle:
        """Upload under an arbitrary nested policy (the policy plane's
        share-of-shares compiler).

        The flat ``k of (q_1..q_n)`` policy degenerates to the classic
        :meth:`upload` artifact — same byte encoding, no shape blob — so
        existing receivers and golden vectors are untouched. A nested
        policy deals shares down the gate tree (fresh polynomial per
        gate, child position as x), blinds each leaf share under its
        question's answer exactly like a flat entry, and records the
        label-free gate shape in the puzzle.
        """
        policy.require_answerable(context)
        if policy.is_flat():
            flat_context = Context.from_mapping(
                {q: context.answer_for(q) for q in policy.questions}
            )
            return self.upload(
                obj,
                flat_context,
                policy.root_threshold,
                len(policy.questions),
            )

        secret_m = secrets.randbelow(self.field.p)
        object_key = _object_key(secret_m)
        encrypted = gibberish.encrypt(obj, object_key)
        url = self.storage.put(encrypted)
        puzzle_key = secrets.token_bytes(16)

        plan = share_plan(policy.tree, self.field, secret_m)
        entries = []
        for index, (question, share) in enumerate(zip(policy.questions, plan)):
            answer = normalize_answer(context.answer_for(question)).encode()
            entries.append(
                PuzzleEntry(
                    question=question,
                    answer_digest=Puzzle.response_digest(answer, puzzle_key),
                    share_x=share.x,
                    blinded_share=blind_share(
                        share, self.field, answer, puzzle_key, index
                    ),
                )
            )

        puzzle = Puzzle(
            entries=tuple(entries),
            k=policy.root_threshold,
            puzzle_key=puzzle_key,
            url=url,
            sharer_name=self.name,
            policy_shape=encode_shape(policy.tree),
        )
        if self.bls and self.keys:
            puzzle = puzzle.sign(self.bls, self.keys.secret, self.keys.public)
        return puzzle


class PuzzleServiceC1:
    """The SP-side access-control service: stores puzzles, displays
    question subsets and verifies hashed answers."""

    def __init__(self, audit: AuditTrail | None = None):
        self.audit = audit if audit is not None else AuditTrail()
        self._puzzles: dict[int, Puzzle] = {}
        self._retracting: dict[int, Puzzle] = {}
        self._policy_texts: dict[int, str] = {}
        self._serial = 0
        # Guards identifier allocation only: concurrent store_puzzle
        # calls (the smart server dispatches in worker threads) must
        # never mint the same id. Reads and single-key dict updates stay
        # lock-free under the GIL.
        self._serial_lock = threading.Lock()

    def store_puzzle(self, puzzle: Puzzle) -> int:
        """Accept an uploaded Z_O; returns its post/puzzle identifier."""
        self.audit.record(puzzle.to_bytes())
        with self._serial_lock:
            self._serial += 1
            puzzle_id = self._serial
        self._puzzles[puzzle_id] = puzzle
        return puzzle_id

    def _puzzle(self, puzzle_id: int) -> Puzzle:
        try:
            return self._puzzles[puzzle_id]
        except KeyError:
            raise UnknownPuzzleError(puzzle_id) from None

    def puzzle_count(self) -> int:
        return len(self._puzzles)

    def remove_puzzle(self, puzzle_id: int) -> bool:
        """Unregister a puzzle (sharer retraction or publish rollback);
        returns whether anything was removed. Identifiers are never
        reused, so a rolled-back registration leaves no trace."""
        prepared = self._retracting.pop(puzzle_id, None) is not None
        self._policy_texts.pop(puzzle_id, None)
        return self._puzzles.pop(puzzle_id, None) is not None or prepared

    # -- the policy plane ----------------------------------------------------------

    def attach_policy(self, puzzle_id: int, policy_text: str) -> None:
        """Record the sharer's canonical policy expression for a stored
        puzzle (the SharePolicy verb). Question-level only — the text
        must never contain answers, and the SP uses it purely to echo a
        faithful rendering in explain replies."""
        self._puzzle(puzzle_id)  # raises UnknownPuzzleError
        self._policy_texts[puzzle_id] = policy_text

    def policy_text(self, puzzle_id: int) -> str | None:
        """The attached policy expression, if the sharer registered one."""
        return self._policy_texts.get(puzzle_id)

    def question_tree(self, puzzle_id: int) -> AccessTree:
        """The question-level policy tree of a stored puzzle: the gate
        shape re-labeled with the questions (nested), or the implicit
        height-1 ``k of (questions)`` gate (flat)."""
        puzzle = self._puzzle(puzzle_id)
        if puzzle.policy_shape:
            return shape_tree(puzzle.policy_shape, puzzle.questions)
        return AccessTree.k_of_n(puzzle.k, puzzle.questions)

    def _matched_questions(self, answers: PuzzleAnswers) -> set[str]:
        puzzle = self._puzzle(answers.puzzle_id)
        matched: set[str] = set()
        for question, digest in answers.digests.items():
            try:
                entry = puzzle.entry_for(question)
            except KeyError:
                continue
            if entry.answer_digest == digest:
                matched.add(question)
        return matched

    def explain(self, answers: PuzzleAnswers) -> Explanation:
        """The audit-grade derivation for one verification attempt.

        Evaluates the question-level tree over the *matched* leaves and
        traces every gate — grant and deny alike (no exception on deny:
        the whole point is explaining the failure). Only questions and
        gate arithmetic enter the trace; never a hash, answer or share.
        """
        matched = self._matched_questions(answers)
        return explain_tree(
            self.question_tree(answers.puzzle_id),
            matched,
            construction=1,
            puzzle_id=answers.puzzle_id,
            policy_text=self._policy_texts.get(answers.puzzle_id),
        )

    # -- the two-phase retract saga ----------------------------------------------

    def prepare_retract(self, puzzle_id: int) -> str:
        """Saga phase 1: move the registration into the retracting set —
        display/verify stop serving it immediately — and return its
        URL_O so the DH plane can delete the blob. Idempotent: re-
        preparing an already-prepared puzzle returns the same URL.
        Unknown ids raise :class:`UnknownPuzzleError`."""
        if puzzle_id in self._retracting:
            return self._retracting[puzzle_id].url
        puzzle = self._puzzle(puzzle_id)
        self._retracting[puzzle_id] = puzzle
        del self._puzzles[puzzle_id]
        return puzzle.url

    def commit_retract(self, puzzle_id: int) -> bool:
        """Saga phase 2: discard the prepared registration for good;
        returns whether a prepared retract existed (idempotent)."""
        committed = self._retracting.pop(puzzle_id, None) is not None
        if committed:
            self._policy_texts.pop(puzzle_id, None)
        return committed

    def abort_retract(self, puzzle_id: int) -> bool:
        """Saga rollback: restore a prepared registration, exactly as it
        was before the prepare; returns whether one was pending."""
        puzzle = self._retracting.pop(puzzle_id, None)
        if puzzle is None:
            return False
        self._puzzles[puzzle_id] = puzzle
        return True

    def pending_retracts(self) -> list[int]:
        """Prepared-but-uncommitted retracts (recovery introspection)."""
        return sorted(self._retracting)

    def display_puzzle(
        self, puzzle_id: int, rng: random.Random | None = None
    ) -> DisplayedPuzzle:
        """DisplayPuzzle(Z_O): random r in [k, n], permutation sigma.

        Nested-policy puzzles display every question (permuted): the
        paper's r-sampling is a flat-threshold notion, and withholding a
        leaf could make a satisfiable branch (e.g. the escrow arm of an
        OR) unanswerable.
        """
        puzzle = self._puzzle(puzzle_id)
        rng = rng or random.Random(secrets.randbits(64))
        r = puzzle.n if puzzle.policy_shape else rng.randint(puzzle.k, puzzle.n)
        questions = rng.sample(puzzle.questions, r)
        return DisplayedPuzzle(
            puzzle_id=puzzle_id,
            questions=tuple(questions),
            puzzle_key=puzzle.puzzle_key,
            k=puzzle.k,
        )

    def verify(self, answers: PuzzleAnswers) -> ShareRelease:
        """Verify(u, h_1..h_r): release blinded shares iff the policy holds.

        Flat puzzles keep the paper's rule — >= k hashes match. A puzzle
        carrying a policy shape instead evaluates the gate tree over the
        matched questions (still hashes only). Either way a failure
        raises :class:`AccessDeniedError` with no partial information
        (the paper: "SP does not send anything").
        """
        puzzle = self._puzzle(answers.puzzle_id)
        self.audit.record(
            b"".join(q.encode() + d for q, d in answers.digests.items())
        )
        released: list[ReleasedShare] = []
        for question, digest in answers.digests.items():
            try:
                entry = puzzle.entry_for(question)
            except KeyError:
                continue
            if entry.answer_digest == digest:
                released.append(
                    ReleasedShare(
                        question=question,
                        entry_index=puzzle.entries.index(entry),
                        share_x=entry.share_x,
                        blinded_share=entry.blinded_share,
                    )
                )
        if puzzle.policy_shape:
            tree = shape_tree(puzzle.policy_shape, puzzle.questions)
            if not tree.satisfied_by({r.question for r in released}):
                raise AccessDeniedError(
                    "the %d verified answers do not satisfy the puzzle policy"
                    % len(released)
                )
        elif len(released) < puzzle.k:
            raise AccessDeniedError(
                "only %d of the required %d answers verified"
                % (len(released), puzzle.k)
            )
        return ShareRelease(
            puzzle_id=answers.puzzle_id,
            k=puzzle.k,
            url=puzzle.url,
            shares=tuple(released),
            policy_shape=puzzle.policy_shape,
        )


class ReceiverC1:
    """The receiver role: answers puzzles and reconstructs objects."""

    def __init__(
        self,
        name: str,
        storage: StorageHost,
        bls: BlsScheme | None = None,
        field_prime: int = C1_FIELD_PRIME,
    ):
        self.name = name
        self.storage = storage
        self.field = PrimeField(field_prime, check_prime=False)
        self.bls = bls

    def answer_puzzle(
        self, displayed: DisplayedPuzzle, knowledge: Context
    ) -> PuzzleAnswers:
        """AnswerPuzzle: keyed hashes for every displayed question the
        receiver believes she can answer."""
        digests: dict[str, bytes] = {}
        for question in displayed.questions:
            if knowledge.knows(question):
                answer = normalize_answer(knowledge.answer_for(question)).encode()
                digests[question] = Puzzle.response_digest(
                    answer, displayed.puzzle_key
                )
        return PuzzleAnswers(puzzle_id=displayed.puzzle_id, digests=digests)

    def recover_object_secret(
        self,
        release: ShareRelease,
        displayed: DisplayedPuzzle,
        knowledge: Context,
        expected_signature: Puzzle | None = None,
    ) -> int:
        """Unblind k released shares and interpolate M_O.

        When the sharer signed the puzzle and the receiver holds the signed
        copy (e.g. re-fetched out of band), verifying it first detects SP
        tampering with URL_O / K_Z / questions (section VI-A). Exposed
        separately from :meth:`access` so higher layers (albums) can derive
        multiple object keys from one solved puzzle.
        """
        if expected_signature is not None:
            if self.bls is None:
                raise PuzzleParameterError("no BLS scheme configured for verification")
            if not expected_signature.verify_signature(self.bls):
                raise TamperDetectedError("puzzle signature verification failed")

        if release.policy_shape:
            # Nested policy: unblind every released share and run the
            # share-of-shares recursion over the gate shape (entry index
            # identifies the shape leaf, share_x its position under its
            # parent gate).
            leaf_values: dict[int, int] = {}
            for released in release.shares:
                answer = normalize_answer(
                    knowledge.answer_for(released.question)
                ).encode()
                share = unblind_share(
                    released.share_x,
                    released.blinded_share,
                    self.field,
                    answer,
                    displayed.puzzle_key,
                    released.entry_index,
                )
                leaf_values[released.entry_index] = share.y
            secret = solve_shape(release.policy_shape, leaf_values, self.field)
            if secret is None:
                raise AccessDeniedError(
                    "released shares do not satisfy the puzzle policy"
                )
            return secret

        if len(release.shares) < release.k:
            raise AccessDeniedError(
                "release contains %d shares but k=%d" % (len(release.shares), release.k)
            )

        shares: list[Share] = []
        for released in release.shares[: release.k]:
            answer = normalize_answer(knowledge.answer_for(released.question)).encode()
            shares.append(
                unblind_share(
                    released.share_x,
                    released.blinded_share,
                    self.field,
                    answer,
                    displayed.puzzle_key,
                    released.entry_index,
                )
            )
        return int(reconstruct_secret(self.field, shares, release.k))

    def access(
        self,
        release: ShareRelease,
        displayed: DisplayedPuzzle,
        knowledge: Context,
        expected_signature: Puzzle | None = None,
    ) -> bytes:
        """Access: recover M_O, fetch O_{K_O} from the DH and decrypt."""
        secret_m = self.recover_object_secret(
            release, displayed, knowledge, expected_signature=expected_signature
        )
        encrypted = self.storage.get(release.url)
        try:
            return gibberish.decrypt(encrypted, _object_key(secret_m))
        except ValueError as exc:
            raise TamperDetectedError(
                "object decryption failed — wrong answers or tampered storage"
            ) from exc
