"""Audit-safe structured event log: redaction *by construction*.

The paper's whole point is that the SP and DH never see a context answer
or a plaintext object — an observability layer that casually serialized
those into log lines would undo the protocol. This log makes that class
of leak impossible at the type level rather than by reviewer diligence:

* ``bytes`` values are **always** fingerprinted. There is no opt-out:
  keys, ciphertexts, answers and plaintexts can never reach a log line
  in the clear, no matter what a future call site passes.
* Free-form ``str`` values are fingerprinted **by default**. Only
  operational identifiers explicitly wrapped in :class:`Label` (state
  names, retry labels, ``dh://`` URLs — strings the instrumentation
  author asserts carry no user data) pass through verbatim.
* Field *names* containing a sensitive marker (``answer``, ``key``,
  ``secret``, ``plaintext``, ...) are fingerprinted regardless of value
  type — even a ``Label`` cannot launder them.
* Numbers, booleans and ``None`` pass through (counts, sizes, ids).

Fingerprints are truncated SHA3-256 over a **per-process random salt**
plus the value. The salt defeats offline dictionary matching: without
it, a curious log reader could hash candidate answers and compare. With
it, fingerprints still correlate *within* one run (same value, same
fingerprint — useful for debugging) but reveal nothing across runs.

The log itself is a bounded deque, so long simulations cannot leak
memory through their own telemetry.
"""

from __future__ import annotations

import json
import secrets
from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.crypto.hashes import sha3_256

__all__ = ["Label", "Event", "EventLog", "redact_value", "SENSITIVE_MARKERS"]

#: Field-name substrings that force redaction of the value, whatever it is.
SENSITIVE_MARKERS = (
    "answer",
    "secret",
    "key",
    "plaintext",
    "passphrase",
    "password",
    "token",
)

# One salt per process: fingerprints are stable within a run (so equal
# values correlate in the log) but useless for offline dictionary attacks.
_SALT = secrets.token_bytes(16)


class Label(str):
    """An explicitly-safe operational string (state name, metric label...).

    Wrapping a string in ``Label`` is the *only* way to get it into an
    event or span attribute verbatim. The wrap is an assertion by the
    instrumentation author that the string is operational vocabulary,
    not user data — which makes every pass-through string greppable in
    review (``grep -rn 'Label('``).
    """

    __slots__ = ()


def _fingerprint(data: bytes, kind: str, length: int) -> str:
    digest = sha3_256(_SALT + data).hexdigest()[:12]
    return "<redacted %s#%s len=%d>" % (kind, digest, length)


def redact_value(key: str, value: object) -> object:
    """Map one field to its loggable form. Total: never raises on type.

    The rules, in priority order:

    1. sensitive field name  -> fingerprint, no exceptions;
    2. ``bytes``             -> fingerprint (no opt-out);
    3. ``Label``             -> verbatim;
    4. ``str``               -> fingerprint (default-deny);
    5. bool/int/float/None   -> verbatim;
    6. anything else         -> fingerprint of its ``repr``.
    """
    lowered = key.lower()
    sensitive = any(marker in lowered for marker in SENSITIVE_MARKERS)
    if isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        return _fingerprint(raw, "bytes", len(raw))
    if isinstance(value, Label):
        if sensitive:
            encoded = str(value).encode()
            return _fingerprint(encoded, "str", len(encoded))
        return str(value)
    if isinstance(value, str):
        encoded = value.encode()
        return _fingerprint(encoded, "str", len(encoded))
    if value is None or isinstance(value, (bool, int, float)):
        if sensitive and not isinstance(value, bool) and value is not None:
            # A "key_share" integer is still key material.
            encoded = repr(value).encode()
            return _fingerprint(encoded, "num", len(encoded))
        return value
    encoded = repr(value).encode()
    return _fingerprint(encoded, "obj", len(encoded))


@dataclass(frozen=True)
class Event:
    """One structured log record; ``fields`` are already redacted."""

    at_s: float
    name: str
    fields: tuple[tuple[str, object], ...]

    def to_dict(self) -> dict[str, object]:
        return {"at_s": self.at_s, "event": self.name, "fields": dict(self.fields)}

    def serialize(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)


class EventLog:
    """A bounded, clock-stamped log of redacted events."""

    def __init__(self, clock=None, max_events: int = 4096):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.clock = clock
        self.max_events = max_events
        self._events: deque[Event] = deque(maxlen=max_events)
        self.dropped = 0  # how many old events the bound evicted

    def emit(self, name: str, **fields: object) -> Event:
        """Record an event; every field value is redacted on entry."""
        redacted = tuple(
            (key, redact_value(key, value)) for key, value in fields.items()
        )
        at_s = self.clock.now() if self.clock is not None else 0.0
        event = Event(at_s=at_s, name=name, fields=redacted)
        if len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def named(self, name: str) -> list[Event]:
        return [e for e in self._events if e.name == name]

    def serialized(self) -> list[str]:
        """One JSON line per event — what an exporter would ship."""
        return [event.serialize() for event in self._events]

    def assert_never_contains(self, needle: str | bytes, label: str = "secret") -> None:
        """The executable redaction guarantee, mirroring
        :meth:`repro.osn.storage.AuditTrail.assert_never_saw`: the
        sensitive value must not appear in any serialized event."""
        text = needle.decode("utf-8", errors="replace") if isinstance(
            needle, (bytes, bytearray)
        ) else needle
        for line in self.serialized():
            if text and text in line:
                raise AssertionError(
                    "event log leaked the %s in cleartext: %s" % (label, line)
                )
