"""Profiling hooks: ``@profiled`` wall-cost attribution for hot paths.

Decorating a function with :func:`profiled` makes every call, *while an
observability hub is active*, record its wall time into the hub's
registry (histogram ``profile.<name>``) and charge it to the innermost
open span (:meth:`~repro.obs.trace.Span.charge`). A trace then shows not
just "receiver crypto took 12 ms" but *which primitives* inside that
span the time went to — the per-span cost attribution that feeds the
``benchmarks/`` attribution report.

When no hub is active the wrapper is a single ``current()`` check on top
of the call — cheap enough to leave on the CP-ABE and AES container
entry points permanently, which is the intent: decorate coarse crypto
entry points (an encrypt, a KeyGen), not field operations inside loops.

Nested profiled calls each charge the same span under their own name;
the outer figure includes the inner one, so attribution tables should
either pick one altitude or report the nesting explicitly (the
benchmark report does the former).
"""

from __future__ import annotations

import functools
import time
from typing import Callable, TypeVar, overload

from repro.obs.runtime import current

__all__ = ["profiled"]

_F = TypeVar("_F", bound=Callable)


@overload
def profiled(fn: _F) -> _F: ...


@overload
def profiled(*, name: str) -> Callable[[_F], _F]: ...


def profiled(fn=None, *, name: str | None = None):
    """Attribute a function's wall time to the active span and registry.

    Usable bare (``@profiled``) or with an explicit metric name
    (``@profiled(name="cpabe.encrypt")``); the default name is the
    function's qualified name.
    """

    def decorate(func):
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            obs = current()
            if obs is None:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                obs.registry.histogram("profile." + label).observe(elapsed)
                span = obs.tracer.current()
                if span is not None:
                    span.charge(label, elapsed)

        wrapper.__profiled_name__ = label
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
