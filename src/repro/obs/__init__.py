"""repro.obs — zero-dependency observability for the social-puzzle stack.

Four pieces, one hub:

* :class:`~repro.obs.trace.Tracer` — request-scoped span trees with
  parent/child IDs, timed on both the simulated clock and wall time;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  bounded-memory latency histograms (p50/p95/p99);
* :class:`~repro.obs.events.EventLog` — structured events that redact
  answers, keys and free-form strings *by construction*;
* :func:`~repro.obs.profile.profiled` — wall-cost attribution from
  crypto hot paths into the innermost open span.

:class:`Observability` bundles the four around one clock. Activate a hub
for a request (``with obs.activate(): ...``) and every instrumentation
point in the stack — apps, constructions, OSN substrate, resilience
layer — reports into it; leave it inactive and the same call sites cost
one list lookup each. The design rationale (and why this is hand-rolled
rather than an OpenTelemetry dependency) is in docs/OBSERVABILITY.md.

Quick taste::

    from repro.obs import Observability

    obs = Observability()
    with obs.activate():
        with obs.span("demo.request", k=2):
            obs.count("demo.handled")
    print(obs.tracer.format_tree(obs.tracer.finished[-1], timings=False))
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import Event, EventLog, Label, redact_value
from repro.obs.metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from repro.obs.profile import profiled
from repro.obs.runtime import (
    count,
    current,
    emit_event,
    maybe_span,
    observe,
    set_gauge,
    use,
)
from repro.obs.trace import Span, SpanError, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SpanError",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "EventLog",
    "Event",
    "Label",
    "redact_value",
    "profiled",
    "current",
    "use",
    "count",
    "observe",
    "set_gauge",
    "emit_event",
    "maybe_span",
]


class Observability:
    """One clock, one tracer, one registry, one event log.

    ``clock`` defaults to a fresh :class:`~repro.sim.timing.SimClock`;
    pass the clock the resilience layer uses so span windows, event
    timestamps and backoff accounting all share a timeline. Memory is
    bounded everywhere (``max_events`` events, ``max_traces`` retained
    root spans, fixed histogram buckets), so a hub can stay attached to
    a long simulation without becoming a leak.
    """

    def __init__(self, clock=None, max_events: int = 4096, max_traces: int = 1024):
        if clock is None:
            # Deferred import: the sim layer imports the OSN substrate,
            # which imports repro.obs.runtime — importing SimClock at
            # module scope here would close that cycle.
            from repro.sim.timing import SimClock

            clock = SimClock()
        self.clock = clock
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock=clock, registry=self.registry, max_finished=max_traces)
        self.events = EventLog(clock=clock, max_events=max_events)

    # -- convenience pass-throughs --------------------------------------------

    def span(self, name: str, **attributes: object):
        return self.tracer.span(name, **attributes)

    def emit(self, name: str, **fields: object) -> Event:
        return self.events.emit(name, **fields)

    def count(self, name: str, amount: int | float = 1) -> None:
        self.registry.counter(name).add(amount)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    @contextmanager
    def activate(self) -> Iterator["Observability"]:
        """Make this hub the :func:`current` one for the enclosed block."""
        with use(self):
            yield self

    # -- trace hygiene ---------------------------------------------------------

    def assert_trace_hygiene(self, *secrets: bytes | str) -> None:
        """The chaos-harness contract, as one call.

        Asserts (1) the tracer is quiescent — no span left open, every
        retained trace closed root-to-leaf — and (2) none of ``secrets``
        appears in any serialized event or span tree.
        """
        import json

        self.tracer.assert_quiescent()
        blobs = self.events.serialized()
        blobs += [json.dumps(root.to_dict()) for root in self.tracer.finished]
        for secret in secrets:
            text = (
                secret.decode("utf-8", errors="replace")
                if isinstance(secret, (bytes, bytearray))
                else secret
            )
            if not text:
                continue
            for blob in blobs:
                if text in blob:
                    raise AssertionError(
                        "observability output leaked a secret: %s" % blob
                    )
