"""The active-observer registry: how instrumentation finds its sinks.

Instrumentation points are scattered across layers that must not depend
on each other (the storage host cannot import the apps layer, the
network model cannot import the platform). They all meet here instead:
an :class:`~repro.obs.Observability` hub is *activated* for the duration
of a request (``with obs.activate(): ...``), and every instrumented call
site asks :func:`current` for the active hub. When none is active every
helper is a no-op costing one list lookup, so uninstrumented runs —
benchmarks included — pay essentially nothing.

This module is deliberately import-free (standard library only): it is
imported from the lowest layers (``osn.storage``, ``osn.network``) and
must never create an import cycle with them.

Design note: a *per-thread* stack rather than a ``contextvars``
context — each thread owns its own activation stack, so the smart
server's worker threads (:mod:`repro.serve`) can each activate a hub
around one request without corrupting the stacks of their siblings or
of the main thread. Within one thread the semantics are the original
trivially-debuggable push/pop; activation never leaks across threads,
so a thread that wants instrumentation must activate a hub itself
(the server does this per dispatched request).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.obs import Observability
    from repro.obs.trace import Span

__all__ = [
    "current",
    "use",
    "count",
    "observe",
    "set_gauge",
    "emit_event",
    "maybe_span",
]

_STATE = threading.local()


def _stack() -> list["Observability"]:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


def current() -> "Observability | None":
    """The innermost hub activated *by this thread*, or ``None``."""
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use(obs: "Observability") -> Iterator["Observability"]:
    """Activate ``obs`` for the enclosed block (re-entrant, stack-like,
    scoped to the calling thread)."""
    stack = _stack()
    stack.append(obs)
    try:
        yield obs
    finally:
        popped = stack.pop()
        assert popped is obs, "observability activation stack corrupted"


def count(name: str, amount: int | float = 1) -> None:
    """Increment counter ``name`` on the active hub; no-op when inactive."""
    obs = current()
    if obs is not None:
        obs.registry.counter(name).add(amount)


def observe(
    name: str, value: float, bounds: tuple[float, ...] | None = None
) -> None:
    """Record ``value`` into histogram ``name``; no-op when inactive.

    ``bounds`` selects the bucket boundaries if this call creates the
    histogram (e.g. byte-sized rather than latency-sized buckets); an
    existing histogram keeps the bounds it was created with.
    """
    obs = current()
    if obs is not None:
        if bounds is None:
            obs.registry.histogram(name).observe(value)
        else:
            obs.registry.histogram(name, bounds).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name``; no-op when inactive."""
    obs = current()
    if obs is not None:
        obs.registry.gauge(name).set(value)


def emit_event(name: str, **fields: object) -> None:
    """Append a structured (redacted) event; no-op when inactive."""
    obs = current()
    if obs is not None:
        obs.events.emit(name, **fields)


@contextmanager
def maybe_span(name: str, **attributes: object) -> Iterator["Span | None"]:
    """Open a child span on the active tracer, or yield ``None``.

    The workhorse of substrate instrumentation: one line at the call
    site, zero cost when observability is off, and a correctly-parented
    span (closed even on exceptions) when it is on.
    """
    obs = current()
    if obs is None:
        yield None
        return
    with obs.tracer.span(name, **attributes) as span:
        yield span
