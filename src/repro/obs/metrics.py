"""The metrics registry: counters, gauges, bounded-memory histograms.

Zero dependencies, bounded memory by construction:

* :class:`Counter` — a monotonically increasing number (int or float).
* :class:`Gauge` — a last-write-wins level (queue depths, open spans).
* :class:`LatencyHistogram` — a fixed geometric bucket ladder. Memory is
  O(number of buckets) regardless of how many observations land, which
  is what lets the chaos harness record hundreds of thousands of
  latencies without the accounting itself becoming the bottleneck.
  Quantiles (p50/p95/p99) are estimated by linear interpolation inside
  the covering bucket; observations beyond the last bound land in an
  overflow bucket and quantiles falling there are reported as the exact
  observed maximum (never silently clamped).

A :class:`MetricsRegistry` is a get-or-create namespace of the three.
Naming convention (see docs/OBSERVABILITY.md): dotted lowercase paths,
``<layer>.<component>.<measurement>``, units as a ``_s`` / ``.bytes``
suffix — e.g. ``osn.storage.put.bytes``, ``resilience.backoff_s``.

Updates and instrument creation are guarded by one module-wide lock so
a registry shared across the smart server's worker threads
(:mod:`repro.serve`) never loses increments to read-modify-write races;
readers (``render``, ``summary``) are snapshot-consistent enough for
reporting and stay lock-free.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

# One lock for every instrument update: increments are tiny compared to
# the crypto they measure, and a single lock keeps the no-deadlock
# argument trivial.
_UPDATE_LOCK = threading.Lock()

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "BYTE_BOUNDS",
]

# Geometric ladder: 1 µs ... ~33.6 s in powers of two, 26 bounds.
# Observations above the last bound go to the overflow bucket.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2**i for i in range(26))

# For size histograms (e.g. ``proto.msg_bytes``): 16 B ... 16 MiB in
# powers of two, 21 bounds.
BYTE_BOUNDS: tuple[float, ...] = tuple(float(16 * 2**i) for i in range(21))


@dataclass
class Counter:
    """A monotonically increasing counter."""

    value: float = 0

    def increment(self, amount: int = 1) -> None:
        self.add(amount)

    def add(self, amount: int | float) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        with _UPDATE_LOCK:
            self.value += amount


@dataclass
class Gauge:
    """A last-write-wins level; tracks its high-water mark too."""

    value: float = 0.0
    high_water: float = 0.0

    def set(self, value: float) -> None:
        with _UPDATE_LOCK:
            self.value = value
            if value > self.high_water:
                self.high_water = value


class LatencyHistogram:
    """Fixed-bucket histogram with p50/p95/p99 estimation.

    ``bounds`` are the inclusive upper edges of each bucket; one extra
    overflow bucket catches everything beyond the last bound. Exact
    ``count`` / ``total`` / ``min`` / ``max`` are tracked alongside, so
    the mean is exact even though quantiles are bucket-estimates.
    """

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BOUNDS):
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("latencies are non-negative")
        with _UPDATE_LOCK:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        # Binary search over the (small, fixed) bound ladder.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo  # == len(bounds) means overflow

    @property
    def overflow(self) -> int:
        """Observations beyond the last bucket bound."""
        return self._counts[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 < q <= 1``) from the buckets."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index == len(self.bounds):
                    # Overflow: the honest answer is the observed maximum.
                    assert self.max is not None
                    return self.max
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                # Linear interpolation within the covering bucket.
                into_bucket = rank - (cumulative - bucket_count)
                fraction = into_bucket / bucket_count
                estimate = lower + (upper - lower) * fraction
                # Never report outside the observed range.
                assert self.max is not None and self.min is not None
                return min(max(estimate, self.min), self.max)
        raise AssertionError("unreachable: rank <= count")  # pragma: no cover

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def summary(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max if self.max is not None else 0.0,
            "overflow": self.overflow,
        }


@dataclass
class MetricsRegistry:
    """A get-or-create namespace of counters, gauges and histograms.

    One name belongs to exactly one instrument kind: asking for
    ``counter("x")`` after ``histogram("x")`` is a programming error and
    raises, rather than silently shadowing.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self.counters,
            "gauge": self.gauges,
            "histogram": self.histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    "metric %r is already a %s, cannot reuse as a %s"
                    % (name, other_kind, kind)
                )

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            with _UPDATE_LOCK:
                if name not in self.counters:
                    self._check_unique(name, "counter")
                    self.counters[name] = Counter()
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            with _UPDATE_LOCK:
                if name not in self.gauges:
                    self._check_unique(name, "gauge")
                    self.gauges[name] = Gauge()
        return self.gauges[name]

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BOUNDS
    ) -> LatencyHistogram:
        if name not in self.histograms:
            with _UPDATE_LOCK:
                if name not in self.histograms:
                    self._check_unique(name, "histogram")
                    self.histograms[name] = LatencyHistogram(bounds)
        return self.histograms[name]

    def counter_total(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(
            c.value for n, c in self.counters.items() if n.startswith(prefix)
        )

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """``{suffix: value}`` for counters named ``<prefix><suffix>``."""
        return {
            n[len(prefix):]: c.value
            for n, c in self.counters.items()
            if n.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """A plain-data view of everything, for serialization and tests."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """A human-readable snapshot (the body of ``repro stats``)."""
        lines: list[str] = []
        if self.counters:
            lines.append("counters:")
            for name, counter in sorted(self.counters.items()):
                value = counter.value
                shown = "%d" % value if value == int(value) else "%.6g" % value
                lines.append("  %-46s %s" % (name, shown))
        if self.gauges:
            lines.append("gauges:")
            for name, gauge in sorted(self.gauges.items()):
                lines.append(
                    "  %-46s %.6g (high-water %.6g)"
                    % (name, gauge.value, gauge.high_water)
                )
        if self.histograms:
            lines.append(
                "histograms:%42s%9s%9s%9s%9s"
                % ("count", "mean", "p50", "p95", "p99")
            )
            for name, hist in sorted(self.histograms.items()):
                lines.append(
                    "  %-44s%8d%9.2f%9.2f%9.2f%9.2f"
                    % (
                        name,
                        hist.count,
                        hist.mean * 1e3,
                        hist.p50 * 1e3,
                        hist.p95 * 1e3,
                        hist.p99 * 1e3,
                    )
                )
            lines.append("  (histogram columns in milliseconds)")
        return "\n".join(lines) if lines else "(no metrics recorded)"
