"""Span trees: request-scoped tracing on the simulated clock.

A :class:`Span` is one named unit of work with a parent, attributes and
two time axes:

* **simulated time** (``start_s`` / ``end_s``) from the hub's
  :class:`~repro.sim.timing.SimClock` — where retry backoff and breaker
  cooldowns live, so a trace shows *when* in the simulation things
  happened;
* **wall time** (``wall_s``) from ``perf_counter`` — the real cost of
  the crypto underneath, which is what ``repro trace`` prints per span
  and what the profiling hooks attribute against.

The :class:`Tracer` maintains the open-span stack, parents new spans
under the innermost open one, and keeps a bounded deque of finished
root spans. Span attributes go through the same redaction rules as
event fields (:func:`repro.obs.events.redact_value`): raw bytes and
free-form strings can never appear in a dumped trace.

Lifecycle is strict: closing a span twice, or closing a parent while a
child is still open, raises :class:`SpanError` — a trace that lies about
completeness is worse than no trace, so malformed instrumentation fails
loudly in tests instead of producing plausible-looking output.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.obs.events import redact_value
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "SpanError", "Tracer"]


class SpanError(RuntimeError):
    """Span lifecycle misuse: double close, out-of-order close."""


class Span:
    """One node of a trace tree."""

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        start_s: float,
    ):
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: float | None = None
        self.wall_s: float | None = None
        self._wall_start = time.perf_counter()
        self.status = "open"
        self.error: str | None = None
        self.attributes: dict[str, object] = {}
        self.costs: dict[str, float] = {}  # profiled sub-costs, seconds
        self.children: list["Span"] = []

    # -- attributes and cost attribution -------------------------------------

    def set(self, key: str, value: object) -> None:
        """Attach an attribute; the value is redacted on entry."""
        self.attributes[key] = redact_value(key, value)

    def charge(self, cost_name: str, seconds: float) -> None:
        """Attribute ``seconds`` of profiled work to this span."""
        self.costs[cost_name] = self.costs.get(cost_name, 0.0) + seconds

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self.status != "open"

    def close(self, end_s: float, error: str | None = None) -> None:
        if self.closed:
            raise SpanError("span %r (#%d) closed twice" % (self.name, self.span_id))
        open_children = [c.name for c in self.children if not c.closed]
        if open_children:
            raise SpanError(
                "span %r closed while children still open: %s"
                % (self.name, ", ".join(open_children))
            )
        self.end_s = end_s
        self.wall_s = time.perf_counter() - self._wall_start
        if error is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = error

    # -- introspection ---------------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Depth-first over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def assert_complete(self) -> None:
        """Raise if any span in this tree is still open."""
        open_spans = [s.name for s in self.walk() if not s.closed]
        if open_spans:
            raise AssertionError(
                "incomplete trace: open spans %s" % ", ".join(open_spans)
            )

    def to_dict(self) -> dict[str, object]:
        """Plain-data form (already redaction-clean, see :meth:`set`)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "status": self.status,
            "error": self.error,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_s": self.wall_s,
            "attributes": dict(self.attributes),
            "costs": dict(self.costs),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Creates, nests and retains spans.

    ``clock`` is anything with a ``now() -> float`` (a
    :class:`~repro.sim.timing.SimClock` in practice); ``registry``, when
    given, receives a ``span.<name>`` latency observation and a
    ``trace.spans`` count for every finished span, which is how span
    timings flow into ``repro stats`` and the benchmarks.
    """

    def __init__(
        self,
        clock=None,
        registry: MetricsRegistry | None = None,
        max_finished: int = 1024,
    ):
        self.clock = clock
        self.registry = registry
        self.finished: deque[Span] = deque(maxlen=max_finished)
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    # -- span lifecycle -------------------------------------------------------

    def start(self, name: str, **attributes: object) -> Span:
        parent = self._stack[-1] if self._stack else None
        span_id = next(self._ids)
        span = Span(
            name=name,
            span_id=span_id,
            trace_id=parent.trace_id if parent else span_id,
            parent_id=parent.span_id if parent else None,
            start_s=self._now(),
        )
        for key, value in attributes.items():
            span.set(key, value)
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, error: BaseException | None = None) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise SpanError(
                "span %r is not the innermost open span" % span.name
            )
        span.close(
            self._now(),
            error=None if error is None else "%s: %s" % (type(error).__name__, error),
        )
        self._stack.pop()
        if self.registry is not None:
            self.registry.counter("trace.spans").increment()
            assert span.wall_s is not None
            self.registry.histogram("span." + span.name).observe(span.wall_s)
        if span.parent_id is None:
            self.finished.append(span)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span for the enclosed block; closes on exit,
        marking the span errored (and re-raising) on exception."""
        span = self.start(name, **attributes)
        try:
            yield span
        except BaseException as exc:
            self.finish(span, error=exc)
            raise
        else:
            self.finish(span)

    # -- introspection ---------------------------------------------------------

    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def assert_quiescent(self) -> None:
        """Raise unless every started span has been closed."""
        if self._stack:
            raise AssertionError(
                "tracer not quiescent: open spans %s"
                % ", ".join(s.name for s in self._stack)
            )
        for root in self.finished:
            root.assert_complete()

    # -- rendering -------------------------------------------------------------

    def format_tree(self, root: Span, timings: bool = True) -> str:
        """Render one trace as an indented tree.

        With ``timings`` (the default) each line carries the span's wall
        cost in milliseconds and any profiled sub-costs; without, the
        output is fully deterministic (used by the doc examples).
        """
        lines: list[str] = []

        def visit(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            connector = "" if is_root else ("`-- " if is_last else "|-- ")
            parts = ["%s[%s]" % (span.name, span.status)]
            if timings and span.wall_s is not None:
                parts.append("%.2fms" % (span.wall_s * 1e3))
            if span.error:
                parts.append("error=%s" % span.error)
            for key, value in span.attributes.items():
                parts.append("%s=%s" % (key, value))
            if timings and span.costs:
                costed = " ".join(
                    "%s=%.2fms" % (n, s * 1e3)
                    for n, s in sorted(span.costs.items())
                )
                parts.append("(profile: %s)" % costed)
            lines.append(prefix + connector + " ".join(parts))
            child_prefix = prefix if is_root else prefix + ("    " if is_last else "|   ")
            for index, child in enumerate(span.children):
                visit(child, child_prefix, index == len(span.children) - 1, False)

        visit(root, "", True, True)
        return "\n".join(lines)
