"""Pluggable client transports for the served SPW protocol.

A :class:`Transport` knows how to open a framed, bidirectional
:class:`Connection` to a smart server. The protocol code above
(:class:`~repro.serve.remote.ConnectionBus`) is transport-agnostic; the
three shipped transports cover the three deployment shapes:

* :class:`InMemoryPipeTransport` — a ``socketpair`` whose server end is
  served by a :class:`~repro.serve.server.SmartServer` thread in this
  process. Tests get the *entire* real connection path (framing,
  pipelining, backpressure) with no port, no latency, no flakiness.
* :class:`TcpTransport` — real TCP sockets to a
  :class:`~repro.serve.server.TcpSmartServer` (or anything speaking the
  framing in :mod:`repro.serve.framing`).
* :class:`LinkChargedTransport` — wraps another transport and charges
  every frame against a simulated
  :class:`~repro.osn.network.NetworkLink`, so chaos/cost-model runs
  keep their deterministic byte accounting while exercising the real
  served path.
"""

from __future__ import annotations

import socket
from typing import TYPE_CHECKING

from repro.serve.framing import DEFAULT_MAX_FRAME_BYTES, recv_frame, send_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.osn.network import NetworkLink
    from repro.serve.server import SmartServer

__all__ = [
    "Connection",
    "SocketConnection",
    "Transport",
    "TcpTransport",
    "InMemoryPipeTransport",
    "LinkChargedTransport",
]


class Connection:
    """One framed, bidirectional stream to a peer.

    ``send``/``recv`` move whole SPW envelopes; ``recv`` returns
    ``None`` on clean EOF. Implementations need not be thread-safe per
    method pair — the pipelining client serializes sends under its own
    lock and dedicates one thread to receives.
    """

    peer = "?"

    def send(self, payload: bytes) -> None:
        raise NotImplementedError

    def recv(self) -> bytes | None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class SocketConnection(Connection):
    """Framing bound to a connected stream socket."""

    def __init__(
        self,
        sock: socket.socket,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        peer: str | None = None,
    ):
        self._sock = sock
        self.max_frame_bytes = max_frame_bytes
        if peer is None:
            try:
                peer = "%s:%d" % sock.getpeername()[:2]
            except OSError:
                peer = "?"
        self.peer = peer

    def send(self, payload: bytes) -> None:
        send_frame(self._sock.send, payload, self.max_frame_bytes)

    def recv(self) -> bytes | None:
        return recv_frame(self._sock.recv, self.max_frame_bytes)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # already closed by the peer
        self._sock.close()


class Transport:
    """Factory of :class:`Connection` objects to one server."""

    def connect(self) -> Connection:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class TcpTransport(Transport):
    """Connect over real TCP. ``NODELAY`` is set: the protocol is
    request/response and Nagle only adds latency to pipelined frames."""

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout_s: float = 10.0,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.max_frame_bytes = max_frame_bytes

    def connect(self) -> Connection:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout_s
        )
        if sock.getsockname() == sock.getpeername():
            # TCP simultaneous open: when no server listens and the
            # target port falls in the ephemeral range, the kernel can
            # connect the socket to *itself*. Bytes would echo straight
            # back, so treat it as the refusal it really is.
            sock.close()
            raise ConnectionRefusedError(
                "self-connection to %s:%d — no server listening"
                % (self.host, self.port)
            )
        sock.settimeout(None)  # blocking I/O; the client owns its pacing
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return SocketConnection(sock, self.max_frame_bytes)

    def describe(self) -> str:
        return "tcp://%s:%d" % (self.host, self.port)


class InMemoryPipeTransport(Transport):
    """Serve each connection from an in-process thread over a socketpair.

    The client end is returned; the server end is handed to
    ``server.spawn_connection`` which runs the full per-connection
    protocol loop in a daemon thread — identical code to TCP serving,
    minus the listener.
    """

    def __init__(self, server: "SmartServer"):
        self.server = server

    def connect(self) -> Connection:
        client_end, server_end = socket.socketpair()
        self.server.spawn_connection(
            SocketConnection(
                server_end, self.server.max_frame_bytes, peer="pipe-client"
            )
        )
        return SocketConnection(
            client_end, self.server.max_frame_bytes, peer="pipe-server"
        )

    def describe(self) -> str:
        return "pipe://in-memory"


class _LinkChargedConnection(Connection):
    """Charge a simulated link for every frame crossing the wrapped
    connection. Upload = client→server, download = server→client,
    matching :class:`~repro.proto.bus.MessageBus` conventions."""

    def __init__(self, inner: Connection, link: "NetworkLink"):
        self._inner = inner
        self.link = link
        self.peer = inner.peer

    def send(self, payload: bytes) -> None:
        from repro.proto.bus import wire_summary

        self.link.upload(len(payload), wire_summary(payload))
        self._inner.send(payload)

    def recv(self) -> bytes | None:
        payload = self._inner.recv()
        if payload is not None:
            from repro.proto.bus import wire_summary

            self.link.download(len(payload), wire_summary(payload))
        return payload

    def close(self) -> None:
        self._inner.close()


class LinkChargedTransport(Transport):
    """Wrap any transport so its frames are charged to a ``NetworkLink``."""

    def __init__(self, inner: Transport, link: "NetworkLink"):
        self.inner = inner
        self.link = link

    def connect(self) -> Connection:
        return _LinkChargedConnection(self.inner.connect(), self.link)

    def describe(self) -> str:
        return "%s over %s" % (self.inner.describe(), self.link.name)
