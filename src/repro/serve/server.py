"""A concurrent smart server for the SPW protocol.

One :class:`SmartServer` serves many connections; each connection is a
framed byte stream (see :mod:`repro.serve.framing`) carrying pipelined
SPW requests. The per-connection machinery is deliberately boring:

* a **reader** loop pulls frames off the stream and submits each to the
  shared dispatch pool — *without* waiting for earlier replies, which is
  what makes pipelining work;
* a :class:`threading.BoundedSemaphore` caps the frames one connection
  may have in flight (``max_in_flight``) — a client that floods simply
  stops being read until replies drain, so backpressure propagates to
  its socket buffer and no connection can monopolize the pool;
* a **writer** thread pops completed dispatch futures in FIFO order and
  writes the replies back. Replies therefore always return in request
  order even though dispatches complete out of order — the client
  correlates by position, exactly like the in-process batch path.

Failure policy mirrors the framing contract: corruption *inside* a
frame already became an ``ErrorReply`` inside ``dispatch`` and costs one
request; a broken *stream* (truncated frame, bogus length prefix, dead
socket) tears the connection down, because no later byte can be
trusted. The one courtesy: an oversized length prefix is answered with
a final ``bad-message`` ErrorReply before the teardown, so a
misconfigured client learns why it was dropped.

Dispatch happens on a pool shared by all connections, so
``dispatcher.dispatch`` must be reentrant —
:class:`~repro.proto.engine.PuzzleProtocolEngine` documents and honours
that contract.
"""

from __future__ import annotations

import queue
import socket
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs.runtime import maybe_span, use
from repro.proto.envelope import peek_type
from repro.proto.messages import ErrorReply, encode_message
from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FrameTooLargeError,
    FramingError,
    encode_frame,
)
from repro.serve.transport import Connection, SocketConnection

__all__ = ["ConnectionStats", "ServerMetrics", "SmartServer", "TcpSmartServer"]


@dataclass
class ConnectionStats:
    """Counters for one connection, updated under the metrics lock."""

    peer: str = "?"
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    error_replies: int = 0
    in_flight: int = 0
    max_in_flight_seen: int = 0
    aborted: bool = False
    open: bool = True

    def describe(self) -> str:
        state = "open" if self.open else ("aborted" if self.aborted else "closed")
        return (
            "%s: %s, frames in=%d out=%d, bytes in=%d out=%d, "
            "errors=%d, peak in-flight=%d"
            % (
                self.peer,
                state,
                self.frames_in,
                self.frames_out,
                self.bytes_in,
                self.bytes_out,
                self.error_replies,
                self.max_in_flight_seen,
            )
        )


@dataclass
class ServerMetrics:
    """Server-wide totals plus retained per-connection stats.

    All mutation goes through methods holding ``_lock``; reading a
    snapshot (:meth:`summary`, :meth:`as_dict`) takes the same lock, so
    observers never see torn counters.
    """

    connections_total: int = 0
    connections_open: int = 0
    frames_in: int = 0
    frames_out: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    error_replies: int = 0
    connections: list[ConnectionStats] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def connection_opened(self, peer: str) -> ConnectionStats:
        stats = ConnectionStats(peer=peer)
        with self._lock:
            self.connections_total += 1
            self.connections_open += 1
            self.connections.append(stats)
        return stats

    def connection_closed(self, stats: ConnectionStats, aborted: bool) -> None:
        with self._lock:
            stats.open = False
            stats.aborted = stats.aborted or aborted
            self.connections_open -= 1

    def frame_received(self, stats: ConnectionStats, nbytes: int) -> int:
        """Record one inbound frame; returns the connection's new
        in-flight depth (for the high-water mark assertions in tests)."""
        with self._lock:
            stats.frames_in += 1
            stats.bytes_in += nbytes
            stats.in_flight += 1
            if stats.in_flight > stats.max_in_flight_seen:
                stats.max_in_flight_seen = stats.in_flight
            self.frames_in += 1
            self.bytes_in += nbytes
            return stats.in_flight

    def frame_sent(self, stats: ConnectionStats, nbytes: int, is_error: bool) -> None:
        with self._lock:
            stats.frames_out += 1
            stats.bytes_out += nbytes
            stats.in_flight -= 1
            self.frames_out += 1
            self.bytes_out += nbytes
            if is_error:
                stats.error_replies += 1
                self.error_replies += 1

    def dispatch_abandoned(self, stats: ConnectionStats) -> None:
        """A dispatched request whose reply could not be written (the
        connection died first) still leaves the in-flight window."""
        with self._lock:
            stats.in_flight -= 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "connections_total": self.connections_total,
                "connections_open": self.connections_open,
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "error_replies": self.error_replies,
                "max_in_flight_seen": max(
                    (c.max_in_flight_seen for c in self.connections), default=0
                ),
            }

    def summary(self) -> str:
        with self._lock:
            lines = [
                "connections: total=%d open=%d"
                % (self.connections_total, self.connections_open),
                "frames: in=%d out=%d (bytes in=%d out=%d, error replies=%d)"
                % (
                    self.frames_in,
                    self.frames_out,
                    self.bytes_in,
                    self.bytes_out,
                    self.error_replies,
                ),
            ]
            lines.extend("  " + stats.describe() for stats in self.connections)
        return "\n".join(lines)


class SmartServer:
    """Serve pipelined SPW connections over a shared dispatch pool.

    ``dispatcher`` is anything with a reentrant
    ``dispatch(bytes) -> bytes`` — normally a
    :class:`~repro.proto.engine.PuzzleProtocolEngine`. ``obs`` (optional)
    is an :class:`~repro.obs.Observability` hub activated around every
    dispatched request, giving server-side spans and counters without
    the dispatcher knowing it is being served.
    """

    def __init__(
        self,
        dispatcher,
        max_in_flight: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        workers: int | None = None,
        obs=None,
    ):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        self.dispatcher = dispatcher
        self.max_in_flight = max_in_flight
        self.max_frame_bytes = max_frame_bytes
        self.obs = obs
        self.metrics = ServerMetrics()
        self._pool = ThreadPoolExecutor(
            max_workers=workers if workers is not None else max(4, max_in_flight),
            thread_name_prefix="spw-dispatch",
        )
        self._conns: set[Connection] = set()
        self._conn_threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False

    # -- connection lifecycle ----------------------------------------------------

    def spawn_connection(self, conn: Connection) -> threading.Thread:
        """Serve ``conn`` on a fresh daemon thread (in-memory transports
        and TCP accept loops both land here)."""
        thread = threading.Thread(
            target=self.serve_connection,
            args=(conn,),
            name="spw-conn-%s" % conn.peer,
            daemon=True,
        )
        with self._lock:
            if self._closed:
                conn.close()
                raise RuntimeError("server is closed")
            self._conn_threads.append(thread)
        thread.start()
        return thread

    def serve_connection(self, conn: Connection) -> None:
        """Run one connection to completion: reader loop here, writer on
        a companion thread, dispatches on the shared pool."""
        stats = self.metrics.connection_opened(conn.peer)
        with self._lock:
            if self._closed:
                conn.close()
                self.metrics.connection_closed(stats, aborted=True)
                return
            self._conns.add(conn)

        window = threading.BoundedSemaphore(self.max_in_flight)
        replies: "queue.Queue[Future | None]" = queue.Queue()
        conn_dead = threading.Event()
        aborted = False

        writer = threading.Thread(
            target=self._write_replies,
            args=(conn, stats, replies, window, conn_dead),
            name="spw-writer-%s" % conn.peer,
            daemon=True,
        )
        writer.start()

        try:
            while not conn_dead.is_set():
                try:
                    payload = conn.recv()
                except FrameTooLargeError as exc:
                    # The one framing error worth a courtesy reply: tell
                    # the client why, then stop reading (the stream
                    # cannot be resynchronized past an unread body).
                    window.acquire()
                    self.metrics.frame_received(stats, 0)
                    done: Future = Future()
                    done.set_result(
                        encode_message(
                            ErrorReply(
                                code="bad-message", message=str(exc), transient=True
                            )
                        )
                    )
                    replies.put(done)
                    aborted = True
                    break
                except (FramingError, OSError):
                    aborted = True
                    break
                if payload is None:  # clean EOF at a frame boundary
                    break
                window.acquire()  # backpressure: block the reader, not the pool
                depth = self.metrics.frame_received(stats, len(payload))
                assert depth <= self.max_in_flight
                replies.put(self._pool.submit(self._dispatch_one, payload))
        finally:
            replies.put(None)  # writer drains in-order then exits
            writer.join()
            self._teardown(conn, stats, aborted or conn_dead.is_set())

    def _write_replies(
        self,
        conn: Connection,
        stats: ConnectionStats,
        replies: "queue.Queue[Future | None]",
        window: threading.BoundedSemaphore,
        conn_dead: threading.Event,
    ) -> None:
        """Pop futures FIFO, write each reply, release its window slot.

        A write failure marks the connection dead and closes it (which
        unblocks the reader), but draining continues so every in-flight
        dispatch is awaited and every window slot released — otherwise a
        blocked reader could never observe the death.
        """
        while True:
            item = replies.get()
            if item is None:
                return
            payload = item.result()  # dispatch never raises; see _dispatch_one
            if conn_dead.is_set():
                self.metrics.dispatch_abandoned(stats)
            else:
                try:
                    nbytes = len(encode_frame(payload, self.max_frame_bytes))
                    conn.send(payload)
                    self.metrics.frame_sent(
                        stats, nbytes, is_error=peek_type(payload) == ErrorReply.TYPE
                    )
                except (FramingError, OSError):
                    conn_dead.set()
                    conn.close()
                    self.metrics.dispatch_abandoned(stats)
            window.release()

    def _dispatch_one(self, payload: bytes) -> bytes:
        """One request through the engine; never raises (a dispatcher
        bug still answers with a typed ErrorReply frame)."""
        try:
            if self.obs is not None:
                with use(self.obs), maybe_span("serve.request"):
                    return self.dispatcher.dispatch(payload)
            return self.dispatcher.dispatch(payload)
        except Exception as exc:
            return encode_message(ErrorReply.from_exception(exc))

    def _teardown(self, conn: Connection, stats: ConnectionStats, aborted: bool) -> None:
        conn.close()
        with self._lock:
            self._conns.discard(conn)
        self.metrics.connection_closed(stats, aborted=aborted)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop serving: close every live connection (their reader loops
        observe the dead socket and unwind), then retire the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns)
            threads = list(self._conn_threads)
        for conn in conns:
            conn.close()
        for thread in threads:
            thread.join(timeout=10.0)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SmartServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TcpSmartServer(SmartServer):
    """A :class:`SmartServer` behind a real TCP listener.

    ``port=0`` asks the kernel for an ephemeral port; read the bound
    address back from :attr:`address` (the CLI prints it so a second
    terminal can connect).
    """

    def __init__(
        self,
        dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_in_flight: int = 8,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        workers: int | None = None,
        obs=None,
    ):
        super().__init__(
            dispatcher,
            max_in_flight=max_in_flight,
            max_frame_bytes=max_frame_bytes,
            workers=workers,
            obs=obs,
        )
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._accept_thread: threading.Thread | None = None

    def start(self) -> "TcpSmartServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="spw-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:  # listener closed: the stop signal
                return
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            try:
                self.spawn_connection(
                    SocketConnection(sock, self.max_frame_bytes)
                )
            except RuntimeError:  # raced with close()
                return

    def stop(self) -> None:
        self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
        self.close()

    def __enter__(self) -> "TcpSmartServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
