"""Serving plane: the protocol engine behind real connections.

Everything below :mod:`repro.proto` treats the SP as a library — one
synchronous ``dispatch(bytes) -> bytes`` call on an in-process
:class:`~repro.proto.bus.MessageBus`. This package promotes the same
engine to a *served* protocol:

* :mod:`repro.serve.framing` — length-prefixed SPW frames over byte
  streams (partial reads, short writes, oversize rejection);
* :mod:`repro.serve.transport` — pluggable client transports: in-memory
  socketpairs for tests, TCP for deployment, and a
  :class:`~repro.osn.network.NetworkLink`-charging wrapper for chaos
  and cost-model runs;
* :mod:`repro.serve.server` — a concurrent smart server: per-connection
  framing, pipelining of many in-flight requests with in-order replies,
  bounded backpressure and clean teardown;
* :mod:`repro.serve.remote` — :class:`RemoteProtocolClient`, a
  connection-oriented drop-in beneath the existing
  :class:`~repro.proto.client.ProtocolClient` stack, plus a
  storage-faced adapter :class:`RemoteStorageHost` that a
  :class:`~repro.osn.resilience.ResilientStorageClient` can wrap;
* :mod:`repro.serve.journey` — a full share→solve→access journey driven
  entirely over a connection (the ``repro demo --connect`` flow and the
  serve-smoke CI job).

See docs/DEPLOYMENT.md for the operator's view.
"""

from repro.serve.framing import (
    DEFAULT_MAX_FRAME_BYTES,
    FRAME_HEADER_BYTES,
    FramingError,
    FrameTooLargeError,
    TruncatedFrameError,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.serve.journey import (
    JourneyReport,
    PolicyJourneyReport,
    run_pipelined_probe,
    run_policy_journey,
    run_remote_journey,
)
from repro.serve.remote import ConnectionBus, RemoteProtocolClient, RemoteStorageHost
from repro.serve.server import ConnectionStats, ServerMetrics, SmartServer, TcpSmartServer
from repro.serve.transport import (
    Connection,
    InMemoryPipeTransport,
    LinkChargedTransport,
    SocketConnection,
    TcpTransport,
    Transport,
)

__all__ = [
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_HEADER_BYTES",
    "FramingError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "Connection",
    "SocketConnection",
    "Transport",
    "TcpTransport",
    "InMemoryPipeTransport",
    "LinkChargedTransport",
    "SmartServer",
    "TcpSmartServer",
    "ServerMetrics",
    "ConnectionStats",
    "ConnectionBus",
    "RemoteProtocolClient",
    "RemoteStorageHost",
    "JourneyReport",
    "PolicyJourneyReport",
    "run_remote_journey",
    "run_policy_journey",
    "run_pipelined_probe",
]
