"""Connection-oriented clients for the served protocol.

:class:`ConnectionBus` gives a live connection the same
``dispatch(bytes) -> bytes`` face as the in-process
:class:`~repro.proto.bus.MessageBus`, which is the whole trick: the
typed :class:`~repro.proto.client.ProtocolClient`, the retry policies
and the resilience stack all plug in unchanged — moving the SP out of
process is a constructor argument, not a rewrite.

The bus **pipelines**. ``dispatch`` appends a waiter, writes the frame,
and blocks only its *own* caller; a dedicated receiver thread fulfils
waiters strictly FIFO, matching the server's in-order reply guarantee.
Many application threads can therefore share one connection and keep
many requests in flight at once — the closed-loop benchmark drives the
server exactly this way.

Transport failures surface as
:class:`~repro.core.errors.TransientNetworkError` (the retryable
taxonomy code), and a failed connection is torn down wholesale: every
in-flight waiter fails, because once the stream breaks reply positions
can no longer be trusted. The next ``dispatch`` transparently opens a
fresh connection, so a retry policy around the client gets natural
reconnect-and-retry behaviour.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import TYPE_CHECKING

from repro.core.errors import TransientNetworkError
from repro.proto.client import ProtocolClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.transport import Connection, Transport

__all__ = ["ConnectionBus", "RemoteProtocolClient", "RemoteStorageHost"]


class ConnectionBus:
    """A pipelining ``dispatch(bytes) -> bytes`` over one connection."""

    def __init__(
        self,
        transport: "Transport",
        timeout_s: float | None = 30.0,
        reconnect: bool = True,
    ):
        self.transport = transport
        self.timeout_s = timeout_s
        self.reconnect = reconnect
        # Two locks, deliberately: _send_lock serializes whole
        # append-waiter-then-send sequences (so FIFO positions match the
        # wire order), while _lock guards the shared state and is only
        # ever held for quick bookkeeping. The receiver thread needs
        # _lock but never _send_lock — so a sender blocked mid-write by
        # server backpressure cannot stop replies from draining, which
        # is exactly what un-wedges that sender.
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()  # guards _conn, _pending, _generation
        self._conn: "Connection | None" = None
        self._pending: "deque[Future]" = deque()
        self._receiver: threading.Thread | None = None
        self._generation = 0  # bumped on every teardown; receivers check it
        self._closed = False

    # -- the dispatch face -------------------------------------------------------

    def dispatch(self, request: bytes) -> bytes:
        """Send one frame, return its reply; safe from many threads."""
        with self._send_lock:
            with self._lock:
                if self._closed:
                    raise TransientNetworkError("connection bus is closed")
                conn = self._ensure_connected_locked()
                waiter: Future = Future()
                self._pending.append(waiter)
            try:
                conn.send(request)
            except (ConnectionError, OSError) as exc:
                with self._lock:
                    self._fail_locked("send failed: %s" % exc)
                raise TransientNetworkError("send failed: %s" % exc) from exc
        try:
            return waiter.result(timeout=self.timeout_s)
        except FutureTimeoutError:
            # Past a timeout the FIFO positions are unrecoverable: kill
            # the connection so no later reply is mis-matched.
            with self._lock:
                self._fail_locked("reply timed out after %ss" % self.timeout_s)
            raise TransientNetworkError(
                "reply timed out after %ss" % self.timeout_s
            ) from None

    # -- connection management ---------------------------------------------------

    def _ensure_connected_locked(self) -> "Connection":
        if self._conn is None:
            if self._receiver is not None and not self.reconnect:
                raise TransientNetworkError(
                    "connection lost and reconnect is disabled"
                )
            conn = self.transport.connect()
            self._conn = conn
            self._receiver = threading.Thread(
                target=self._receive_loop,
                args=(conn, self._generation),
                name="spw-recv-%s" % conn.peer,
                daemon=True,
            )
            self._receiver.start()
        return self._conn

    def _receive_loop(self, conn: "Connection", generation: int) -> None:
        """Fulfil pending waiters FIFO until the stream ends."""
        while True:
            try:
                payload = conn.recv()
            except (ConnectionError, OSError) as exc:
                reason = "connection broke: %s" % exc
                payload = None
            else:
                reason = "connection closed by server"
            with self._lock:
                if generation != self._generation:
                    return  # a newer connection took over; stand down
                if payload is None:
                    self._fail_locked(reason)
                    return
                if not self._pending:
                    # A reply nobody asked for: the stream is desynced.
                    self._fail_locked("unsolicited reply frame")
                    return
                self._pending.popleft().set_result(payload)

    def _fail_locked(self, reason: str) -> None:
        """Tear the connection down and fail every in-flight waiter."""
        self._generation += 1
        if self._conn is not None:
            self._conn.close()
            self._conn = None
        while self._pending:
            waiter = self._pending.popleft()
            if not waiter.done():
                waiter.set_exception(TransientNetworkError(reason))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._fail_locked("connection bus closed")

    def __enter__(self) -> "ConnectionBus":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteProtocolClient(ProtocolClient):
    """The full typed protocol surface over a served connection.

    Everything :class:`~repro.proto.client.ProtocolClient` offers —
    stores, displays, verifies, retract sagas, batches, posts, storage
    verbs — works verbatim; only the bus underneath changed. Close it
    (or use it as a context manager) to release the connection.
    """

    def __init__(
        self,
        transport: "Transport",
        retry=None,
        timeout_s: float | None = 30.0,
        reconnect: bool = True,
    ):
        super().__init__(
            ConnectionBus(transport, timeout_s=timeout_s, reconnect=reconnect),
            retry=retry,
        )

    def close(self) -> None:
        self.bus.close()

    def __enter__(self) -> "RemoteProtocolClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RemoteStorageHost:
    """The storage-host face of a remote client.

    Sharer/receiver crypto flows and the resilience stack
    (:class:`~repro.osn.resilience.ResilientStorageClient`) expect an
    object with ``put/get/exists/delete``; this adapter lets them run
    against a served DH without knowing a connection exists.
    """

    def __init__(self, client: ProtocolClient):
        self.client = client

    def put(self, data: bytes) -> str:
        return self.client.storage_put(data)

    def get(self, url: str) -> bytes:
        return self.client.storage_get(url)

    def exists(self, url: str) -> bool:
        return self.client.storage_exists(url)

    def delete(self, url: str) -> bool:
        return self.client.storage_delete(url)
