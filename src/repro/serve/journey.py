"""Fully remote user journeys, driven over one served connection.

Everything the demo does in-process — register, befriend, share, post,
solve, deny — here travels as SPW frames through a
:class:`~repro.serve.remote.RemoteProtocolClient`: the sharer's and
receiver's cryptography runs on the *client* side (as the paper's
browser/Qt implementations do) and every SP and DH interaction is a
round trip. This is the ``repro demo --connect`` flow, the serve-smoke
CI job, and the integration tests' golden path, so it deliberately
exercises both the happy path and the two denial gates (static ACL,
wrong puzzle answers).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.core.context import Context
from repro.core.construction1 import ReceiverC1, SharerC1
from repro.core.construction2 import ReceiverC2, SharerC2
from repro.core.errors import AccessDeniedError
from repro.crypto.params import get_params
from repro.osn.provider import OsnError
from repro.policy import PuzzlePolicy
from repro.proto.client import ProtocolClient
from repro.serve.remote import RemoteStorageHost

__all__ = [
    "JourneyReport",
    "PolicyJourneyReport",
    "run_remote_journey",
    "run_policy_journey",
    "run_pipelined_probe",
]

_CONTEXT = {
    "Where was the party held?": "Lake Tahoe",
    "Who brought the cake?": "Marguerite",
    "Which song closed the night?": "Wonderwall",
}


@dataclass(frozen=True)
class JourneyReport:
    """What a remote share→solve→deny journey established."""

    construction: int
    puzzle_id: int
    post_id: int
    recovered: bytes
    acl_denied: bool  # the stranger could not even read the post
    answers_denied: bool  # wrong answers did not release the object

    @property
    def ok(self) -> bool:
        return self.acl_denied and self.answers_denied


def run_remote_journey(
    client: ProtocolClient,
    construction: int = 1,
    params_name: str = "small",
    seed: int = 5,
    plaintext: bytes = b"party photos",
) -> JourneyReport:
    """Run the full journey through ``client``; raises on any deviation.

    Works over any ``dispatch``-shaped bus the client wraps — in-process,
    in-memory pipe, or TCP — because nothing here knows a transport
    exists. Returns a :class:`JourneyReport` with ``ok=True`` when both
    denial gates held.
    """
    storage = RemoteStorageHost(client)
    context = Context.from_mapping(_CONTEXT)

    # Accounts and the social graph, entirely over the wire.
    alice = client.register_user("alice")
    bob = client.register_user("bob")
    carol = client.register_user("carol")
    client.befriend(alice, bob)

    # Alice shares: client-side crypto, blob to the DH, puzzle to the SP.
    if construction == 1:
        sharer = SharerC1(alice.name, storage)
        puzzle = sharer.upload(plaintext, context, k=2, n=len(context))
        puzzle_id = client.store_puzzle(puzzle)
    elif construction == 2:
        sharer = SharerC2(alice.name, storage, get_params(params_name))
        record, _ct_bytes = sharer.upload(plaintext, context, k=2)
        puzzle_id = client.store_upload(record)
    else:
        raise ValueError("construction must be 1 or 2, got %r" % construction)
    post = client.publish_post(
        alice,
        "[social-puzzle] %s shared a protected object — solve puzzle #%d"
        % (alice.name, puzzle_id),
    )

    # Gate 1, the static ACL: carol never befriended alice, so the SP
    # refuses her the post itself.
    acl_denied = False
    try:
        client.get_post(carol, post.post_id)
    except OsnError:
        acl_denied = True

    # Bob follows the hyperlink and solves.
    assert client.get_post(bob, post.post_id).post_id == post.post_id
    if construction == 1:
        receiver = ReceiverC1(bob.name, storage)
        displayed = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
        answers = receiver.answer_puzzle(displayed, context)
        release = client.submit_answers_c1(answers, bob.name)
        recovered = receiver.access(release, displayed, context)
    else:
        receiver = ReceiverC2(bob.name, storage, get_params(params_name))
        displayed = client.display_puzzle_c2(puzzle_id)
        answers = receiver.answer_puzzle(displayed, context)
        grant = client.submit_answers_c2(answers, bob.name)
        recovered = receiver.access(grant, context)
    if recovered != plaintext:
        raise AssertionError("recovered %r, expected %r" % (recovered, plaintext))

    # Gate 2, the puzzle: carol guesses wrong and stays locked out, even
    # with the AccessDeniedError having crossed the wire as a typed frame.
    wrong = Context.from_mapping(
        {"Where was the party held?": "Las Vegas",
         "Who brought the cake?": "Gordon"}
    )
    answers_denied = False
    try:
        if construction == 1:
            stranger = ReceiverC1(carol.name, storage)
            shown = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
            client.submit_answers_c1(
                stranger.answer_puzzle(shown, wrong), carol.name
            )
        else:
            stranger = ReceiverC2(carol.name, storage, get_params(params_name))
            shown = client.display_puzzle_c2(puzzle_id)
            client.submit_answers_c2(
                stranger.answer_puzzle(shown, wrong), carol.name
            )
    except AccessDeniedError:
        answers_denied = True

    return JourneyReport(
        construction=construction,
        puzzle_id=puzzle_id,
        post_id=post.post_id,
        recovered=recovered,
        acl_denied=acl_denied,
        answers_denied=answers_denied,
    )


# The nested-policy journey: the trip group's puzzle sits inside an AND
# with a membership scope gate, and an escrow credential forms an OR
# branch around the context threshold — exactly the depth-3 shape the
# flat k-of-n form cannot express.
_POLICY_TEXT = "scope:group/trip and (2 of (ctx_a, ctx_b, ctx_c) or attr:escrow)"
_POLICY_CONTEXT = {
    "scope:group/trip": "trip-roster-secret",
    "ctx_a": "alpha",
    "ctx_b": "beta",
    "ctx_c": "gamma",
    "attr:escrow": "escrow-credential",
}


@dataclass(frozen=True)
class PolicyJourneyReport:
    """What a remote nested-policy share→grant→deny→explain run proved."""

    construction: int
    puzzle_id: int
    granted_context: bytes  # recovered via scope + 2 context answers
    granted_escrow: bytes  # recovered via scope + escrow branch
    denied: bool  # context answers without the scope gate stayed out
    explain_grant_ok: bool  # grant derivation names the satisfied leaves
    explain_deny_ok: bool  # deny derivation names the failed gate
    leak_free: bool  # no answer material in either explanation's bytes

    @property
    def ok(self) -> bool:
        return (
            self.denied
            and self.explain_grant_ok
            and self.explain_deny_ok
            and self.leak_free
        )


def run_policy_journey(
    client: ProtocolClient,
    construction: int = 1,
    params_name: str = "small",
    seed: int = 5,
    plaintext: bytes = b"trip photos",
) -> PolicyJourneyReport:
    """Run the nested-policy journey through ``client``, fully remote.

    Shares under :data:`_POLICY_TEXT`, then exercises every outcome the
    tree allows: a group member with two context answers (bob), a group
    member holding the escrow credential (carol), and an outsider who
    knows trip trivia but not the scope secret (dave) — plus the Explain
    verb for both a grant and a deny, asserting the derivations never
    carry answer material.
    """
    storage = RemoteStorageHost(client)
    policy = PuzzlePolicy.from_text(_POLICY_TEXT)
    context = Context.from_mapping(_POLICY_CONTEXT)

    alice = client.register_user("p-alice")
    bob = client.register_user("p-bob")

    if construction == 1:
        sharer = SharerC1(alice.name, storage)
        puzzle = sharer.upload_policy(plaintext, context, policy)
        puzzle_id = client.store_puzzle(puzzle)
    elif construction == 2:
        sharer = SharerC2(alice.name, storage, get_params(params_name))
        record, _ct_bytes = sharer.upload_policy(plaintext, context, policy)
        puzzle_id = client.store_upload(record)
    else:
        raise ValueError("construction must be 1 or 2, got %r" % construction)
    client.share_policy(construction, puzzle_id, policy.text)

    def solve(name: str, known: dict) -> bytes:
        knowledge = Context.from_mapping(known)
        if construction == 1:
            receiver = ReceiverC1(name, storage)
            displayed = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
            answers = receiver.answer_puzzle(displayed, knowledge)
            release = client.submit_answers_c1(answers, name)
            return receiver.access(release, displayed, knowledge)
        receiver = ReceiverC2(name, storage, get_params(params_name))
        displayed = client.display_puzzle_c2(puzzle_id)
        answers = receiver.answer_puzzle(displayed, knowledge)
        grant = client.submit_answers_c2(answers, name)
        return receiver.access(grant, knowledge)

    def explain(name: str, known: dict):
        knowledge = Context.from_mapping(known)
        if construction == 1:
            receiver = ReceiverC1(name, storage)
            displayed = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
            answers = receiver.answer_puzzle(displayed, knowledge)
            return client.explain_c1(answers, name)
        receiver = ReceiverC2(name, storage, get_params(params_name))
        displayed = client.display_puzzle_c2(puzzle_id)
        answers = receiver.answer_puzzle(displayed, knowledge)
        return client.explain_c2(answers, name)

    member = {
        "scope:group/trip": "trip-roster-secret",
        "ctx_a": "alpha",
        "ctx_b": "beta",
    }
    escrowed = {
        "scope:group/trip": "trip-roster-secret",
        "attr:escrow": "escrow-credential",
    }
    outsider = {"ctx_a": "alpha", "ctx_b": "beta", "ctx_c": "gamma"}

    granted_context = solve(bob.name, member)
    granted_escrow = solve("p-carol", escrowed)
    denied = False
    try:
        solve("p-dave", outsider)
    except AccessDeniedError:
        denied = True

    grant_exp = explain(bob.name, member)
    deny_exp = explain("p-dave", outsider)
    explain_grant_ok = (
        grant_exp.granted
        and set(grant_exp.satisfied_leaves())
        == {"scope:group/trip", "ctx_a", "ctx_b"}
        and "0" in grant_exp.passed_gates()
    )
    explain_deny_ok = (
        not deny_exp.granted
        and "scope:group/trip" in deny_exp.failed_leaves()
        and "0" not in deny_exp.passed_gates()
    )
    wire = grant_exp.to_bytes() + deny_exp.to_bytes()
    leak_free = not any(
        answer.encode("utf-8") in wire for answer in _POLICY_CONTEXT.values()
    )

    return PolicyJourneyReport(
        construction=construction,
        puzzle_id=puzzle_id,
        granted_context=granted_context,
        granted_escrow=granted_escrow,
        denied=denied,
        explain_grant_ok=explain_grant_ok,
        explain_deny_ok=explain_deny_ok,
        leak_free=leak_free,
    )


def run_pipelined_probe(client: ProtocolClient, requests: int = 8) -> int:
    """Exercise pipelining on ``client``'s connection; returns the number
    of round trips that completed.

    Three shapes at once: a burst of puts fired by concurrent threads
    (many frames in flight on one connection), one ``BatchRequest``
    carrying all the gets (one big frame), and a read-back verification.
    Raises if any reply is wrong — which, given the FIFO reply contract,
    would mean frames were matched out of order.
    """
    blobs = {i: b"probe-blob-%d" % i for i in range(requests)}
    urls: dict[int, str] = {}
    url_lock = threading.Lock()
    failures: list[BaseException] = []

    def put_one(i: int) -> None:
        try:
            url = client.storage_put(blobs[i])
            with url_lock:
                urls[i] = url
        except BaseException as exc:  # re-raised below, with context
            failures.append(exc)

    threads = [
        threading.Thread(target=put_one, args=(i,), name="probe-put-%d" % i)
        for i in blobs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]

    ordered = [urls[i] for i in sorted(urls)]
    fetched = client.storage_get_many(ordered)
    for i, data in zip(sorted(urls), fetched):
        if data != blobs[i]:
            raise AssertionError("pipelined reply mismatch for blob %d" % i)
    return len(blobs) * 2  # one put + one (batched) get each
