"""Fully remote user journeys, driven over one served connection.

Everything the demo does in-process — register, befriend, share, post,
solve, deny — here travels as SPW frames through a
:class:`~repro.serve.remote.RemoteProtocolClient`: the sharer's and
receiver's cryptography runs on the *client* side (as the paper's
browser/Qt implementations do) and every SP and DH interaction is a
round trip. This is the ``repro demo --connect`` flow, the serve-smoke
CI job, and the integration tests' golden path, so it deliberately
exercises both the happy path and the two denial gates (static ACL,
wrong puzzle answers).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.core.context import Context
from repro.core.construction1 import ReceiverC1, SharerC1
from repro.core.construction2 import ReceiverC2, SharerC2
from repro.core.errors import AccessDeniedError
from repro.crypto.params import get_params
from repro.osn.provider import OsnError
from repro.proto.client import ProtocolClient
from repro.serve.remote import RemoteStorageHost

__all__ = ["JourneyReport", "run_remote_journey", "run_pipelined_probe"]

_CONTEXT = {
    "Where was the party held?": "Lake Tahoe",
    "Who brought the cake?": "Marguerite",
    "Which song closed the night?": "Wonderwall",
}


@dataclass(frozen=True)
class JourneyReport:
    """What a remote share→solve→deny journey established."""

    construction: int
    puzzle_id: int
    post_id: int
    recovered: bytes
    acl_denied: bool  # the stranger could not even read the post
    answers_denied: bool  # wrong answers did not release the object

    @property
    def ok(self) -> bool:
        return self.acl_denied and self.answers_denied


def run_remote_journey(
    client: ProtocolClient,
    construction: int = 1,
    params_name: str = "small",
    seed: int = 5,
    plaintext: bytes = b"party photos",
) -> JourneyReport:
    """Run the full journey through ``client``; raises on any deviation.

    Works over any ``dispatch``-shaped bus the client wraps — in-process,
    in-memory pipe, or TCP — because nothing here knows a transport
    exists. Returns a :class:`JourneyReport` with ``ok=True`` when both
    denial gates held.
    """
    storage = RemoteStorageHost(client)
    context = Context.from_mapping(_CONTEXT)

    # Accounts and the social graph, entirely over the wire.
    alice = client.register_user("alice")
    bob = client.register_user("bob")
    carol = client.register_user("carol")
    client.befriend(alice, bob)

    # Alice shares: client-side crypto, blob to the DH, puzzle to the SP.
    if construction == 1:
        sharer = SharerC1(alice.name, storage)
        puzzle = sharer.upload(plaintext, context, k=2, n=len(context))
        puzzle_id = client.store_puzzle(puzzle)
    elif construction == 2:
        sharer = SharerC2(alice.name, storage, get_params(params_name))
        record, _ct_bytes = sharer.upload(plaintext, context, k=2)
        puzzle_id = client.store_upload(record)
    else:
        raise ValueError("construction must be 1 or 2, got %r" % construction)
    post = client.publish_post(
        alice,
        "[social-puzzle] %s shared a protected object — solve puzzle #%d"
        % (alice.name, puzzle_id),
    )

    # Gate 1, the static ACL: carol never befriended alice, so the SP
    # refuses her the post itself.
    acl_denied = False
    try:
        client.get_post(carol, post.post_id)
    except OsnError:
        acl_denied = True

    # Bob follows the hyperlink and solves.
    assert client.get_post(bob, post.post_id).post_id == post.post_id
    if construction == 1:
        receiver = ReceiverC1(bob.name, storage)
        displayed = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
        answers = receiver.answer_puzzle(displayed, context)
        release = client.submit_answers_c1(answers, bob.name)
        recovered = receiver.access(release, displayed, context)
    else:
        receiver = ReceiverC2(bob.name, storage, get_params(params_name))
        displayed = client.display_puzzle_c2(puzzle_id)
        answers = receiver.answer_puzzle(displayed, context)
        grant = client.submit_answers_c2(answers, bob.name)
        recovered = receiver.access(grant, context)
    if recovered != plaintext:
        raise AssertionError("recovered %r, expected %r" % (recovered, plaintext))

    # Gate 2, the puzzle: carol guesses wrong and stays locked out, even
    # with the AccessDeniedError having crossed the wire as a typed frame.
    wrong = Context.from_mapping(
        {"Where was the party held?": "Las Vegas",
         "Who brought the cake?": "Gordon"}
    )
    answers_denied = False
    try:
        if construction == 1:
            stranger = ReceiverC1(carol.name, storage)
            shown = client.display_puzzle_c1(puzzle_id, rng=random.Random(seed))
            client.submit_answers_c1(
                stranger.answer_puzzle(shown, wrong), carol.name
            )
        else:
            stranger = ReceiverC2(carol.name, storage, get_params(params_name))
            shown = client.display_puzzle_c2(puzzle_id)
            client.submit_answers_c2(
                stranger.answer_puzzle(shown, wrong), carol.name
            )
    except AccessDeniedError:
        answers_denied = True

    return JourneyReport(
        construction=construction,
        puzzle_id=puzzle_id,
        post_id=post.post_id,
        recovered=recovered,
        acl_denied=acl_denied,
        answers_denied=answers_denied,
    )


def run_pipelined_probe(client: ProtocolClient, requests: int = 8) -> int:
    """Exercise pipelining on ``client``'s connection; returns the number
    of round trips that completed.

    Three shapes at once: a burst of puts fired by concurrent threads
    (many frames in flight on one connection), one ``BatchRequest``
    carrying all the gets (one big frame), and a read-back verification.
    Raises if any reply is wrong — which, given the FIFO reply contract,
    would mean frames were matched out of order.
    """
    blobs = {i: b"probe-blob-%d" % i for i in range(requests)}
    urls: dict[int, str] = {}
    url_lock = threading.Lock()
    failures: list[BaseException] = []

    def put_one(i: int) -> None:
        try:
            url = client.storage_put(blobs[i])
            with url_lock:
                urls[i] = url
        except BaseException as exc:  # re-raised below, with context
            failures.append(exc)

    threads = [
        threading.Thread(target=put_one, args=(i,), name="probe-put-%d" % i)
        for i in blobs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]

    ordered = [urls[i] for i in sorted(urls)]
    fetched = client.storage_get_many(ordered)
    for i, data in zip(sorted(urls), fetched):
        if data != blobs[i]:
            raise AssertionError("pipelined reply mismatch for blob %d" % i)
    return len(blobs) * 2  # one put + one (batched) get each
