"""Length-prefixed framing of SPW envelopes over stream transports.

The SPW envelope (:mod:`repro.proto.envelope`) is self-validating but
not self-delimiting from a *stream*: a TCP receiver needs to know where
one frame ends before it can hand the bytes to ``open_envelope``. The
stream framing adds exactly one field in front:

    +----------------+--------------------------------------+
    | length  (u32)  | one SPW envelope (``length`` bytes)  |
    +----------------+--------------------------------------+

``length`` is big-endian, counts only the envelope bytes, and must be
at least the envelope overhead (13 bytes) and at most the connection's
``max_frame_bytes`` — a prefix outside that window is a framing error
and tears the connection down, because after a bad length nothing on
the stream can be trusted again. Corruption *inside* a frame is the
envelope CRC's job and costs one request, not the connection.

The helpers here speak to plain callables (``send(bytes) -> int``,
``recv(n) -> bytes``) so unit tests can exercise partial reads and
short writes without a real socket; :mod:`repro.serve.transport` binds
them to sockets.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.proto.envelope import ENVELOPE_OVERHEAD

__all__ = [
    "FRAME_HEADER_BYTES",
    "DEFAULT_MAX_FRAME_BYTES",
    "FramingError",
    "FrameTooLargeError",
    "TruncatedFrameError",
    "encode_frame",
    "send_frame",
    "recv_frame",
]

FRAME_HEADER_BYTES = 4

# Generous for this protocol: the largest legitimate frames are batched
# CP-ABE ciphertext fetches, far below this. A 16 MiB cap means a bogus
# length prefix cannot make a connection allocate unbounded memory.
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024


class FramingError(ConnectionError):
    """The stream framing itself broke; the connection is unusable."""


class FrameTooLargeError(FramingError):
    """A length prefix exceeded the connection's ``max_frame_bytes``."""


class TruncatedFrameError(FramingError):
    """The peer vanished mid-frame (EOF after a partial header/body)."""


def encode_frame(payload: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Prefix one SPW envelope with its length; validates the size window."""
    if len(payload) < ENVELOPE_OVERHEAD:
        raise FramingError(
            "frame payload of %d bytes is shorter than an SPW envelope"
            % len(payload)
        )
    if len(payload) > max_frame_bytes:
        raise FrameTooLargeError(
            "frame of %d bytes exceeds the %d-byte limit"
            % (len(payload), max_frame_bytes)
        )
    return struct.pack(">I", len(payload)) + payload


def send_frame(
    send: Callable[[bytes], int],
    payload: bytes,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> int:
    """Write one frame through ``send``, looping over short writes.

    ``send`` follows ``socket.send`` semantics: it may accept fewer
    bytes than offered and returns how many it took. Returns the total
    bytes written (header + payload). A ``send`` that reports zero
    progress means the peer is gone mid-write and raises
    :class:`TruncatedFrameError`.
    """
    data = encode_frame(payload, max_frame_bytes)
    view = memoryview(data)
    written = 0
    while written < len(data):
        sent = send(view[written:])
        if sent is None:  # file-like .write() APIs return None for "all"
            written = len(data)
            break
        if sent <= 0:
            raise TruncatedFrameError(
                "peer stopped accepting bytes after %d of %d" % (written, len(data))
            )
        written += sent
    return len(data)


def _recv_exact(recv: Callable[[int], bytes], n: int, what: str) -> bytes | None:
    """Read exactly ``n`` bytes, tolerating arbitrarily short reads.

    Returns ``None`` on EOF *before the first byte* (the caller decides
    whether that is a clean close); raises :class:`TruncatedFrameError`
    on EOF after partial data — a peer must never vanish mid-``what``.
    """
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise TruncatedFrameError(
                "connection closed mid-%s after %d of %d bytes" % (what, got, n)
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(
    recv: Callable[[int], bytes],
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> bytes | None:
    """Read one frame through ``recv``; ``None`` means clean EOF.

    Clean means the stream ended exactly on a frame boundary. EOF
    anywhere inside a frame raises :class:`TruncatedFrameError`; a
    length prefix outside the legal window raises
    :class:`FrameTooLargeError` / :class:`FramingError` without reading
    (or allocating) the advertised body.
    """
    header = _recv_exact(recv, FRAME_HEADER_BYTES, "frame header")
    if header is None:
        return None
    (length,) = struct.unpack(">I", header)
    if length > max_frame_bytes:
        raise FrameTooLargeError(
            "peer announced a %d-byte frame, limit is %d" % (length, max_frame_bytes)
        )
    if length < ENVELOPE_OVERHEAD:
        raise FramingError(
            "peer announced a %d-byte frame, shorter than an SPW envelope" % length
        )
    body = _recv_exact(recv, length, "frame body")
    if body is None:  # EOF immediately after the header is still mid-frame
        raise TruncatedFrameError(
            "connection closed between frame header and body"
        )
    return body
