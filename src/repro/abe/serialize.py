"""Binary serialization for CP-ABE artifacts.

The paper's Implementation 2 ships four files to the server on every share
(``pub_key``, ``master_key``, ``message.txt.cpabe``, ``details.txt``,
~600 KB total) — the dominant cost in its Figure 10(a) network delay. To
reproduce that cost honestly, the simulated clients exchange *real encoded
bytes* produced by this module, and the network model charges for their
actual length.

It is also what makes the Perturb tweak possible at all: the paper's
prototype could not rewrite the cpabe toolkit's opaque ciphertext encoding
and had to ship the unperturbed tree; here the encoding is ours, so
Construction 2 achieves full surveillance resistance.

Format: a minimal tagged length-prefixed binary codec (no pickle — the
artifacts cross trust boundaries).
"""

from __future__ import annotations

import struct

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate
from repro.abe.cpabe import Ciphertext, HybridCiphertext, MasterKey, PublicKey, SecretKey
from repro.crypto.ec import CurveParams, Point
from repro.crypto.fq2 import Fq2
from repro.util.codec import Reader as _Reader
from repro.util.codec import blob as _blob

__all__ = [
    "encode_access_tree",
    "decode_access_tree",
    "encode_public_key",
    "decode_public_key",
    "encode_master_key",
    "decode_master_key",
    "encode_secret_key",
    "decode_secret_key",
    "encode_ciphertext",
    "decode_ciphertext",
    "encode_hybrid_ciphertext",
    "decode_hybrid_ciphertext",
]

_LEAF_TAG = 0
_GATE_TAG = 1


def _point(point: Point) -> bytes:
    return _blob(point.to_bytes())


def _read_point(reader: _Reader, params: CurveParams) -> Point:
    return Point.from_bytes(params, reader.blob())


# -- access trees ---------------------------------------------------------------


def _encode_node(node: Node) -> bytes:
    if isinstance(node, AttributeLeaf):
        return bytes([_LEAF_TAG]) + _blob(node.attribute.encode())
    out = bytes([_GATE_TAG]) + struct.pack(">II", node.threshold, len(node.children))
    for child in node.children:
        out += _encode_node(child)
    return out


def _decode_node(reader: _Reader) -> Node:
    tag = reader.u8()
    if tag == _LEAF_TAG:
        return AttributeLeaf(reader.blob().decode())
    if tag == _GATE_TAG:
        threshold = reader.u32()
        count = reader.u32()
        children = tuple(_decode_node(reader) for _ in range(count))
        return ThresholdGate(threshold, children)
    raise ValueError("unknown access-tree node tag %d" % tag)


def encode_access_tree(tree: AccessTree) -> bytes:
    return _encode_node(tree.root)


def decode_access_tree(data: bytes) -> AccessTree:
    reader = _Reader(data)
    tree = AccessTree(_decode_node(reader))
    reader.done()
    return tree


# -- keys -------------------------------------------------------------------------


def encode_public_key(pk: PublicKey) -> bytes:
    return (
        _point(pk.g)
        + _point(pk.h)
        + _point(pk.f)
        + _blob(pk.e_gg_alpha.to_bytes())
    )


def decode_public_key(params: CurveParams, data: bytes) -> PublicKey:
    reader = _Reader(data)
    g = _read_point(reader, params)
    h = _read_point(reader, params)
    f = _read_point(reader, params)
    e_gg_alpha = Fq2.from_bytes(params.q, reader.blob())
    reader.done()
    return PublicKey(params=params, g=g, h=h, f=f, e_gg_alpha=e_gg_alpha)


def encode_master_key(params: CurveParams, mk: MasterKey) -> bytes:
    width = (params.r.bit_length() + 7) // 8
    return _blob(mk.beta.to_bytes(width, "big")) + _point(mk.g_alpha)


def decode_master_key(params: CurveParams, data: bytes) -> MasterKey:
    reader = _Reader(data)
    beta = int.from_bytes(reader.blob(), "big")
    g_alpha = _read_point(reader, params)
    reader.done()
    return MasterKey(beta=beta, g_alpha=g_alpha)


def encode_secret_key(sk: SecretKey) -> bytes:
    out = _point(sk.d) + struct.pack(">I", len(sk.components))
    for attribute in sorted(sk.components):
        d_j, d_j_prime = sk.components[attribute]
        out += _blob(attribute.encode()) + _point(d_j) + _point(d_j_prime)
    return out


def decode_secret_key(params: CurveParams, data: bytes) -> SecretKey:
    reader = _Reader(data)
    d = _read_point(reader, params)
    count = reader.u32()
    components: dict[str, tuple[Point, Point]] = {}
    for _ in range(count):
        attribute = reader.blob().decode()
        d_j = _read_point(reader, params)
        d_j_prime = _read_point(reader, params)
        components[attribute] = (d_j, d_j_prime)
    reader.done()
    return SecretKey(d=d, components=components)


# -- ciphertexts --------------------------------------------------------------------


def encode_ciphertext(ct: Ciphertext) -> bytes:
    out = _blob(encode_access_tree(ct.tree))
    out += _blob(ct.c_tilde.to_bytes())
    out += _point(ct.c)
    out += struct.pack(">I", len(ct.leaf_c))
    for c_y, c_y_prime in zip(ct.leaf_c, ct.leaf_c_prime):
        out += _point(c_y) + _point(c_y_prime)
    return out


def decode_ciphertext(params: CurveParams, data: bytes) -> Ciphertext:
    reader = _Reader(data)
    tree = decode_access_tree(reader.blob())
    c_tilde = Fq2.from_bytes(params.q, reader.blob())
    c = _read_point(reader, params)
    count = reader.u32()
    leaf_c: list[Point] = []
    leaf_c_prime: list[Point] = []
    for _ in range(count):
        leaf_c.append(_read_point(reader, params))
        leaf_c_prime.append(_read_point(reader, params))
    reader.done()
    if count != len(tree.leaves()):
        raise ValueError("leaf component count does not match the tree")
    return Ciphertext(
        tree=tree,
        c_tilde=c_tilde,
        c=c,
        leaf_c=tuple(leaf_c),
        leaf_c_prime=tuple(leaf_c_prime),
    )


def encode_hybrid_ciphertext(ct: HybridCiphertext) -> bytes:
    return _blob(encode_ciphertext(ct.header)) + _blob(ct.body)


def decode_hybrid_ciphertext(params: CurveParams, data: bytes) -> HybridCiphertext:
    reader = _Reader(data)
    header = decode_ciphertext(params, reader.blob())
    body = reader.blob()
    reader.done()
    return HybridCiphertext(header=header, body=body)
