"""Ciphertext-policy attribute-based encryption (BSW07) substrate.

Public surface:

* :class:`repro.abe.access_tree.AccessTree` — monotonic threshold-gate
  policies (with the relabeling primitive behind Perturb/Reconstruct).
* :class:`repro.abe.cpabe.CPABE` — Setup / Encrypt / KeyGen / Decrypt /
  Delegate plus a hybrid KEM-DEM for byte payloads.
* :mod:`repro.abe.serialize` — wire encodings, used both for persistence
  and for charging realistic byte counts to the simulated network.
"""

from repro.abe.access_tree import AccessTree, AttributeLeaf, ThresholdGate
from repro.abe.policy import PolicySyntaxError, format_policy, parse_policy
from repro.abe.cpabe import (
    CPABE,
    AbeError,
    Ciphertext,
    HybridCiphertext,
    MasterKey,
    PolicyNotSatisfiedError,
    PublicKey,
    SecretKey,
)

__all__ = [
    "AccessTree",
    "AttributeLeaf",
    "ThresholdGate",
    "CPABE",
    "AbeError",
    "Ciphertext",
    "HybridCiphertext",
    "MasterKey",
    "PolicyNotSatisfiedError",
    "PublicKey",
    "SecretKey",
    "parse_policy",
    "format_policy",
    "PolicySyntaxError",
]
