"""Monotonic threshold-gate access trees for CP-ABE (paper section III-C).

An access tree encodes a policy: leaves carry attribute strings with an
implicit threshold of one; internal nodes are ``k``-of-``n`` threshold
gates over their children. The tree is satisfied by an attribute set iff
the root is satisfied. AND is ``n``-of-``n``, OR is ``1``-of-``n``.

The social-puzzle Construction 2 uses the special case of a height-1 tree:
a single ``k``-of-``N`` root whose leaves are (question, answer)
attributes. The *Perturb* / *Reconstruct* operations of that construction
are relabelings of the leaves that preserve the tree's shape — supported
here by :meth:`AccessTree.relabel`, which keeps leaf order (and therefore
the association with per-leaf ciphertext components) intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, Union

__all__ = ["AttributeLeaf", "ThresholdGate", "AccessTree", "Node"]


@dataclass(frozen=True)
class AttributeLeaf:
    """A leaf node holding one attribute string (threshold of one)."""

    attribute: str

    def __post_init__(self) -> None:
        if not isinstance(self.attribute, str) or not self.attribute:
            raise ValueError("leaf attribute must be a non-empty string")


@dataclass(frozen=True)
class ThresholdGate:
    """An internal ``threshold``-of-``len(children)`` gate."""

    threshold: int
    children: tuple["Node", ...]

    def __post_init__(self) -> None:
        if not self.children:
            raise ValueError("threshold gate needs at least one child")
        if not 1 <= self.threshold <= len(self.children):
            raise ValueError(
                "threshold %d out of range for %d children"
                % (self.threshold, len(self.children))
            )


Node = Union[AttributeLeaf, ThresholdGate]


class AccessTree:
    """An immutable access tree with convenience constructors and queries."""

    __slots__ = ("root",)

    def __init__(self, root: Node):
        if not isinstance(root, (AttributeLeaf, ThresholdGate)):
            raise TypeError("root must be an AttributeLeaf or ThresholdGate")
        object.__setattr__(self, "root", root)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("AccessTree is immutable")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def single(cls, attribute: str) -> "AccessTree":
        return cls(AttributeLeaf(attribute))

    @classmethod
    def k_of_n(cls, threshold: int, attributes: Sequence[str]) -> "AccessTree":
        """The paper's height-1 social-puzzle tree: k-of-N over attributes."""
        leaves = tuple(AttributeLeaf(a) for a in attributes)
        return cls(ThresholdGate(threshold, leaves))

    @classmethod
    def all_of(cls, subtrees: Sequence["AccessTree | str"]) -> "AccessTree":
        return cls._gate(len(subtrees), subtrees)

    @classmethod
    def any_of(cls, subtrees: Sequence["AccessTree | str"]) -> "AccessTree":
        return cls._gate(1, subtrees)

    @classmethod
    def threshold(
        cls, k: int, subtrees: Sequence["AccessTree | str"]
    ) -> "AccessTree":
        return cls._gate(k, subtrees)

    @classmethod
    def _gate(cls, k: int, subtrees: Sequence["AccessTree | str"]) -> "AccessTree":
        children = tuple(
            sub.root if isinstance(sub, AccessTree) else AttributeLeaf(sub)
            for sub in subtrees
        )
        return cls(ThresholdGate(k, children))

    # -- queries ---------------------------------------------------------------

    def leaves(self) -> list[AttributeLeaf]:
        """All leaves in deterministic depth-first order.

        Ciphertexts key their per-leaf components by position in this
        order, so relabeling (which preserves shape) keeps them aligned.
        """
        found: list[AttributeLeaf] = []

        def walk(node: Node) -> None:
            if isinstance(node, AttributeLeaf):
                found.append(node)
            else:
                for child in node.children:
                    walk(child)

        walk(self.root)
        return found

    def attributes(self) -> list[str]:
        return [leaf.attribute for leaf in self.leaves()]

    def satisfied_by(self, attributes: Iterable[str]) -> bool:
        attribute_set = set(attributes)

        def check(node: Node) -> bool:
            if isinstance(node, AttributeLeaf):
                return node.attribute in attribute_set
            satisfied = sum(1 for child in node.children if check(child))
            return satisfied >= node.threshold

        return check(self.root)

    def minimal_satisfying_leaves(
        self, attributes: Iterable[str]
    ) -> list[int] | None:
        """Indices (into :meth:`leaves` order) of a minimum-size leaf set
        that satisfies the tree using only ``attributes``, or None.

        Decryption pairs two group elements per used leaf, so minimizing
        the leaf count minimizes pairing work.
        """
        attribute_set = set(attributes)
        counter = {"i": 0}

        def solve(node: Node) -> list[int] | None:
            if isinstance(node, AttributeLeaf):
                index = counter["i"]
                counter["i"] += 1
                return [index] if node.attribute in attribute_set else None
            child_solutions: list[list[int]] = []
            for child in node.children:
                solution = solve(child)
                if solution is not None:
                    child_solutions.append(solution)
            if len(child_solutions) < node.threshold:
                return None
            child_solutions.sort(key=len)
            chosen: list[int] = []
            for solution in child_solutions[: node.threshold]:
                chosen.extend(solution)
            return chosen

        return solve(self.root)

    # -- transformations ----------------------------------------------------------

    def relabel(self, fn: Callable[[str], str]) -> "AccessTree":
        """A new tree of identical shape with every leaf attribute mapped
        through ``fn`` — the primitive behind Perturb and Reconstruct."""

        def walk(node: Node) -> Node:
            if isinstance(node, AttributeLeaf):
                return AttributeLeaf(fn(node.attribute))
            return ThresholdGate(
                node.threshold, tuple(walk(child) for child in node.children)
            )

        return AccessTree(walk(self.root))

    def same_shape_as(self, other: "AccessTree") -> bool:
        """True when both trees have identical gate structure (labels may
        differ) — the invariant Perturb/Reconstruct must preserve."""

        def walk(a: Node, b: Node) -> bool:
            if isinstance(a, AttributeLeaf) and isinstance(b, AttributeLeaf):
                return True
            if isinstance(a, ThresholdGate) and isinstance(b, ThresholdGate):
                return (
                    a.threshold == b.threshold
                    and len(a.children) == len(b.children)
                    and all(walk(x, y) for x, y in zip(a.children, b.children))
                )
            return False

        return walk(self.root, other.root)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AccessTree) and self.root == other.root

    def __hash__(self) -> int:
        return hash(self.root)

    def __repr__(self) -> str:
        def render(node: Node) -> str:
            if isinstance(node, AttributeLeaf):
                return repr(node.attribute)
            inner = ", ".join(render(child) for child in node.children)
            return f"{node.threshold}of({inner})"

        return f"AccessTree({render(self.root)})"
