"""Ciphertext-Policy Attribute-Based Encryption (Bethencourt–Sahai–Waters,
IEEE S&P 2007), as summarized in the paper's section III-C.

Implemented over the from-scratch type-A symmetric pairing:

* ``Setup``  -> PK = (G0, g, h = g^beta, f = g^(1/beta), e(g,g)^alpha),
               MK = (beta, g^alpha)
* ``Encrypt(PK, M, tau)`` — shares a random exponent s down the access
  tree tau with per-node polynomials; CT carries C~ = M * e(g,g)^(alpha s),
  C = h^s and per-leaf (C_y = g^(q_y(0)), C'_y = H(att(y))^(q_y(0))).
* ``KeyGen(MK, S)`` — SK = (D = g^((alpha + r) / beta),
               {D_j = g^r * H(j)^(r_j), D'_j = g^(r_j)}).
* ``Decrypt`` — recursive DecryptNode with Lagrange recombination in the
  exponent, then M = C~ / (e(C, D) / e(g,g)^(r s)).
* ``Delegate`` — re-randomized subordinate key for a subset of attributes
  (BSW07's optional algorithm; an extension beyond the paper's use).

Messages are elements of GT; :meth:`CPABE.encrypt_bytes` /
:meth:`CPABE.decrypt_bytes` provide the hybrid KEM-DEM wrapper (random GT
element -> HKDF -> AES-CBC) that real payloads use.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, replace

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node
from repro.crypto.ec import CurveParams, Point
from repro.crypto.field import PrimeField
from repro.crypto.fq2 import Fq2
from repro.crypto.hash_to_group import hash_to_g0
from repro.crypto.kdf import hkdf
from repro.crypto.modes import seal, unseal
from repro.crypto.fixedbase import FixedBaseMult
from repro.crypto.pairing import Pairing
from repro.crypto.parallel import PairingPool
from repro.crypto.polynomial import Polynomial, lagrange_coefficients_at_zero
from repro.obs.profile import profiled

__all__ = [
    "PublicKey",
    "MasterKey",
    "SecretKey",
    "Ciphertext",
    "HybridCiphertext",
    "CPABE",
    "AbeError",
    "PolicyNotSatisfiedError",
]


class AbeError(Exception):
    """Base class for CP-ABE failures."""


class PolicyNotSatisfiedError(AbeError):
    """The key's attributes do not satisfy the ciphertext's access tree."""


@dataclass(frozen=True)
class PublicKey:
    """PK: generator g, h = g^beta, f = g^(1/beta) and e(g,g)^alpha."""

    params: CurveParams
    g: Point
    h: Point
    f: Point
    e_gg_alpha: Fq2


@dataclass(frozen=True)
class MasterKey:
    """MK = (beta, g^alpha). Held only by the key authority (the sharer,
    in the social-puzzle setting)."""

    beta: int
    g_alpha: Point


@dataclass(frozen=True)
class SecretKey:
    """SK for an attribute set S."""

    d: Point
    components: dict[str, tuple[Point, Point]]  # j -> (D_j, D'_j)

    @property
    def attributes(self) -> set[str]:
        return set(self.components)


@dataclass(frozen=True)
class Ciphertext:
    """CT = (tau, C~, C, {C_y, C'_y}). Leaf components are stored in the
    tree's depth-first leaf order so relabeling the tree (Perturb /
    Reconstruct) keeps the association intact."""

    tree: AccessTree
    c_tilde: Fq2
    c: Point
    leaf_c: tuple[Point, ...]
    leaf_c_prime: tuple[Point, ...]

    def with_tree(self, tree: AccessTree) -> "Ciphertext":
        """Same components under a relabeled tree (must keep the shape)."""
        if not self.tree.same_shape_as(tree):
            raise ValueError("replacement tree must have the same shape")
        return replace(self, tree=tree)

    def byte_size(self) -> int:
        """Wire size of this ciphertext (used by the network model)."""
        size = len(self.c_tilde.to_bytes()) + len(self.c.to_bytes())
        for point in self.leaf_c + self.leaf_c_prime:
            size += len(point.to_bytes())
        for attribute in self.tree.attributes():
            size += len(attribute.encode()) + 4
        return size


@dataclass(frozen=True)
class HybridCiphertext:
    """KEM-DEM bundle: CP-ABE header encapsulating an AES payload key."""

    header: Ciphertext
    body: bytes

    def with_tree(self, tree: AccessTree) -> "HybridCiphertext":
        return replace(self, header=self.header.with_tree(tree))

    def byte_size(self) -> int:
        return self.header.byte_size() + len(self.body)


class CPABE:
    """A CP-ABE instance over fixed pairing parameters.

    ``precompute_fixed_bases=True`` builds windowed tables for the public
    bases (g, h) on first use, speeding up repeated Encrypt/KeyGen on a
    long-lived instance by ~4x at the 160/512 operating point (ablation
    A9). The table build itself costs ~90 ms per base, so one-shot uses
    should leave it off (the default).
    """

    def __init__(
        self,
        params: CurveParams,
        precompute_fixed_bases: bool = False,
        pairing_pool: "PairingPool | None" = None,
    ):
        self.params = params
        self.pairing = Pairing(params)
        self.zr = PrimeField(params.r, check_prime=False)
        # Optional repro.crypto.parallel.PairingPool: fused decryption
        # fans its per-leaf Miller states (and decrypt_elements its
        # independent ciphertexts) across worker processes.
        self.pairing_pool = pairing_pool
        self._precompute = precompute_fixed_bases
        self._fixed_cache: dict[bytes, FixedBaseMult] = {}
        # hash_to_g0 is deterministic and dominated by cofactor clearing;
        # memoize attribute points (recur across Encrypt/KeyGen calls).
        self._attr_point_cache: dict[str, Point] = {}
        # e(g, g) per generator: Setup and every KEM encapsulation
        # exponentiate the same fixed pairing, so pay the Miller loop once.
        self._gt_base_cache: dict[bytes, Fq2] = {}

    def _mult(self, base: Point, scalar: int) -> Point:
        """Scalar-multiply a recurring public base, via the table cache
        when precomputation is enabled."""
        if not self._precompute:
            return base * scalar
        key = base.to_bytes()
        multiplier = self._fixed_cache.get(key)
        if multiplier is None:
            multiplier = FixedBaseMult(base)
            self._fixed_cache[key] = multiplier
        return multiplier.multiply(scalar)

    def _attr_point(self, attribute: str) -> Point:
        point = self._attr_point_cache.get(attribute)
        if point is None:
            point = hash_to_g0(self.params, attribute.encode())
            self._attr_point_cache[attribute] = point
        return point

    def _pair_gg(self, g: Point) -> Fq2:
        """e(g, g), memoized per generator."""
        key = g.to_bytes()
        element = self._gt_base_cache.get(key)
        if element is None:
            element = self.pairing.pair(g, g)
            self._gt_base_cache[key] = element
        return element

    # -- Setup -------------------------------------------------------------------

    @profiled(name="cpabe.setup")
    def setup(self) -> tuple[PublicKey, MasterKey]:
        r = self.params.r
        g = self.params.random_g0()
        alpha = secrets.randbelow(r - 1) + 1
        beta = secrets.randbelow(r - 1) + 1
        beta_inv = pow(beta, -1, r)
        pk = PublicKey(
            params=self.params,
            g=g,
            h=g * beta,
            f=g * beta_inv,
            e_gg_alpha=self.pairing.gt_exp(self._pair_gg(g), alpha),
        )
        mk = MasterKey(beta=beta, g_alpha=g * alpha)
        return pk, mk

    # -- Encrypt -----------------------------------------------------------------

    @profiled(name="cpabe.encrypt")
    def encrypt_element(
        self, pk: PublicKey, message: Fq2, tree: AccessTree
    ) -> Ciphertext:
        """Encrypt a GT element under the policy ``tree``."""
        if message.q != self.params.q:
            raise ValueError("message is not a GT element for these parameters")
        s = secrets.randbelow(self.params.r)
        leaf_shares = self._share_down_tree(tree.root, s)
        leaf_c: list[Point] = []
        leaf_c_prime: list[Point] = []
        for leaf, share in leaf_shares:
            leaf_c.append(self._mult(pk.g, share))
            leaf_c_prime.append(self._attr_point(leaf.attribute) * share)
        return Ciphertext(
            tree=tree,
            c_tilde=message * self.pairing.gt_exp(pk.e_gg_alpha, s),
            c=self._mult(pk.h, s),
            leaf_c=tuple(leaf_c),
            leaf_c_prime=tuple(leaf_c_prime),
        )

    def _share_down_tree(self, root: Node, secret: int) -> list[tuple[AttributeLeaf, int]]:
        """Assign q_x polynomials top-down; return (leaf, q_leaf(0)) pairs
        in depth-first leaf order."""
        shares: list[tuple[AttributeLeaf, int]] = []

        def walk(node: Node, node_secret: int) -> None:
            if isinstance(node, AttributeLeaf):
                shares.append((node, node_secret))
                return
            polynomial = Polynomial.random(
                self.zr, node.threshold - 1, constant_term=node_secret
            )
            for index, child in enumerate(node.children, start=1):
                walk(child, int(polynomial(index)))

        walk(root, secret)
        return shares

    # -- KeyGen ------------------------------------------------------------------

    @profiled(name="cpabe.keygen")
    def keygen(self, pk: PublicKey, mk: MasterKey, attributes: set[str] | list[str]) -> SecretKey:
        order = self.params.r
        r_blind = secrets.randbelow(order)
        beta_inv = pow(mk.beta, -1, order)
        d = (mk.g_alpha + pk.g * r_blind) * beta_inv
        components: dict[str, tuple[Point, Point]] = {}
        g_r_blind = self._mult(pk.g, r_blind)
        for attribute in set(attributes):
            r_j = secrets.randbelow(order)
            d_j = g_r_blind + self._attr_point(attribute) * r_j
            d_j_prime = self._mult(pk.g, r_j)
            components[attribute] = (d_j, d_j_prime)
        return SecretKey(d=d, components=components)

    # -- Delegate ----------------------------------------------------------------

    def delegate(
        self, pk: PublicKey, sk: SecretKey, attributes: set[str] | list[str]
    ) -> SecretKey:
        """BSW07 Delegate: derive a re-randomized key for a subset of
        ``sk``'s attributes without the master key."""
        subset = set(attributes)
        missing = subset - sk.attributes
        if missing:
            raise AbeError("cannot delegate attributes not in the source key: %s" % sorted(missing))
        order = self.params.r
        r_tilde = secrets.randbelow(order)
        d = sk.d + pk.f * r_tilde
        components: dict[str, tuple[Point, Point]] = {}
        for attribute in subset:
            r_j_tilde = secrets.randbelow(order)
            d_j, d_j_prime = sk.components[attribute]
            components[attribute] = (
                d_j + pk.g * r_tilde + self._attr_point(attribute) * r_j_tilde,
                d_j_prime + pk.g * r_j_tilde,
            )
        return SecretKey(d=d, components=components)

    # -- Decrypt -----------------------------------------------------------------

    @profiled(name="cpabe.decrypt")
    def decrypt_element(
        self, pk: PublicKey, sk: SecretKey, ct: Ciphertext, fused: bool = True
    ) -> Fq2:
        """Recover the GT message, or raise :class:`PolicyNotSatisfiedError`.

        The default *fused* path flattens the DecryptNode recursion into a
        single multi-pairing: every satisfied leaf contributes its
        (D_j, C_y) / (D'_j, C'_y) pair weighted by the product of Lagrange
        coefficients along its root path, the blinding term e(C, D) joins
        with exponent -1, and :meth:`Pairing.pair_product` evaluates the
        whole product with ONE final exponentiation instead of the naive
        2k+1. ``fused=False`` runs the textbook recursion — kept as the
        verification baseline for the equivalence tests and benchmarks.
        """
        chosen = ct.tree.minimal_satisfying_leaves(sk.attributes)
        if chosen is None:
            raise PolicyNotSatisfiedError(
                "key attributes do not satisfy the ciphertext policy"
            )
        if not fused:
            a = self._decrypt_node(pk, sk, ct, ct.tree.root, 0, set(chosen))[1]
            if a is None:
                raise PolicyNotSatisfiedError(
                    "decryption failed despite satisfiability"
                )
            # A = e(g,g)^(r s); e(C, D) = e(g,g)^(s (alpha + r)).
            e_c_d = self.pairing.pair(ct.c, sk.d)
            return ct.c_tilde * (e_c_d * a.inverse()).inverse()
        pairs = self._fused_pairs(sk, ct, chosen)
        # M = C~ * A / e(C, D), all under one final exponentiation (per
        # chunk, when a pairing pool splits the product across workers).
        if self.pairing_pool is not None:
            return ct.c_tilde * self.pairing_pool.pair_product(self.pairing, pairs)
        return ct.c_tilde * self.pairing.pair_product(pairs)

    def decrypt_elements(
        self,
        pk: PublicKey,
        sk: SecretKey,
        cts: "list[Ciphertext]",
    ) -> "list[Fq2]":
        """Decrypt many ciphertexts under one key.

        Each ciphertext is an independent fused multi-pairing, so with a
        :class:`~repro.crypto.parallel.PairingPool` attached the whole
        batch fans out one job per ciphertext; without one it is a plain
        loop over :meth:`decrypt_element`.
        """
        if self.pairing_pool is None or len(cts) <= 1:
            return [self.decrypt_element(pk, sk, ct) for ct in cts]
        jobs = []
        for ct in cts:
            chosen = ct.tree.minimal_satisfying_leaves(sk.attributes)
            if chosen is None:
                raise PolicyNotSatisfiedError(
                    "key attributes do not satisfy the ciphertext policy"
                )
            jobs.append(self._fused_pairs(sk, ct, chosen))
        products = self.pairing_pool.pair_products(self.pairing, jobs)
        return [ct.c_tilde * value for ct, value in zip(cts, products)]

    def _fused_pairs(
        self, sk: SecretKey, ct: Ciphertext, chosen: "frozenset[int] | set[int]"
    ) -> "list[tuple[Point, Point, int]]":
        """The (P, Q, e) list whose product (times C~) is the message."""
        terms = self._gather_terms(sk, ct, ct.tree.root, 0, set(chosen))[1]
        if terms is None:
            raise PolicyNotSatisfiedError("decryption failed despite satisfiability")
        pairs: list[tuple[Point, Point, int]] = []
        for d_j, c_y, d_j_prime, c_y_prime, weight in terms:
            pairs.append((d_j, c_y, weight))
            pairs.append((d_j_prime, c_y_prime, -weight))
        pairs.append((ct.c, sk.d, -1))
        return pairs

    def _gather_terms(
        self,
        sk: SecretKey,
        ct: Ciphertext,
        node: Node,
        leaf_cursor: int,
        chosen_leaves: set[int],
    ) -> tuple[int, list[tuple[Point, Point, Point, Point, int]] | None]:
        """Flatten DecryptNode into per-leaf pairing terms.

        Returns (next_leaf_cursor, terms) where each term is
        (D_j, C_y, D'_j, C'_y, weight): the leaf's key/ciphertext points
        and the mod-r product of the Lagrange coefficients on its path, so

            A = prod_y [ e(D_j, C_y) * e(D'_j, C'_y)^-1 ] ^ weight_y.

        Mirrors :meth:`_decrypt_node` exactly (same first-`threshold`
        child selection) but defers every pairing to the caller.
        """
        if isinstance(node, AttributeLeaf):
            index = leaf_cursor
            cursor = leaf_cursor + 1
            if index not in chosen_leaves:
                return cursor, None
            pair_components = sk.components.get(node.attribute)
            if pair_components is None:
                return cursor, None
            d_j, d_j_prime = pair_components
            return cursor, [
                (d_j, ct.leaf_c[index], d_j_prime, ct.leaf_c_prime[index], 1)
            ]

        child_terms: list[tuple[int, list[tuple[Point, Point, Point, Point, int]]]] = []
        cursor = leaf_cursor
        for child_index, child in enumerate(node.children, start=1):
            cursor, terms = self._gather_terms(sk, ct, child, cursor, chosen_leaves)
            if terms is not None:
                child_terms.append((child_index, terms))
        if len(child_terms) < node.threshold:
            return cursor, None
        selected = child_terms[: node.threshold]
        indices = [i for i, _ in selected]
        coefficients = lagrange_coefficients_at_zero(self.zr, indices)
        order = self.params.r
        combined: list[tuple[Point, Point, Point, Point, int]] = []
        for coefficient, (_, terms) in zip(coefficients, selected):
            scale = int(coefficient)
            for d_j, c_y, d_j_prime, c_y_prime, weight in terms:
                combined.append(
                    (d_j, c_y, d_j_prime, c_y_prime, weight * scale % order)
                )
        return cursor, combined

    def _decrypt_node(
        self,
        pk: PublicKey,
        sk: SecretKey,
        ct: Ciphertext,
        node: Node,
        leaf_cursor: int,
        chosen_leaves: set[int],
    ) -> tuple[int, Fq2 | None]:
        """DecryptNode restricted to the precomputed minimal leaf set.

        Returns (next_leaf_cursor, value) where value is
        e(g,g)^(r_blind * q_x(0)) or None when the subtree is not used.
        """
        if isinstance(node, AttributeLeaf):
            index = leaf_cursor
            cursor = leaf_cursor + 1
            if index not in chosen_leaves:
                return cursor, None
            pair_components = sk.components.get(node.attribute)
            if pair_components is None:
                return cursor, None
            d_j, d_j_prime = pair_components
            numerator = self.pairing.pair(d_j, ct.leaf_c[index])
            denominator = self.pairing.pair(d_j_prime, ct.leaf_c_prime[index])
            return cursor, numerator * denominator.inverse()

        child_values: list[tuple[int, Fq2]] = []
        cursor = leaf_cursor
        for child_index, child in enumerate(node.children, start=1):
            cursor, value = self._decrypt_node(
                pk, sk, ct, child, cursor, chosen_leaves
            )
            if value is not None:
                child_values.append((child_index, value))
        if len(child_values) < node.threshold:
            return cursor, None
        selected = child_values[: node.threshold]
        indices = [i for i, _ in selected]
        result = self.pairing.identity()
        for i, value in selected:
            coefficient = self._lagrange_at_zero(i, indices)
            result = result * self.pairing.gt_exp(value, coefficient)
        return cursor, result

    def _lagrange_at_zero(self, i: int, indices: list[int]) -> int:
        """Delta_{i,S}(0) over Z_r for integer index set ``indices``.

        Backed by the shared (batch-inverted, memoized) coefficient cache
        in :func:`repro.crypto.polynomial.lagrange_coefficients_at_zero`,
        so CP-ABE and Shamir reconstruction reuse the same vectors.
        """
        coefficients = lagrange_coefficients_at_zero(self.zr, indices)
        return int(coefficients[indices.index(i)])

    # -- Hybrid KEM-DEM ------------------------------------------------------------

    def encrypt_bytes(
        self, pk: PublicKey, payload: bytes, tree: AccessTree
    ) -> HybridCiphertext:
        """Encrypt arbitrary bytes: random GT KEM key -> HKDF -> AES-CBC
        with an encrypt-then-MAC tag, so body tampering (a malicious DH,
        section VI-B) is detected rather than silently flipping bits."""
        kem_element = self._random_gt(pk)
        header = self.encrypt_element(pk, kem_element, tree)
        key = hkdf(kem_element.to_bytes(), 32, info=b"repro.cpabe.dem")
        return HybridCiphertext(header=header, body=seal(key, payload))

    def decrypt_bytes(self, pk: PublicKey, sk: SecretKey, ct: HybridCiphertext) -> bytes:
        """Inverse of :meth:`encrypt_bytes`; raises
        :class:`repro.crypto.modes.IntegrityError` on a tampered body."""
        kem_element = self.decrypt_element(pk, sk, ct.header)
        key = hkdf(kem_element.to_bytes(), 32, info=b"repro.cpabe.dem")
        return unseal(key, ct.body)

    def _random_gt(self, pk: PublicKey) -> Fq2:
        """A random element of the order-r subgroup GT = <e(g, g)>."""
        exponent = secrets.randbelow(self.params.r - 1) + 1
        return self.pairing.gt_exp(self._pair_gg(pk.g), exponent)
