"""A policy language for access trees, in the style of the cpabe toolkit.

The paper's Implementation 2 drives Bethencourt's cpabe toolkit, whose
``cpabe-enc`` accepts textual policies like::

    (admin and marketing) or (2 of (ctx_a, ctx_b, ctx_c))

This module provides the same surface for our CP-ABE: :func:`parse_policy`
turns a policy string into an :class:`~repro.abe.access_tree.AccessTree`,
and :func:`format_policy` renders a tree back to canonical text (a
round-trip tested property: ``parse_policy(format_policy(t)) == t`` for
every valid tree).

Grammar (case-insensitive keywords)::

    policy   := or_expr
    or_expr  := and_expr ( OR and_expr )*
    and_expr := atom ( AND atom )*
    atom     := attribute
              | '(' policy ')'
              | NUMBER OF '(' policy ( ',' policy )* ')'

Attributes are bare words (letters, digits, ``_:./#|-`` — the ``/``
admits scope labels like ``scope:group/trip``) or single-quoted strings
(which may contain spaces and the social-puzzle separator). ``k of
(...)`` is a threshold gate; AND / OR are n-of-n / 1-of-n gates and
consecutive operators of the same kind are flattened. Attributes that
collide with a keyword or start with a digit are rendered quoted so the
formatter never emits text the parser would read as an operator or a
threshold count.

Syntax errors — from the tokenizer *and* the parser — carry the
offending position and a caret-annotated excerpt of the policy string::

    >>> parse_policy("a and (b or c")  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    PolicySyntaxError: ...
"""

from __future__ import annotations

import re
from typing import NamedTuple

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate

__all__ = ["parse_policy", "format_policy", "PolicySyntaxError"]

_EXCERPT_RADIUS = 24


class PolicySyntaxError(ValueError):
    """Raised on malformed policy strings.

    When the offending location is known, ``position`` holds the
    0-based character offset into the original policy text and the
    message ends with a caret-annotated excerpt::

        expected ')', got ',' at position 9
            2 of (a, b, c
                   ^
    """

    def __init__(
        self,
        message: str,
        *,
        text: str | None = None,
        position: int | None = None,
    ):
        self.position = position
        self.text = text
        if text is not None and position is not None:
            message = "%s at position %d\n%s" % (
                message,
                position,
                _excerpt(text, position),
            )
        super().__init__(message)


def _excerpt(text: str, position: int) -> str:
    """Render a window of ``text`` around ``position`` with a caret."""
    position = max(0, min(position, len(text)))
    start = max(0, position - _EXCERPT_RADIUS)
    end = min(len(text), position + _EXCERPT_RADIUS)
    head = "... " if start > 0 else ""
    tail = " ..." if end < len(text) else ""
    window = text[start:end].replace("\n", " ").replace("\x1f", " ")
    caret_at = len(head) + (position - start)
    return "    %s%s%s\n    %s^" % (head, window, tail, " " * caret_at)


class _Token(NamedTuple):
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<comma>,) |
        (?P<quoted>'(?:[^'\\]|\\.)*') |
        (?P<word>[\w:./#|\x1f-]+)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "of"}


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:]
            stripped = remainder.lstrip()
            if not stripped:
                break
            at = position + (len(remainder) - len(stripped))
            raise PolicySyntaxError(
                "unexpected character %r" % stripped[0], text=text, position=at
            )
        start = match.start(1)
        position = match.end()
        if match.group("quoted"):
            raw = match.group("quoted")[1:-1]
            tokens.append(
                _Token("'" + raw.replace("\\'", "'").replace("\\\\", "\\"), start)
            )
        else:
            tokens.append(_Token(match.group(1), start))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.position = 0

    def _fail(self, message: str, at: int | None = None) -> PolicySyntaxError:
        if at is None:
            if self.position < len(self.tokens):
                at = self.tokens[self.position].position
            else:
                at = len(self.text)
        return PolicySyntaxError(message, text=self.text, position=at)

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position].text
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise self._fail("unexpected end of policy")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        here = self.position
        got = self.take()
        if got != token:
            raise self._fail(
                "expected %r, got %r" % (token, got), at=self.tokens[here].position
            )

    # policy := or_expr
    def parse(self) -> Node:
        node = self._or_expr()
        if self.peek() is not None:
            raise self._fail("unexpected token %r" % self.peek())
        return node

    def _or_expr(self) -> Node:
        parts = [self._and_expr()]
        while self._keyword_ahead("or"):
            self.take()
            parts.append(self._and_expr())
        if len(parts) == 1:
            return parts[0]
        return ThresholdGate(1, tuple(parts))

    def _and_expr(self) -> Node:
        parts = [self._atom()]
        while self._keyword_ahead("and"):
            self.take()
            parts.append(self._atom())
        if len(parts) == 1:
            return parts[0]
        return ThresholdGate(len(parts), tuple(parts))

    def _keyword_ahead(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == keyword

    def _atom(self) -> Node:
        token = self.peek()
        if token is None:
            raise self._fail("unexpected end of policy")
        here = self.position
        if token == "(":
            self.take()
            node = self._or_expr()
            self.expect(")")
            return node
        if token.isdigit():
            threshold = int(self.take())
            if not self._keyword_ahead("of"):
                # A bare number is a valid attribute name in cpabe; treat
                # it as a leaf when not followed by OF.
                return AttributeLeaf(token)
            self.take()  # OF
            self.expect("(")
            children = [self._or_expr()]
            while self.peek() == ",":
                self.take()
                children.append(self._or_expr())
            self.expect(")")
            if not 1 <= threshold <= len(children):
                raise self._fail(
                    "threshold %d out of range for %d alternatives"
                    % (threshold, len(children)),
                    at=self.tokens[here].position,
                )
            return ThresholdGate(threshold, tuple(children))
        token = self.take()
        if token in (")", ","):
            raise self._fail(
                "unexpected %r" % token, at=self.tokens[here].position
            )
        if token.startswith("'"):
            return AttributeLeaf(token[1:])
        if token.lower() in _KEYWORDS:
            raise self._fail(
                "keyword %r cannot be an attribute" % token,
                at=self.tokens[here].position,
            )
        return AttributeLeaf(token)


def parse_policy(text: str) -> AccessTree:
    """Parse a cpabe-style policy string into an access tree."""
    if not text.strip():
        raise PolicySyntaxError("empty policy")
    return AccessTree(_Parser(_tokenize(text), text).parse())


_BARE_RE = re.compile(r"^[\w:./#|-]+$")


def _quote(attribute: str) -> str:
    if (
        _BARE_RE.match(attribute)
        and attribute.lower() not in _KEYWORDS
        and not attribute[0].isdigit()
    ):
        return attribute
    return "'" + attribute.replace("\\", "\\\\").replace("'", "\\'") + "'"


def _format_node(node: Node) -> str:
    if isinstance(node, AttributeLeaf):
        return _quote(node.attribute)
    children = [_format_node(child) for child in node.children]
    if node.threshold == len(node.children) and len(children) > 1:
        return "(" + " and ".join(children) + ")"
    if node.threshold == 1 and len(children) > 1:
        return "(" + " or ".join(children) + ")"
    # A single-child gate must stay a gate in the rendering — collapsing
    # it to the bare child would lose the node on the way back through
    # parse_policy and break the round-trip property.
    return "%d of (%s)" % (node.threshold, ", ".join(children))


def format_policy(tree: AccessTree) -> str:
    """Render a tree as canonical policy text (inverse of parse_policy
    up to parenthesization)."""
    return _format_node(tree.root)
