"""A policy language for access trees, in the style of the cpabe toolkit.

The paper's Implementation 2 drives Bethencourt's cpabe toolkit, whose
``cpabe-enc`` accepts textual policies like::

    (admin and marketing) or (2 of (ctx_a, ctx_b, ctx_c))

This module provides the same surface for our CP-ABE: :func:`parse_policy`
turns a policy string into an :class:`~repro.abe.access_tree.AccessTree`,
and :func:`format_policy` renders a tree back to canonical text (a
round-trip tested property).

Grammar (case-insensitive keywords)::

    policy   := or_expr
    or_expr  := and_expr ( OR and_expr )*
    and_expr := atom ( AND atom )*
    atom     := attribute
              | '(' policy ')'
              | NUMBER OF '(' policy ( ',' policy )* ')'

Attributes are bare words (letters, digits, ``_:.#|-``) or single-quoted
strings (which may contain spaces and the social-puzzle separator).
``k of (...)`` is a threshold gate; AND / OR are n-of-n / 1-of-n gates
and consecutive operators of the same kind are flattened.
"""

from __future__ import annotations

import re

from repro.abe.access_tree import AccessTree, AttributeLeaf, Node, ThresholdGate

__all__ = ["parse_policy", "format_policy", "PolicySyntaxError"]


class PolicySyntaxError(ValueError):
    """Raised on malformed policy strings."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<lparen>\() |
        (?P<rparen>\)) |
        (?P<comma>,) |
        (?P<quoted>'(?:[^'\\]|\\.)*') |
        (?P<word>[\w:.#|\x1f-]+)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "of"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise PolicySyntaxError(
                "unexpected character %r at position %d" % (remainder[0], position)
            )
        position = match.end()
        if match.group("quoted"):
            raw = match.group("quoted")[1:-1]
            tokens.append("'" + raw.replace("\\'", "'").replace("\\\\", "\\"))
        else:
            tokens.append(match.group(1))
    if text[position:].strip():
        raise PolicySyntaxError("trailing garbage: %r" % text[position:])
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise PolicySyntaxError("unexpected end of policy")
        self.position += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise PolicySyntaxError("expected %r, got %r" % (token, got))

    # policy := or_expr
    def parse(self) -> Node:
        node = self._or_expr()
        if self.peek() is not None:
            raise PolicySyntaxError("unexpected token %r" % self.peek())
        return node

    def _or_expr(self) -> Node:
        parts = [self._and_expr()]
        while self._keyword_ahead("or"):
            self.take()
            parts.append(self._and_expr())
        if len(parts) == 1:
            return parts[0]
        return ThresholdGate(1, tuple(parts))

    def _and_expr(self) -> Node:
        parts = [self._atom()]
        while self._keyword_ahead("and"):
            self.take()
            parts.append(self._atom())
        if len(parts) == 1:
            return parts[0]
        return ThresholdGate(len(parts), tuple(parts))

    def _keyword_ahead(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() == keyword

    def _atom(self) -> Node:
        token = self.peek()
        if token is None:
            raise PolicySyntaxError("unexpected end of policy")
        if token == "(":
            self.take()
            node = self._or_expr()
            self.expect(")")
            return node
        if token.isdigit():
            threshold = int(self.take())
            if not self._keyword_ahead("of"):
                # A bare number is a valid attribute name in cpabe; treat
                # it as a leaf when not followed by OF.
                return AttributeLeaf(token)
            self.take()  # OF
            self.expect("(")
            children = [self._or_expr()]
            while self.peek() == ",":
                self.take()
                children.append(self._or_expr())
            self.expect(")")
            if not 1 <= threshold <= len(children):
                raise PolicySyntaxError(
                    "threshold %d out of range for %d alternatives"
                    % (threshold, len(children))
                )
            return ThresholdGate(threshold, tuple(children))
        token = self.take()
        if token in (")", ","):
            raise PolicySyntaxError("unexpected %r" % token)
        if token.startswith("'"):
            return AttributeLeaf(token[1:])
        if token.lower() in _KEYWORDS:
            raise PolicySyntaxError("keyword %r cannot be an attribute" % token)
        return AttributeLeaf(token)


def parse_policy(text: str) -> AccessTree:
    """Parse a cpabe-style policy string into an access tree."""
    if not text.strip():
        raise PolicySyntaxError("empty policy")
    return AccessTree(_Parser(_tokenize(text)).parse())


_BARE_RE = re.compile(r"^[\w:.#|-]+$")


def _quote(attribute: str) -> str:
    if _BARE_RE.match(attribute) and attribute.lower() not in _KEYWORDS:
        return attribute
    return "'" + attribute.replace("\\", "\\\\").replace("'", "\\'") + "'"


def _format_node(node: Node) -> str:
    if isinstance(node, AttributeLeaf):
        return _quote(node.attribute)
    children = [_format_node(child) for child in node.children]
    if node.threshold == len(node.children) and len(children) > 1:
        return "(" + " and ".join(children) + ")"
    if node.threshold == 1 and len(children) > 1:
        return "(" + " or ".join(children) + ")"
    if len(children) == 1:
        return children[0]
    return "%d of (%s)" % (node.threshold, ", ".join(children))


def format_policy(tree: AccessTree) -> str:
    """Render a tree as canonical policy text (inverse of parse_policy
    up to parenthesization)."""
    return _format_node(tree.root)
