"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``       — the quickstart flow (share, solve, deny, audit).
* ``figure``     — regenerate a Figure 10 panel (optionally ``--csv``).
* ``attacks``    — stage the section VI attack scenarios and print outcomes.
* ``study``      — run the simulated ISO 9241-11 usability study.
* ``simulate``   — run the system-level deployment simulation.
* ``recommend``  — list recommended context questions for an event kind.
* ``audit``      — strength-audit a context JSON file before sharing.
* ``policy``     — parse, canonicalize and dry-run a nested puzzle policy.
* ``share``      — share an object into a persistent world file.
* ``solve``      — solve a puzzle from a persistent world file.
* ``trace``      — run seeded journeys and print their closed span trees.
* ``stats``      — run seeded journeys and print the metrics registry.
* ``serve``      — serve the protocol engine over TCP (see docs/DEPLOYMENT.md).

The CLI only drives the library; all logic lives in the packages.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.apps.platform import SocialPuzzlePlatform
from repro.core.context import Context
from repro.core.entropy import audit_puzzle_strength
from repro.core.errors import AccessDeniedError, PuzzleParameterError
from repro.core.recommend import ContextRecommender
from repro.crypto.params import get_params

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Social Puzzles (DSN 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the quickstart share/solve flow")
    demo.add_argument("--params", default="small", help="pairing preset (toy/small/default)")
    demo.add_argument("--construction", type=int, default=1, choices=(1, 2))
    demo.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="run the flow against a running `repro serve` instead of "
        "in-process (client-side crypto, every SP/DH step a round trip)",
    )

    figure = sub.add_parser("figure", help="regenerate a Figure 10 panel")
    figure.add_argument("panel", choices=("10a", "10b", "10c", "10d"))
    figure.add_argument("--params", default="default", help="pairing preset")
    figure.add_argument(
        "--file-size-model", default="paper", choices=("paper", "actual")
    )
    figure.add_argument("--csv", default=None, help="also write the series to a CSV file")

    sub.add_parser("attacks", help="stage the section VI attack scenarios")

    study = sub.add_parser("study", help="run the simulated usability study")
    study.add_argument("--participants", type=int, default=30)
    study.add_argument("--questions", type=int, default=5)
    study.add_argument("--threshold", type=int, default=2)
    study.add_argument("--seed", type=int, default=0)

    simulate = sub.add_parser(
        "simulate", help="run the system-level deployment simulation"
    )
    simulate.add_argument("--users", type=int, default=40)
    simulate.add_argument("--ticks", type=int, default=20)
    simulate.add_argument("--threshold", type=int, default=2)
    simulate.add_argument("--construction", type=int, default=1, choices=(1, 2))
    simulate.add_argument("--seed", type=int, default=0)

    recommend = sub.add_parser("recommend", help="suggest context questions")
    recommend.add_argument("kind", help="event kind (party/trip/meeting/wedding)")
    recommend.add_argument("--count", type=int, default=None)

    audit = sub.add_parser("audit", help="strength-audit a context JSON file")
    audit.add_argument("path", help='JSON file: {"k": 2, "context": {"Q?": "A", ...}}')

    policy = sub.add_parser(
        "policy", help="parse, canonicalize and dry-run a puzzle policy"
    )
    policy.add_argument(
        "expression",
        help="policy text, e.g. \"scope:group/trip and (2 of (a, b, c) or"
        " attr:escrow)\"",
    )
    policy.add_argument(
        "--known", default=None, metavar="Q1,Q2,...",
        help="comma-separated requirement labels to treat as proved; prints"
        " the grant/deny derivation (exit 0 grant, 1 deny)",
    )

    share = sub.add_parser(
        "share", help="share an object into a persistent world file"
    )
    share.add_argument("--world", required=True, help="world JSON file (created if absent)")
    share.add_argument("--sharer", required=True, help="sharer user name")
    share.add_argument(
        "--friends", default="", help="comma-separated friend names to (auto-)create"
    )
    share.add_argument("--message", required=True, help="object to protect")
    share.add_argument(
        "--context", required=True, help='context JSON file {"Q?": "A", ...}'
    )
    share.add_argument("-k", "--threshold", type=int, default=2)
    share.add_argument("--construction", type=int, default=1, choices=(1, 2))
    share.add_argument("--params", default="toy", help="pairing preset for new worlds")

    solve = sub.add_parser("solve", help="solve a puzzle from a world file")
    solve.add_argument("--world", required=True)
    solve.add_argument("--viewer", required=True, help="viewer user name")
    solve.add_argument("--puzzle", type=int, required=True, help="puzzle id")
    solve.add_argument(
        "--answers", required=True, help='answers JSON file {"Q?": "A", ...}'
    )
    solve.add_argument("--construction", type=int, default=1, choices=(1, 2))
    solve.add_argument("--seed", type=int, default=None, help="display-subset seed (C1)")

    serve = sub.add_parser(
        "serve", help="serve the protocol engine over TCP"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; the bound address is printed)",
    )
    serve.add_argument("--params", default="small", help="pairing preset")
    serve.add_argument(
        "--max-in-flight", type=int, default=8,
        help="per-connection pipelining window (backpressure beyond it)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="dispatch threads shared by all connections",
    )
    serve.add_argument(
        "--cluster-nodes", type=int, default=None, metavar="N",
        help="back the DH with an N-node quorum storage cluster",
    )
    serve.add_argument(
        "--storage-engine", default="dict", metavar="ENGINE",
        help="per-node blob engine under the cluster "
        "(dict=in-memory reference, segment=log-structured store)",
    )
    serve.add_argument(
        "--crypto-tier", default=None, choices=("auto", "pure", "compiled"),
        help="force the crypto acceleration tier "
        "(default: REPRO_CRYPTO_TIER, else probe compiled, fall back pure)",
    )
    serve.add_argument(
        "--pairing-workers", type=int, default=None, metavar="N",
        help="fan receiver-side multi-pairings across N worker processes "
        "(0/1 = serial; default: no pool)",
    )

    for name, help_text, default_journeys in (
        ("trace", "run seeded journeys and print their span trees", 1),
        ("stats", "run seeded journeys and print the metrics registry", 3),
    ):
        observed = sub.add_parser(name, help=help_text)
        observed.add_argument("--construction", type=int, default=1, choices=(1, 2))
        observed.add_argument(
            "--journeys", type=int, default=default_journeys,
            help="number of share+solve journeys to run",
        )
        observed.add_argument("--seed", type=int, default=0)
        observed.add_argument(
            "--fault-rate", type=float, default=0.0,
            help="transient-fault probability per substrate call (wires retries)",
        )
        observed.add_argument("--params", default="small", help="pairing preset")
        observed.add_argument(
            "--cluster-nodes", type=int, default=None, metavar="N",
            help="back the DH with an N-node quorum storage cluster "
            "(cluster.* metrics appear in the output)",
        )
        observed.add_argument(
            "--storage-engine", default="dict", metavar="ENGINE",
            help="per-node blob engine under the cluster "
            "(dict=in-memory reference, segment=log-structured store)",
        )
        observed.add_argument(
            "--crypto-tier", default=None, choices=("auto", "pure", "compiled"),
            help="force the crypto acceleration tier "
            "(default: REPRO_CRYPTO_TIER, else probe compiled, fall back pure)",
        )
        observed.add_argument(
            "--pairing-workers", type=int, default=None, metavar="N",
            help="fan receiver-side multi-pairings across N worker processes "
            "(0/1 = serial; default: no pool)",
        )

    return parser


def _load_world(path: str, params_name: str) -> "SocialPuzzlePlatform":
    import os

    from repro.osn.persistence import load_platform

    if os.path.exists(path):
        return load_platform(path)
    return SocialPuzzlePlatform(params=get_params(params_name))


def _user_by_name(platform: "SocialPuzzlePlatform", name: str, create: bool = False):
    for account in platform.provider._accounts.values():
        if account.user.name == name:
            return account.user
    if create:
        return platform.join(name)
    raise SystemExit(f"error: no user named {name!r} in this world")


def _cmd_share(args) -> int:
    from repro.osn.persistence import save_platform

    platform = _load_world(args.world, args.params)
    sharer = _user_by_name(platform, args.sharer, create=True)
    for friend_name in filter(None, args.friends.split(",")):
        friend = _user_by_name(platform, friend_name.strip(), create=True)
        if not platform.provider.are_friends(sharer, friend):
            platform.befriend(sharer, friend)
    with open(args.context) as handle:
        context = Context.from_mapping(json.load(handle))
    share = platform.share(
        sharer,
        args.message.encode(),
        context,
        k=args.threshold,
        construction=args.construction,
    )
    save_platform(platform, args.world)
    print(f"shared puzzle #{share.puzzle_id} (construction {args.construction})")
    print(f"post: {share.post.content}")
    return 0


def _cmd_solve(args) -> int:
    from repro.osn.persistence import save_platform

    platform = _load_world(args.world, "toy")
    viewer = _user_by_name(platform, args.viewer)
    with open(args.answers) as handle:
        knowledge = Context.from_mapping(json.load(handle))
    app = platform.app_c1 if args.construction == 1 else platform.app_c2
    try:
        if args.construction == 1:
            rng = random.Random(args.seed) if args.seed is not None else None
            result = app.attempt_access(viewer, args.puzzle, knowledge, rng=rng)
        else:
            result = app.attempt_access(viewer, args.puzzle, knowledge)
    except AccessDeniedError as exc:
        print(f"access denied: {exc}", file=sys.stderr)
        return 1
    save_platform(platform, args.world)
    print(result.plaintext.decode(errors="replace"))
    return 0


def _parse_address(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise SystemExit(f"error: --connect wants HOST:PORT, got {value!r}")
    return host or "127.0.0.1", int(port)


def _cmd_demo_remote(args) -> int:
    """The demo flow against a running ``repro serve``: the crypto runs
    here, every SP/DH interaction is a framed round trip."""
    from repro.serve import RemoteProtocolClient, TcpTransport, run_remote_journey

    host, port = _parse_address(args.connect)
    with RemoteProtocolClient(TcpTransport(host, port)) as client:
        report = run_remote_journey(
            client, construction=args.construction, params_name=args.params
        )
    print(
        f"shared puzzle #{report.puzzle_id} over tcp://{host}:{port} "
        f"(construction {report.construction})"
    )
    print(f"bob solved it: {report.recovered!r}")
    print(f"carol denied the post: {report.acl_denied}")
    print(f"carol denied by the puzzle: {report.answers_denied}")
    return 0 if report.ok else 1


def _cmd_demo(args) -> int:
    if args.connect is not None:
        return _cmd_demo_remote(args)
    params = get_params(args.params)
    platform = SocialPuzzlePlatform(params=params)
    alice = platform.join("alice")
    bob = platform.join("bob")
    carol = platform.join("carol")
    platform.befriend(alice, bob)
    platform.befriend(alice, carol)

    context = Context.from_mapping(
        {
            "Where was the party held?": "Lake Tahoe",
            "Who brought the cake?": "Marguerite",
            "Which song closed the night?": "Wonderwall",
        }
    )
    obj = b"party photos"
    share = platform.share(
        alice, obj, context, k=2, construction=args.construction
    )
    print(f"shared puzzle #{share.puzzle_id} (construction {args.construction})")
    rng = random.Random(5) if args.construction == 1 else None
    result = platform.solve(
        bob, share, context, construction=args.construction, rng=rng
    )
    print(f"bob solved it: {result.plaintext!r}")
    try:
        wrong = Context.from_mapping({"Where was the party held?": "Las Vegas"})
        platform.solve(carol, share, wrong, construction=args.construction, rng=rng)
    except AccessDeniedError as exc:
        print(f"carol denied: {exc}")
    for pair in context:
        platform.provider.audit.assert_never_saw(pair.answer_bytes(), "answer")
    print("audit: SP never saw a plaintext answer")
    return 0


def _cmd_figure(args) -> int:
    from repro.sim.devices import PC, TABLET
    from repro.sim.figures import print_figure, series

    params = get_params(args.params)
    model = args.file_size_model
    if args.panel == "10a":
        title = "Figure 10(a) — Sharer's Overhead: I1 vs I2 on PC"
        labelled = {
            "I1": series(1, "sharer", params=params, file_size_model=model),
            "I2": series(2, "sharer", params=params, file_size_model=model),
        }
    elif args.panel == "10b":
        title = "Figure 10(b) — Receiver's Overhead: I1 vs I2 on PC"
        labelled = {
            "I1": series(1, "receiver", params=params, file_size_model=model),
            "I2": series(2, "receiver", params=params, file_size_model=model),
        }
    elif args.panel == "10c":
        title = "Figure 10(c) — Sharer's Overhead: PC vs Tablet for I1"
        labelled = {
            "PC": series(1, "sharer", device=PC, params=params),
            "Tablet": series(1, "sharer", device=TABLET, params=params),
        }
    else:
        title = "Figure 10(d) — Receiver's Overhead: PC vs Tablet for I1"
        labelled = {
            "PC": series(1, "receiver", device=PC, params=params),
            "Tablet": series(1, "receiver", device=TABLET, params=params),
        }
    print_figure(title, labelled)
    if args.csv:
        from repro.sim.metrics import write_csv

        write_csv(labelled, args.csv)
        print(f"series written to {args.csv}")
    return 0


def _cmd_attacks(_args) -> int:
    from repro.analysis.scenarios import format_outcomes, run_standard_scenarios

    print(format_outcomes(run_standard_scenarios()))
    return 0


def _cmd_study(args) -> int:
    from repro.analysis.usability import StudyConfig, simulate_user_study

    config = StudyConfig(
        participants_per_class=args.participants,
        num_questions=args.questions,
        threshold=args.threshold,
        seed=args.seed,
    )
    report = simulate_user_study(config)
    print(
        f"simulated study: {args.participants} participants/class, "
        f"N={args.questions}, k={args.threshold}"
    )
    print(
        f"{'class':>16} {'success':>8} {'mean time (s)':>14} "
        f"{'first-try':>10} {'attempts':>9}"
    )
    for row in report.results:
        print(
            f"{row.participant_class:>16} {row.success_rate:>8.0%} "
            f"{row.mean_time_s:>14.1f} {row.first_try_rate:>10.0%} "
            f"{row.mean_attempts:>9.2f}"
        )
    return 0


def _cmd_simulate(args) -> int:
    from repro.sim.driver import SimulationConfig, run_simulation

    config = SimulationConfig(
        num_users=args.users,
        ticks=args.ticks,
        threshold=args.threshold,
        construction=args.construction,
        seed=args.seed,
    )
    print(
        "simulating %d ticks on %d users (construction %d, k=%d)..."
        % (config.ticks, config.num_users, config.construction, config.threshold)
    )
    report = run_simulation(config)
    for line in report.summary_lines():
        print(" ", line)
    return 0 if report.stranger_granted == 0 else 1


def _cmd_recommend(args) -> int:
    recommender = ContextRecommender()
    try:
        candidates = recommender.suggest_questions(args.kind, args.count)
    except PuzzleParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"recommended questions for a {args.kind} (strongest domains first):")
    for candidate in candidates:
        print(f"  [{candidate.domain_size:>8} plausible answers] {candidate.question}")
    return 0


def _cmd_audit(args) -> int:
    with open(args.path) as handle:
        payload = json.load(handle)
    try:
        context = Context.from_mapping(payload["context"])
        k = int(payload["k"])
        report = audit_puzzle_strength(context, k)
    except (KeyError, ValueError, PuzzleParameterError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"puzzle strength audit (k={k}, N={len(context)}):")
    for answer in report.answers:
        marker = "WEAK" if answer.weak else "ok  "
        print(f"  [{marker}] {answer.entropy_bits:5.1f} bits  {answer.question}")
    print(f"attack cost (k weakest answers): ~{report.attack_cost_bits:.0f} bits")
    for note in report.notes:
        print(f"  note: {note}")
    if report.acceptable:
        print("verdict: acceptable")
        return 0
    print("verdict: NOT acceptable")
    for warning in report.warnings:
        print(f"  warning: {warning}")
    return 1


def _cmd_policy(args) -> int:
    """Parse ``expression``; optionally evaluate it against ``--known``.

    Without ``--known`` this is a lint: the canonical rendering, the
    question list and the tree depth, or a caret-annotated syntax error.
    With ``--known`` it additionally runs the same gate-by-gate evaluator
    the SP's Explain verb uses (locally — no answers are involved, only
    which labels count as proved).
    """
    from repro.abe.policy import PolicySyntaxError
    from repro.policy import PolicyError, PuzzlePolicy, explain_tree

    try:
        policy = PuzzlePolicy.from_text(args.expression)
    except (PolicySyntaxError, PolicyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shape = "flat" if policy.is_flat() else "nested"
    print(f"canonical: {policy.text}")
    print(f"shape: {shape}, depth {policy.depth()}, "
          f"{len(policy.questions)} requirement(s)")
    for question in policy.questions:
        print(f"  - {question}")
    scopes = policy.scope_labels()
    if scopes:
        print("scope gates: " + ", ".join(scopes))
    if args.known is None:
        return 0
    known = {label.strip() for label in args.known.split(",") if label.strip()}
    unknown = known - set(policy.questions)
    if unknown:
        print(
            "warning: not in the policy: " + ", ".join(sorted(unknown)),
            file=sys.stderr,
        )
    explanation = explain_tree(
        policy.tree, known, construction=0, puzzle_id=0, policy_text=policy.text
    )
    print(explanation.render())
    return 0 if explanation.granted else 1


def format_self_healing(registry) -> str:
    """One-line summary of the cluster's self-healing counters.

    Reads the registry without creating instruments, so a run that never
    healed anything reports zeros rather than minting empty counters.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> registry = MetricsRegistry()
    >>> registry.counter("cluster.anti_entropy.keys_repaired").add(3)
    >>> format_self_healing(registry)
    'self-healing: anti-entropy rounds=0 repaired=3 bytes=0 | degraded reads=0 | hints dropped=0'
    """

    def value(name: str) -> int:
        counter = registry.counters.get(name)
        return int(counter.value) if counter is not None else 0

    return (
        "self-healing: anti-entropy rounds=%d repaired=%d bytes=%d"
        " | degraded reads=%d | hints dropped=%d"
        % (
            value("cluster.anti_entropy.rounds"),
            value("cluster.anti_entropy.keys_repaired"),
            value("cluster.anti_entropy.bytes_exchanged"),
            value("cluster.degraded_reads"),
            value("cluster.hinted_handoff.dropped"),
        )
    )


def format_crypto_tier(tier, pool=None) -> str:
    """One-line summary of the crypto acceleration tier and pairing pool.

    Takes :func:`repro.crypto.accel.describe` output (and optionally
    :meth:`~repro.crypto.parallel.PairingPool.describe` when a pool is
    attached); shown by ``repro stats`` and the ``repro serve`` banner.

    >>> format_crypto_tier(
    ...     {"tier": "compiled", "requested": "auto",
    ...      "library": "/tmp/spxaccel.so", "reason": None,
    ...      "field_mulmod": "native"},
    ...     {"workers": 4, "mode": "parallel"})
    'crypto: tier=compiled requested=auto field-mul=native | pool=parallel workers=4'
    >>> format_crypto_tier(
    ...     {"tier": "pure", "requested": "pure", "library": None,
    ...      "reason": "pure tier requested", "field_mulmod": "native"})
    'crypto: tier=pure requested=pure field-mul=native | pool=off'
    """
    if pool is None:
        pool_part = "pool=off"
    else:
        pool_part = "pool=%s workers=%d" % (pool["mode"], pool["workers"])
    return "crypto: tier=%s requested=%s field-mul=%s | %s" % (
        tier["tier"],
        tier["requested"],
        tier["field_mulmod"],
        pool_part,
    )


def format_storage_engine(stats) -> str:
    """One-line summary of the cluster's storage-engine counters.

    Takes the aggregate :class:`~repro.store.interface.StoreStats` from
    ``StorageCluster.storage_stats()`` — segments and live/dead bytes
    describe the log right now; compactions and reclaimed bytes are
    lifetime totals.

    >>> from repro.store.interface import StoreStats
    >>> format_storage_engine(StoreStats(
    ...     engine="segment", segments=3, live_bytes=2048, dead_bytes=512,
    ...     physical_bytes=900, payload_bytes=1500, objects=12,
    ...     tombstones=1, compactions=2, bytes_reclaimed=4096))
    'storage: engine=segment segments=3 live=2048B dead=512B physical=900B | compactions=2 reclaimed=4096B'
    """
    return (
        "storage: engine=%s segments=%d live=%dB dead=%dB physical=%dB"
        " | compactions=%d reclaimed=%dB"
        % (
            stats.engine,
            stats.segments,
            stats.live_bytes,
            stats.dead_bytes,
            stats.physical_bytes,
            stats.compactions,
            stats.bytes_reclaimed,
        )
    )


def _observed_journeys(args):
    """Run seeded share+solve journeys under an Observability hub.

    Returns ``(obs, completed, failed, cluster-or-None)``. With
    ``--fault-rate`` the platform runs on flaky substrates behind a
    retry policy, so the traces and metrics show retries, backoff and
    (possibly) give-ups.
    """
    from repro.core.errors import SocialPuzzleError
    from repro.obs import Observability
    from repro.osn.resilience import RetryPolicy
    from repro.sim.metrics import ResilienceMetrics
    from repro.sim.timing import SimClock

    clock = SimClock()
    obs = Observability(clock=clock)
    substrates = {}
    cluster_nodes = getattr(args, "cluster_nodes", None)
    if args.fault_rate > 0:
        from repro.osn.faults import FlakyServiceProvider, FlakyStorageHost

        substrates["provider"] = FlakyServiceProvider(
            post_failure_rate=args.fault_rate,
            read_failure_rate=args.fault_rate,
            seed=args.seed,
        )
        if cluster_nodes is None:
            substrates["storage"] = FlakyStorageHost(
                put_failure_rate=args.fault_rate,
                get_failure_rate=args.fault_rate,
                seed=args.seed + 1,
            )
    if cluster_nodes is not None:
        from repro.cluster import StorageCluster, flaky_node_factory

        engine = getattr(args, "storage_engine", "dict")
        factory = None
        if args.fault_rate > 0:
            factory = flaky_node_factory(
                store_failure_rate=args.fault_rate,
                fetch_failure_rate=args.fault_rate,
                seed=args.seed + 1,
                engine=engine,
            )
        substrates["storage"] = StorageCluster(
            num_nodes=cluster_nodes, clock=clock, node_factory=factory,
            engine=engine,
        )
    retry = RetryPolicy(
        clock=clock, seed=args.seed, metrics=ResilienceMetrics(registry=obs.registry)
    )
    if getattr(args, "crypto_tier", None):
        from repro.crypto import accel

        accel.set_tier(args.crypto_tier)
    platform = SocialPuzzlePlatform(
        params=get_params(args.params),
        retry_policy=retry,
        observability=obs,
        pairing_workers=getattr(args, "pairing_workers", None),
        **substrates,
    )
    alice = platform.join("alice")
    bob = platform.join("bob")
    platform.befriend(alice, bob)
    context = Context.from_mapping(
        {
            "Where was the party held?": "Lake Tahoe",
            "Who brought the cake?": "Marguerite",
            "Which song closed the night?": "Wonderwall",
        }
    )
    completed = failed = 0
    for i in range(args.journeys):
        rng = random.Random(args.seed + i) if args.construction == 1 else None
        try:
            share = platform.share(
                alice,
                b"party photos #%d" % i,
                context,
                k=2,
                construction=args.construction,
            )
            platform.solve(
                bob, share, context, construction=args.construction, rng=rng
            )
            completed += 1
        except SocialPuzzleError:
            failed += 1
    cluster = substrates.get("storage") if cluster_nodes is not None else None
    if cluster is not None:
        # Close out the run the way a real deployment's background tasks
        # would: one anti-entropy sweep so divergence the journeys left
        # behind (flaky stores, shed hints) heals before we report, then
        # one compaction round so the storage gauges describe a settled
        # log rather than mid-churn garbage.
        from repro.obs.runtime import use as use_observer

        with use_observer(obs):
            cluster.run_anti_entropy()
            cluster.run_compaction(min_garbage=0.0)
    if platform.pairing_pool is not None:
        platform.pairing_pool.close()  # journeys done; stats survive close
    return obs, completed, failed, cluster, platform


def _cmd_trace(args) -> int:
    obs, completed, failed, _, _ = _observed_journeys(args)
    obs.tracer.assert_quiescent()  # every journey left a *closed* tree
    for root in obs.tracer.finished:
        print(obs.tracer.format_tree(root))
        print()
    print(
        f"{completed} journey(s) completed, {failed} failed "
        f"(construction {args.construction}); "
        f"{len(obs.tracer.finished)} closed traces, all quiescent"
    )
    return 0 if failed == 0 else 1


def _cmd_stats(args) -> int:
    from repro.crypto import accel

    obs, completed, failed, cluster, platform = _observed_journeys(args)
    print(obs.registry.render())
    print()
    pool = platform.pairing_pool
    print(
        format_crypto_tier(
            accel.describe(), pool.describe() if pool is not None else None
        )
    )
    if cluster is not None:
        print(format_self_healing(obs.registry))
        print(format_storage_engine(cluster.storage_stats()))
    print(
        f"\n{completed} journey(s) completed, {failed} failed "
        f"(construction {args.construction}); "
        f"{len(obs.events.serialized())} events, {obs.events.dropped} dropped"
    )
    return 0 if failed == 0 else 1


def _cmd_serve(args) -> int:
    """Boot a TCP smart server around a fresh platform and block.

    Prints the bound address on a line of its own (flushed) so scripts —
    and the serve-smoke CI job — can parse it, then serves until
    interrupted; the per-connection metrics summary prints on the way
    out.
    """
    import threading

    from repro.crypto import accel
    from repro.serve import TcpSmartServer

    substrates = {}
    if args.cluster_nodes is not None:
        from repro.cluster import StorageCluster
        from repro.sim.timing import SimClock

        substrates["storage"] = StorageCluster(
            num_nodes=args.cluster_nodes, clock=SimClock(),
            engine=args.storage_engine,
        )
    if args.crypto_tier:
        accel.set_tier(args.crypto_tier)
    platform = SocialPuzzlePlatform(
        params=get_params(args.params),
        pairing_workers=args.pairing_workers,
        **substrates,
    )
    server = TcpSmartServer(
        platform.engine,
        host=args.host,
        port=args.port,
        max_in_flight=args.max_in_flight,
        workers=args.workers,
    )
    server.start()
    host, port = server.address
    # The bound address stays the FIRST line (scripts and the serve-smoke
    # CI job grep for it); the crypto banner follows.
    print(f"listening on {host}:{port}", flush=True)
    pool = platform.pairing_pool
    print(
        format_crypto_tier(
            accel.describe(), pool.describe() if pool is not None else None
        ),
        flush=True,
    )
    try:
        threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
        print(server.metrics.summary())
    return 0


_COMMANDS = {
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "figure": _cmd_figure,
    "attacks": _cmd_attacks,
    "study": _cmd_study,
    "simulate": _cmd_simulate,
    "recommend": _cmd_recommend,
    "audit": _cmd_audit,
    "policy": _cmd_policy,
    "share": _cmd_share,
    "solve": _cmd_solve,
    "trace": _cmd_trace,
    "stats": _cmd_stats,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
