"""The reference engine: a plain dict, honest about its volatility.

This is exactly the storage every ``ClusterNode`` had before the
log-structured engine existed, factored behind :class:`BlobStore` so it
stays the always-tested reference implementation. Its durability story
is deliberately bleak: nothing is ever written through to media, so a
``crash_volatile()`` loses everything and ``reopen()``/``snapshot()``
recover nothing — which is precisely the amnesia the segment engine's
chaos tests contrast against.

Accounting uses the same per-record framing formula as the segment
engine's raw stream (:func:`repro.store.segment.entry_overhead`), so
"bytes a naive uncompressed dump would occupy" is directly comparable
between the two engines in benchmarks and ``repro stats``.
"""

from __future__ import annotations

from repro.store.interface import (
    BlobStore,
    CompactionResult,
    StoreStats,
    VersionedBlob,
    register_engine,
)
from repro.store.segment import entry_overhead

__all__ = ["DictBlobStore"]


class DictBlobStore(BlobStore):
    """In-memory key -> :class:`VersionedBlob` map; volatile by contract."""

    engine_name = "dict"

    def __init__(self):
        self._blobs: dict[str, VersionedBlob] = {}

    # -- the data path -----------------------------------------------------------

    def put(self, key: str, blob: VersionedBlob) -> None:
        self._blobs[key] = blob

    def get(self, key: str) -> VersionedBlob | None:
        return self._blobs.get(key)

    def discard(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self):
        return self._blobs.keys()

    # -- accounting --------------------------------------------------------------

    def object_count(self) -> int:
        return sum(1 for b in self._blobs.values() if not b.tombstone)

    def payload_bytes(self) -> int:
        return sum(len(b.data) for b in self._blobs.values() if b.data is not None)

    def _serialized_bytes(self) -> int:
        """What a naive one-record-per-blob dump would occupy."""
        return sum(
            entry_overhead(key) + (len(blob.data) if blob.data is not None else 0)
            for key, blob in self._blobs.items()
        )

    def stats(self) -> StoreStats:
        serialized = self._serialized_bytes()
        return StoreStats(
            engine=self.engine_name,
            segments=0,
            live_bytes=serialized,
            dead_bytes=0,
            physical_bytes=serialized,
            payload_bytes=self.payload_bytes(),
            objects=self.object_count(),
            tombstones=sum(1 for b in self._blobs.values() if b.tombstone),
            compactions=0,
            bytes_reclaimed=0,
        )

    # -- maintenance -------------------------------------------------------------

    def compact(
        self, purge: "frozenset[str] | set[str]" = frozenset(), min_garbage: float = 0.0
    ) -> CompactionResult:
        """No log to rewrite; purging a converged tombstone still drops
        the dict entry, so tombstone GC behaves identically on both
        engines."""
        del min_garbage
        purged = 0
        for key in sorted(purge):
            blob = self._blobs.get(key)
            if blob is not None and blob.tombstone:
                del self._blobs[key]
                purged += 1
        return CompactionResult(
            segments_rewritten=0, bytes_reclaimed=0, tombstones_purged=purged
        )

    # -- durability --------------------------------------------------------------

    def crash_volatile(self) -> None:
        self._blobs.clear()

    def reopen(self) -> int:
        return 0  # nothing was ever durable

    def snapshot(self) -> bytes:
        return b""  # the disk of a memory-only engine is empty

    def restore(self, image: bytes) -> int:
        if image:
            raise ValueError(
                "the dict engine writes nothing durable; a non-empty image "
                "belongs to another engine"
            )
        return 0


register_engine("dict", DictBlobStore)
