"""The log-structured segment engine: compressed, append-only, compactable.

Every mutation is an append to the active *tail* segment's raw record
stream (write-through: the stream **is** the durable media). When the
tail reaches its target size it is sealed — delta-encoded against its
basis record and deflated as one zlib block, with a parsed-ahead index
so a later open never inflates a block just to find its keys
(:mod:`repro.store.segment`).

Reads go through a volatile in-memory index map (key -> segment +
record entry) plus a small LRU of inflated blocks. Both are rebuilt by
:meth:`reopen` after a crash — recovery is a scan of the surviving
segments, replaying records in log order so the last writer wins,
purge markers un-index, and dead-byte accounting comes out exactly as
it was.

Compaction is the garbage collector: it seals the tail, rewrites every
live record into fresh segments, and drops superseded versions, purge
markers, and any tombstone the cluster has proven converged (the
``purge`` set — see ``StorageCluster.purgeable_tombstones``). Dead
bytes fall to zero and ``bytes_reclaimed`` grows by exactly the raw
bytes dropped. Counters surface through ``repro.obs`` as
``store.compactions`` / ``store.bytes_reclaimed`` (counted here) and
``store.segments`` / ``store.live_bytes`` / ``store.dead_bytes``
(gauges the cluster publishes).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.runtime import count
from repro.store.interface import (
    BlobStore,
    CompactionResult,
    StoreStats,
    VersionedBlob,
    register_engine,
)
from repro.store.segment import (
    FLAG_TOMBSTONE,
    RecordEntry,
    SealedSegment,
    SegmentWriter,
    decode_body,
    FLAG_PURGE,
)

__all__ = ["SegmentBlobStore", "SNAPSHOT_MAGIC"]

SNAPSHOT_MAGIC = b"SPIM"
_SNAPSHOT_FORMAT = 1

# Seal the tail once its raw stream reaches this size. Small enough
# that a node with a handful of puzzle blobs still exercises sealed
# segments; large enough that a segment usually groups many records.
DEFAULT_SEGMENT_TARGET = 32 * 1024

# Inflated sealed blocks kept hot (LRU).
DEFAULT_CACHE_SEGMENTS = 8


class SegmentBlobStore(BlobStore):
    """Append-only segments + in-memory index, per the module story."""

    engine_name = "segment"

    def __init__(
        self,
        segment_target_bytes: int = DEFAULT_SEGMENT_TARGET,
        cache_segments: int = DEFAULT_CACHE_SEGMENTS,
    ):
        if segment_target_bytes < 1:
            raise ValueError("segment_target_bytes must be positive")
        if cache_segments < 1:
            raise ValueError("cache_segments must be positive")
        self.segment_target_bytes = segment_target_bytes
        self.cache_segments = cache_segments
        self.compactions = 0
        self.bytes_reclaimed = 0
        self._next_segment_id = 0
        self._blank()

    def _blank(self) -> None:
        """Empty volatile + media state (fresh store or post-crash shell)."""
        self._sealed: "OrderedDict[int, SealedSegment]" = OrderedDict()
        self._tail = SegmentWriter(self._alloc_segment_id())
        self._index: dict[str, tuple[int, RecordEntry]] = {}
        self._dead: dict[int, int] = {}
        self._physical: dict[int, int] = {}
        self._cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._crashed_media: tuple[list[bytes], bytes] | None = None

    def _alloc_segment_id(self) -> int:
        segment_id = self._next_segment_id
        self._next_segment_id += 1
        return segment_id

    @property
    def is_open(self) -> bool:
        return self._crashed_media is None

    def _require_open(self) -> None:
        if self._crashed_media is not None:
            raise RuntimeError(
                "segment store is crashed; reopen() or restore() it first"
            )

    # -- the data path -----------------------------------------------------------

    def put(self, key: str, blob: VersionedBlob) -> None:
        self._require_open()
        flags = FLAG_TOMBSTONE if blob.data is None else 0
        self._supersede(key)
        entry = self._tail.append(key, blob.version, blob.data, flags)
        self._index[key] = (self._tail.segment_id, entry)
        count("store.put.records")
        self._maybe_seal()

    def get(self, key: str) -> VersionedBlob | None:
        self._require_open()
        location = self._index.get(key)
        if location is None:
            return None
        segment_id, entry = location
        if entry.tombstone:
            return VersionedBlob(entry.version, None)
        if segment_id == self._tail.segment_id:
            body = self._tail.read_body(entry)
        else:
            sealed = self._sealed[segment_id]
            body = decode_body(
                self._inflated(sealed), entry, (sealed.basis_offset, sealed.basis_length)
            )
        return VersionedBlob(entry.version, body)

    def discard(self, key: str) -> None:
        self._require_open()
        if key not in self._index:
            return
        self._supersede(key)
        del self._index[key]
        # The un-index must survive a crash: a purge marker rides the
        # log so the reopen scan drops the key again. The marker is
        # garbage the moment it lands; compaction sweeps it with the
        # rest.
        entry = self._tail.append(key, 0, None, FLAG_PURGE)
        self._bury(self._tail.segment_id, entry.stored_length)
        self._maybe_seal()

    def keys(self):
        self._require_open()
        return self._index.keys()

    # -- internals ---------------------------------------------------------------

    def _supersede(self, key: str) -> None:
        """The current record of ``key`` (if any) becomes dead bytes."""
        location = self._index.get(key)
        if location is not None:
            segment_id, entry = location
            self._bury(segment_id, entry.stored_length)

    def _bury(self, segment_id: int, stored_length: int) -> None:
        self._dead[segment_id] = self._dead.get(segment_id, 0) + stored_length

    def _maybe_seal(self) -> None:
        if self._tail.raw_length >= self.segment_target_bytes:
            self._seal_tail()

    def _seal_tail(self) -> None:
        if not self._tail.entries:
            return
        sealed = self._tail.seal()
        self._sealed[sealed.segment_id] = sealed
        self._physical[sealed.segment_id] = len(sealed.encode())
        self._tail = SegmentWriter(self._alloc_segment_id())
        count("store.segments.sealed")

    def flush(self) -> None:
        """Seal the active tail now (if it holds records), regardless of
        size — benchmarks and shutdown paths use this so *every* byte is
        in deflated form before measuring or imaging."""
        self._require_open()
        self._seal_tail()

    def _inflated(self, sealed: SealedSegment) -> bytes:
        raw = self._cache.get(sealed.segment_id)
        if raw is not None:
            self._cache.move_to_end(sealed.segment_id)
            return raw
        raw = sealed.inflate()
        self._cache[sealed.segment_id] = raw
        while len(self._cache) > self.cache_segments:
            self._cache.popitem(last=False)
        return raw

    # -- accounting --------------------------------------------------------------

    def _raw_total(self) -> int:
        return sum(s.raw_length for s in self._sealed.values()) + self._tail.raw_length

    def _dead_total(self) -> int:
        return sum(self._dead.values())

    def object_count(self) -> int:
        self._require_open()
        return sum(1 for _, e in self._index.values() if not e.tombstone)

    def payload_bytes(self) -> int:
        self._require_open()
        return sum(
            e.payload_length for _, e in self._index.values() if not e.tombstone
        )

    def segment_count(self) -> int:
        return len(self._sealed) + (1 if self._tail.entries else 0)

    def physical_bytes(self) -> int:
        """On-media bytes: sealed (deflated + index) plus the raw tail."""
        return sum(self._physical.values()) + self._tail.raw_length

    def stats(self) -> StoreStats:
        self._require_open()
        dead = self._dead_total()
        return StoreStats(
            engine=self.engine_name,
            segments=self.segment_count(),
            live_bytes=self._raw_total() - dead,
            dead_bytes=dead,
            physical_bytes=self.physical_bytes(),
            payload_bytes=self.payload_bytes(),
            objects=self.object_count(),
            tombstones=sum(1 for _, e in self._index.values() if e.tombstone),
            compactions=self.compactions,
            bytes_reclaimed=self.bytes_reclaimed,
        )

    # -- maintenance -------------------------------------------------------------

    def compact(
        self, purge: "frozenset[str] | set[str]" = frozenset(), min_garbage: float = 0.0
    ) -> CompactionResult:
        """Rewrite the live set into fresh segments; see the module story."""
        self._require_open()
        purge_hits = sorted(
            key
            for key in purge
            if key in self._index and self._index[key][1].tombstone
        )
        dead = self._dead_total()
        total = self._raw_total()
        garbage_fraction = (dead / total) if total else 0.0
        if not purge_hits and (dead == 0 or garbage_fraction < min_garbage):
            return CompactionResult(0, 0, 0)
        live: list[tuple[str, VersionedBlob]] = [
            (key, self.get(key)) for key in sorted(self._index) if key not in purge_hits
        ]
        segments_rewritten = self.segment_count()
        before_raw = total
        saved = (
            self._sealed,
            self._tail,
            self._index,
            self._dead,
            self._physical,
            self._cache,
            self._next_segment_id,
        )
        self._sealed = OrderedDict()
        self._tail = SegmentWriter(self._alloc_segment_id())
        self._index = {}
        self._dead = {}
        self._physical = {}
        self._cache = OrderedDict()
        for key, blob in live:
            self.put(key, blob)
        self._dead = {}  # rewriting live records buries nothing
        reclaimed = before_raw - self._raw_total()
        if reclaimed <= 0 and not purge_hits:
            # Re-delta-ing against a fresh basis can lose more than the
            # garbage was worth. A rewrite that must not happen for GC
            # correctness and does not shrink the log is abandoned.
            (
                self._sealed,
                self._tail,
                self._index,
                self._dead,
                self._physical,
                self._cache,
                self._next_segment_id,
            ) = saved
            return CompactionResult(0, 0, 0)
        self.compactions += 1
        self.bytes_reclaimed += max(0, reclaimed)
        count("store.compactions")
        count("store.bytes_reclaimed", max(0, reclaimed))
        count("store.tombstones_purged", len(purge_hits))
        return CompactionResult(
            segments_rewritten=segments_rewritten,
            bytes_reclaimed=reclaimed,
            tombstones_purged=len(purge_hits),
        )

    # -- durability --------------------------------------------------------------

    def crash_volatile(self) -> None:
        """Power loss: only the encoded media survives. The round trip
        through ``encode()`` is deliberate — recovery must work from the
        bytes alone, never from surviving Python objects."""
        media = (
            [sealed.encode() for sealed in self._sealed.values()],
            bytes(self._tail.raw),
        )
        self._blank()
        self._crashed_media = media

    def reopen(self) -> int:
        """Rebuild the index by scanning surviving media; idempotent."""
        if self._crashed_media is None:
            return len(self._index)
        sealed_images, tail_raw = self._crashed_media
        self._crashed_media = None
        self._sealed = OrderedDict()
        for image in sealed_images:
            segment_id = self._alloc_segment_id()
            sealed = SealedSegment.decode(image, segment_id)
            self._sealed[segment_id] = sealed
            self._physical[segment_id] = len(image)
        self._tail = SegmentWriter.from_raw(self._alloc_segment_id(), tail_raw)
        self._replay_index()
        count("store.reopens")
        return len(self._index)

    def _replay_index(self) -> None:
        """Log-order replay: last writer wins, purge markers un-index."""
        self._index = {}
        self._dead = {}
        ordered: list[tuple[int, tuple[RecordEntry, ...]]] = [
            (s.segment_id, s.entries) for s in self._sealed.values()
        ]
        ordered.append((self._tail.segment_id, tuple(self._tail.entries)))
        for segment_id, entries in ordered:
            for entry in entries:
                if entry.purge:
                    self._supersede(entry.key)
                    self._index.pop(entry.key, None)
                    self._bury(segment_id, entry.stored_length)
                else:
                    self._supersede(entry.key)
                    self._index[entry.key] = (segment_id, entry)

    def snapshot(self) -> bytes:
        """Image the durable media (works crashed or open)."""
        if self._crashed_media is not None:
            sealed_images, tail_raw = self._crashed_media
        else:
            sealed_images = [s.encode() for s in self._sealed.values()]
            tail_raw = bytes(self._tail.raw)
        out = bytearray()
        out += SNAPSHOT_MAGIC
        out.append(_SNAPSHOT_FORMAT)
        out += len(sealed_images).to_bytes(4, "big")
        for image in sealed_images:
            out += len(image).to_bytes(4, "big")
            out += image
        out += len(tail_raw).to_bytes(4, "big")
        out += tail_raw
        return bytes(out)

    def restore(self, image: bytes) -> int:
        """Replace contents from a :meth:`snapshot` image."""
        if image[:4] != SNAPSHOT_MAGIC:
            raise ValueError("bad snapshot magic %r" % image[:4])
        if image[4] != _SNAPSHOT_FORMAT:
            raise ValueError("unknown snapshot format %d" % image[4])
        position = 5
        count_segments = int.from_bytes(image[position : position + 4], "big")
        position += 4
        sealed_images: list[bytes] = []
        for _ in range(count_segments):
            length = int.from_bytes(image[position : position + 4], "big")
            position += 4
            sealed_images.append(image[position : position + length])
            position += length
        tail_length = int.from_bytes(image[position : position + 4], "big")
        position += 4
        tail_raw = image[position : position + tail_length]
        if len(tail_raw) != tail_length:
            raise ValueError("truncated snapshot image")
        self._blank()
        self._crashed_media = (sealed_images, tail_raw)
        return self.reopen()


register_engine("segment", SegmentBlobStore)
