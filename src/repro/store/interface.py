"""The ``BlobStore`` contract: what a cluster node asks of its engine.

:class:`~repro.cluster.node.ClusterNode` owns replica *semantics* —
version ordering, hints, audits, up/down state. The engine underneath
owns replica *bytes*. This interface is the seam between the two, so
the dict-backed reference engine and the log-structured segment engine
are interchangeable per node (and the chaos harness can run the same
journey against both).

The durability model is explicit and is what the amnesia tests probe:

* ``crash_volatile()`` is a power loss — everything held in volatile
  memory (indexes, caches, the dict engine's entire map) is gone;
  whatever the engine wrote through to durable media survives.
* ``reopen()`` is the restart path: rebuild the in-memory index by
  scanning surviving media. The dict engine recovers nothing — that is
  its documented contract, not a bug.
* ``snapshot()`` images the durable media (NOT the RAM) to bytes;
  ``restore(image)`` replaces the store's contents from such an image.
  A dict engine's disk is empty, so its snapshot is too.

Engines register in :data:`ENGINES`; :func:`make_store` is the factory
every node-building path (cluster, platform, CLI ``--storage-engine``)
goes through.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "VersionedBlob",
    "BlobStore",
    "StoreStats",
    "CompactionResult",
    "ENGINES",
    "make_store",
    "register_engine",
]


@dataclass(frozen=True)
class VersionedBlob:
    """One replica: coordinator-stamped version + payload.

    ``data is None`` marks a tombstone — the versioned record of a
    delete, kept so a replica that missed the delete cannot resurrect
    the object during read repair. Defined here (the lowest storage
    layer) and re-exported by :mod:`repro.cluster.node`, its historical
    home, so both the engines and the cluster can speak it without an
    import cycle.
    """

    version: int
    data: bytes | None

    @property
    def tombstone(self) -> bool:
        return self.data is None


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time accounting for one engine instance.

    ``live_bytes``/``dead_bytes`` are raw record-stream bytes (framing
    included); ``physical_bytes`` is what the durable media actually
    occupies (deflated, for the segment engine); ``payload_bytes`` is
    the logical sum of live blob payloads.
    """

    engine: str
    segments: int
    live_bytes: int
    dead_bytes: int
    physical_bytes: int
    payload_bytes: int
    objects: int
    tombstones: int
    compactions: int
    bytes_reclaimed: int


@dataclass(frozen=True)
class CompactionResult:
    """What one compaction round did."""

    segments_rewritten: int
    bytes_reclaimed: int
    tombstones_purged: int

    def __bool__(self) -> bool:
        return bool(
            self.segments_rewritten or self.bytes_reclaimed or self.tombstones_purged
        )


class BlobStore(ABC):
    """Key -> :class:`~repro.cluster.node.VersionedBlob` storage engine."""

    #: The registry name of this engine ("dict", "segment", ...).
    engine_name: str = "?"

    @property
    def is_open(self) -> bool:
        """False between ``crash_volatile()`` and ``reopen()``/``restore()``
        for engines that refuse reads while crashed. You cannot read a
        powered-off disk; cluster introspection skips closed engines."""
        return True

    # -- the data path -----------------------------------------------------------

    @abstractmethod
    def put(self, key: str, blob: VersionedBlob) -> None:
        """Unconditionally record ``blob`` as the replica for ``key``.

        Ordering policy (newer-version-wins, forced repair) lives in the
        node; by the time an engine sees a put it is final.
        """

    @abstractmethod
    def get(self, key: str) -> VersionedBlob | None:
        """The current replica for ``key``, or ``None``."""

    @abstractmethod
    def discard(self, key: str) -> None:
        """Physically un-index ``key`` (handoff completion, rebalance) —
        not a logical delete, which is a tombstone written via
        :meth:`put`. Must be durable: a discarded key stays gone across
        ``crash_volatile()`` + ``reopen()``."""

    @abstractmethod
    def keys(self) -> Iterable[str]:
        """Every indexed key, tombstones included."""

    # -- accounting --------------------------------------------------------------

    @abstractmethod
    def object_count(self) -> int:
        """Live (non-tombstone) keys."""

    @abstractmethod
    def payload_bytes(self) -> int:
        """Logical bytes of live payloads."""

    @abstractmethod
    def stats(self) -> StoreStats:
        """Engine counters for ``repro.obs`` / ``repro stats``."""

    # -- maintenance -------------------------------------------------------------

    @abstractmethod
    def compact(
        self, purge: "frozenset[str] | set[str]" = frozenset(), min_garbage: float = 0.0
    ) -> CompactionResult:
        """Rewrite live records, dropping dead bytes and the tombstones
        named in ``purge`` (keys whose delete the cluster has proven
        fully converged — the quorum watermark). ``min_garbage`` skips
        the rewrite when the dead fraction is below it and nothing is
        purgeable. The reference engine has nothing to rewrite and
        returns an empty result (purged tombstones excepted)."""

    # -- durability --------------------------------------------------------------

    @abstractmethod
    def crash_volatile(self) -> None:
        """Power loss: drop all volatile state, keep durable media."""

    @abstractmethod
    def reopen(self) -> int:
        """Rebuild the in-memory index from surviving media; returns the
        number of keys recovered."""

    @abstractmethod
    def snapshot(self) -> bytes:
        """Serialize the durable media (what a disk image would hold)."""

    @abstractmethod
    def restore(self, image: bytes) -> int:
        """Replace contents from a :meth:`snapshot` image; returns the
        number of keys recovered."""


#: name -> zero-argument-callable engine factory registry.
ENGINES: dict[str, Callable[[], BlobStore]] = {}


def register_engine(name: str, factory: Callable[[], BlobStore]) -> None:
    ENGINES[name] = factory


def make_store(engine: str = "dict") -> BlobStore:
    """Build a fresh engine by registry name.

    >>> make_store("dict").engine_name
    'dict'
    >>> make_store("segment").engine_name
    'segment'
    >>> make_store("papyrus")
    Traceback (most recent call last):
      ...
    ValueError: unknown storage engine 'papyrus' (have: dict, segment)
    """
    try:
        factory = ENGINES[engine]
    except KeyError:
        raise ValueError(
            "unknown storage engine %r (have: %s)"
            % (engine, ", ".join(sorted(ENGINES)))
        ) from None
    return factory()
