"""``repro.store`` — pluggable blob storage engines for the puzzle cluster.

The cluster's replica semantics (versions, quorums, hints, audits) live
in :mod:`repro.cluster`; the bytes live here, behind the
:class:`BlobStore` seam. Two engines register at import time:

* ``dict`` — the in-memory reference engine every node used before
  this package existed. Volatile by contract.
* ``segment`` — the log-structured engine: append-only segments of
  group-compressed records, compaction-as-GC, and real
  ``snapshot()``/``restore()`` durability.

``make_store(name)`` is the only construction path the cluster,
platform, and CLI use.
"""

from repro.store import dict_engine as _dict_engine  # registers "dict"
from repro.store import engine as _segment_engine  # registers "segment"
from repro.store.dict_engine import DictBlobStore
from repro.store.engine import SegmentBlobStore
from repro.store.groupcompress import apply_delta, basis_index, make_delta
from repro.store.interface import (
    ENGINES,
    BlobStore,
    CompactionResult,
    StoreStats,
    VersionedBlob,
    make_store,
    register_engine,
)
from repro.store.segment import (
    FLAG_DELTA,
    FLAG_PURGE,
    FLAG_TOMBSTONE,
    RecordEntry,
    SealedSegment,
    SegmentFormatError,
    SegmentWriter,
    entry_overhead,
    scan_stream,
)

del _dict_engine, _segment_engine

__all__ = [
    "BlobStore",
    "CompactionResult",
    "DictBlobStore",
    "ENGINES",
    "FLAG_DELTA",
    "FLAG_PURGE",
    "FLAG_TOMBSTONE",
    "RecordEntry",
    "SealedSegment",
    "SegmentBlobStore",
    "SegmentFormatError",
    "SegmentWriter",
    "StoreStats",
    "VersionedBlob",
    "apply_delta",
    "basis_index",
    "entry_overhead",
    "make_delta",
    "make_store",
    "register_engine",
    "scan_stream",
]
