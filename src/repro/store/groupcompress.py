"""Group-compression delta codec: copy/insert instructions vs a basis.

The segment store (:mod:`repro.store.engine`) batches many blobs into
one *segment* and compresses them as a group, the way bzrlib's
``groupcompress.py`` / ``knit.py`` versioned files do: the first record
of a segment is the **basis**, stored literally; every later record is
encoded as a stream of *copy* instructions (ranges of the basis) and
*insert* instructions (bytes the basis lacks), and the whole encoded
block is zlib-deflated once at seal time.

For this repository's workload — many near-identical CP-ABE ciphertext
blobs whose access-tree framing, attribute labels and key schedules
repeat verbatim while only the random group elements differ — the delta
pass collapses the repeated structure to a handful of copy ops before
zlib ever runs, and zlib then squeezes what little literal residue is
left alongside the other records in the block.

The matcher is deliberately simple and deterministic: the basis is
indexed by fixed-width seeds at every offset, each target position
greedily extends the longest seed hit, and matches shorter than
``_MIN_COPY`` are not worth a copy instruction's framing. No wall
clocks, no randomness — identical inputs always produce identical
deltas (snapshots must be byte-stable).

Wire format of a delta body (all integers unsigned big-endian)::

    instruction*  where
      0x01 | u32 basis-offset | u32 length          copy
      0x00 | u32 length | bytes                     insert

``make_delta`` refuses to "win" dishonestly: if the encoded delta is no
smaller than the raw text it returns ``None`` and the caller stores the
record literally — a segment never pays for a delta that did not help.
"""

from __future__ import annotations

import struct

__all__ = ["make_delta", "apply_delta", "basis_index"]

# Seed width for the basis index: long enough that hits are usually
# real shared runs, short enough to catch repeated framing fields.
_SEED = 8

# A copy instruction costs 9 bytes of framing; shorter matches encode
# smaller as literal inserts.
_MIN_COPY = 12

_COPY = 0x01
_INSERT = 0x00

_U32 = struct.Struct(">I")


def _basis_index(basis: bytes) -> dict[bytes, list[int]]:
    """Every offset of every ``_SEED``-wide window of ``basis``.

    Offsets are appended in order, so matching prefers the earliest
    (deterministic) occurrence.
    """
    index: dict[bytes, list[int]] = {}
    for offset in range(len(basis) - _SEED + 1):
        index.setdefault(basis[offset : offset + _SEED], []).append(offset)
    return index


def _extend(basis: bytes, b_at: int, target: bytes, t_at: int) -> int:
    """Length of the common run of ``basis[b_at:]`` and ``target[t_at:]``."""
    length = 0
    b_len, t_len = len(basis), len(target)
    while (
        b_at + length < b_len
        and t_at + length < t_len
        and basis[b_at + length] == target[t_at + length]
    ):
        length += 1
    return length


def make_delta(
    basis: bytes,
    target: bytes,
    index: dict[bytes, list[int]] | None = None,
) -> bytes | None:
    """Encode ``target`` as copy/insert instructions against ``basis``.

    Returns ``None`` when the delta would not be smaller than the raw
    target (the caller then stores a literal). Pass a prebuilt ``index``
    (:func:`basis_index` of the same basis) to amortize indexing across
    the many records of one segment.
    """
    if index is None:
        index = _basis_index(basis)
    out = bytearray()
    literal = bytearray()
    position = 0
    t_len = len(target)

    def flush_literal() -> None:
        if literal:
            out.append(_INSERT)
            out.extend(_U32.pack(len(literal)))
            out.extend(literal)
            literal.clear()

    while position < t_len:
        best_len = 0
        best_off = 0
        if position + _SEED <= t_len:
            for b_off in index.get(target[position : position + _SEED], ()):
                run = _SEED + _extend(
                    basis, b_off + _SEED, target, position + _SEED
                )
                if run > best_len:
                    best_len, best_off = run, b_off
        if best_len >= _MIN_COPY:
            flush_literal()
            out.append(_COPY)
            out += _U32.pack(best_off)
            out += _U32.pack(best_len)
            position += best_len
        else:
            literal.append(target[position])
            position += 1
    flush_literal()
    if len(out) >= t_len:
        return None
    return bytes(out)


def basis_index(basis: bytes) -> dict[bytes, list[int]]:
    """Prebuild the seed index of ``basis`` for repeated :func:`make_delta`
    calls within one segment."""
    return _basis_index(basis)


def apply_delta(basis: bytes, delta: bytes) -> bytes:
    """Reconstruct the target a :func:`make_delta` delta describes."""
    out = bytearray()
    position = 0
    end = len(delta)
    while position < end:
        op = delta[position]
        position += 1
        if op == _COPY:
            if position + 8 > end:
                raise ValueError("truncated copy instruction")
            offset = _U32.unpack_from(delta, position)[0]
            length = _U32.unpack_from(delta, position + 4)[0]
            position += 8
            if offset + length > len(basis):
                raise ValueError(
                    "copy [%d:%d] overruns a %d-byte basis"
                    % (offset, offset + length, len(basis))
                )
            out += basis[offset : offset + length]
        elif op == _INSERT:
            if position + 4 > end:
                raise ValueError("truncated insert instruction")
            length = _U32.unpack_from(delta, position)[0]
            position += 4
            if position + length > end:
                raise ValueError("truncated insert payload")
            out += delta[position : position + length]
            position += length
        else:
            raise ValueError("unknown delta instruction 0x%02x" % op)
    return bytes(out)
