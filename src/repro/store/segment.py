"""Append-only segment encoding for the log-structured blob store.

A *segment* is one group-compressed unit of the log. While it is the
active tail it is a raw, self-framing record stream (what a real engine
would have on disk after write-through appends); when it reaches its
target size the engine *seals* it — the whole stream is deflated with
zlib and prefixed with a parsed-ahead index, so re-opening a store can
rebuild its in-memory key map without inflating a single block.

Record stream framing (all integers unsigned big-endian)::

    u8  flags        bit0 TOMBSTONE   logical delete (body empty)
                     bit1 DELTA       body is a groupcompress delta
                                      against the segment basis
                     bit2 PURGE       physical un-index marker (body
                                      empty; see ClusterNode.discard)
    u64 version      coordinator-stamped blob version
    u16 key length   | key (utf-8)
    u32 payload length   logical bytes (0 for tombstone/purge)
    u32 body length      stored bytes (delta-encoded records differ)
    body

Sealed segment layout::

    b"SPSG" | u8 format | u32 entries | index entries... |
    u32 basis offset | u32 basis length |
    u32 raw length | u32 deflated length | deflated record stream

    index entry: u8 flags | u64 version | u16 key length | key |
                 u32 offset | u32 payload length | u32 body length

The **basis** is the first value record appended to the segment, always
stored literally; every later value record is delta-encoded against it
when the delta is smaller (:mod:`repro.store.groupcompress`). Offsets
in the index address record *bodies* within the raw stream.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.store.groupcompress import apply_delta, basis_index, make_delta

__all__ = [
    "FLAG_TOMBSTONE",
    "FLAG_DELTA",
    "FLAG_PURGE",
    "RecordEntry",
    "SegmentWriter",
    "SealedSegment",
    "SegmentFormatError",
    "entry_overhead",
    "decode_body",
    "scan_stream",
]

FLAG_TOMBSTONE = 0x01
FLAG_DELTA = 0x02
FLAG_PURGE = 0x04

_MAGIC = b"SPSG"
_FORMAT = 1

_HEAD = struct.Struct(">BQH")  # flags, version, key length
_LENS = struct.Struct(">II")  # payload length, body length
_U32 = struct.Struct(">I")


class SegmentFormatError(ValueError):
    """A sealed segment or record stream failed to parse."""


def entry_overhead(key: str) -> int:
    """Framing bytes one record of ``key`` costs beyond its body."""
    return _HEAD.size + len(key.encode("utf-8")) + _LENS.size


@dataclass(frozen=True)
class RecordEntry:
    """One record's index row: where its body lives in the raw stream."""

    key: str
    version: int
    flags: int
    offset: int
    payload_length: int
    body_length: int

    @property
    def tombstone(self) -> bool:
        return bool(self.flags & FLAG_TOMBSTONE)

    @property
    def purge(self) -> bool:
        return bool(self.flags & FLAG_PURGE)

    @property
    def stored_length(self) -> int:
        """Raw-stream bytes this record occupies (framing + body)."""
        return entry_overhead(self.key) + self.body_length


class SegmentWriter:
    """The active tail: an append-only raw record stream plus its index.

    The writer owns the segment's delta basis (the first value record,
    kept literal) and chooses literal-vs-delta per append. ``raw``
    is the durable media image — everything needed to rebuild the
    index survives in it, which is what :meth:`scan` proves.
    """

    def __init__(self, segment_id: int):
        self.segment_id = segment_id
        self.raw = bytearray()
        self.entries: list[RecordEntry] = []
        self._basis: bytes | None = None
        self._basis_offset = 0
        self._basis_index: dict[bytes, list[int]] | None = None

    def __len__(self) -> int:
        return len(self.raw)

    @property
    def raw_length(self) -> int:
        return len(self.raw)

    @classmethod
    def from_raw(cls, segment_id: int, raw: bytes) -> "SegmentWriter":
        """Recover a tail writer from its surviving raw stream: rescan
        the records, re-establish the basis, and keep appending."""
        writer = cls(segment_id)
        writer.raw = bytearray(raw)
        writer.entries = scan_stream(bytes(raw))
        for entry in writer.entries:
            if entry.flags & (FLAG_TOMBSTONE | FLAG_PURGE):
                continue
            if entry.flags & FLAG_DELTA:
                continue  # a delta can never precede the basis
            writer._basis = bytes(raw[entry.offset : entry.offset + entry.body_length])
            writer._basis_offset = entry.offset
            writer._basis_index = basis_index(writer._basis)
            break
        return writer

    def append(self, key: str, version: int, payload: bytes | None, flags: int = 0) -> RecordEntry:
        """Append one record; returns its index entry.

        ``payload is None`` with ``FLAG_TOMBSTONE`` (or ``FLAG_PURGE``)
        writes a marker record. Value payloads are delta-compressed
        against the segment basis when that is a win.
        """
        body = b"" if payload is None else bytes(payload)
        payload_length = len(body)
        is_basis = False
        if payload is not None and self._basis is None:
            self._basis = body
            self._basis_index = basis_index(body)
            is_basis = True
        elif payload is not None and self._basis:
            delta = make_delta(self._basis, body, self._basis_index)
            if delta is not None:
                body = delta
                flags |= FLAG_DELTA
        key_bytes = key.encode("utf-8")
        offset = len(self.raw) + _HEAD.size + len(key_bytes) + _LENS.size
        self.raw += _HEAD.pack(flags, version, len(key_bytes))
        self.raw += key_bytes
        self.raw += _LENS.pack(payload_length, len(body))
        self.raw += body
        if is_basis:
            self._basis_offset = offset
        entry = RecordEntry(
            key=key,
            version=version,
            flags=flags,
            offset=offset,
            payload_length=payload_length,
            body_length=len(body),
        )
        self.entries.append(entry)
        return entry

    def read_body(self, entry: RecordEntry) -> bytes:
        """The decoded payload of ``entry`` (delta applied if needed)."""
        return decode_body(bytes(self.raw), entry, self._basis_span())

    def _basis_span(self) -> tuple[int, int]:
        if self._basis is None:
            return (0, 0)
        return (self._basis_offset, len(self._basis))

    def seal(self) -> "SealedSegment":
        """Deflate the stream and freeze it with its parsed-ahead index."""
        raw = bytes(self.raw)
        deflated = zlib.compress(raw, 6)
        basis_offset, basis_length = self._basis_span()
        return SealedSegment(
            segment_id=self.segment_id,
            entries=tuple(self.entries),
            basis_offset=basis_offset,
            basis_length=basis_length,
            raw_length=len(raw),
            deflated=deflated,
        )


@dataclass(frozen=True)
class SealedSegment:
    """An immutable, deflated segment plus its index."""

    segment_id: int
    entries: tuple[RecordEntry, ...]
    basis_offset: int
    basis_length: int
    raw_length: int
    deflated: bytes

    @property
    def physical_length(self) -> int:
        """On-media bytes: the deflated stream plus the stored index."""
        return len(self.encode())

    def inflate(self) -> bytes:
        raw = zlib.decompress(self.deflated)
        if len(raw) != self.raw_length:
            raise SegmentFormatError(
                "segment %d inflated to %d bytes, header says %d"
                % (self.segment_id, len(raw), self.raw_length)
            )
        return raw

    def encode(self) -> bytes:
        """The durable byte form: magic, index, then the deflated stream."""
        out = bytearray()
        out += _MAGIC
        out.append(_FORMAT)
        out += _U32.pack(len(self.entries))
        for entry in self.entries:
            key_bytes = entry.key.encode("utf-8")
            out += _HEAD.pack(entry.flags, entry.version, len(key_bytes))
            out += key_bytes
            out += _U32.pack(entry.offset)
            out += _LENS.pack(entry.payload_length, entry.body_length)
        out += _U32.pack(self.basis_offset)
        out += _U32.pack(self.basis_length)
        out += _U32.pack(self.raw_length)
        out += _U32.pack(len(self.deflated))
        out += self.deflated
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes, segment_id: int) -> "SealedSegment":
        """Parse the durable form — the index alone, no inflation."""
        if data[:4] != _MAGIC:
            raise SegmentFormatError("bad segment magic %r" % data[:4])
        if data[4] != _FORMAT:
            raise SegmentFormatError("unknown segment format %d" % data[4])
        position = 5
        try:
            (count,) = _U32.unpack_from(data, position)
            position += 4
            entries = []
            for _ in range(count):
                flags, version, key_length = _HEAD.unpack_from(data, position)
                position += _HEAD.size
                key = data[position : position + key_length].decode("utf-8")
                position += key_length
                (offset,) = _U32.unpack_from(data, position)
                position += 4
                payload_length, body_length = _LENS.unpack_from(data, position)
                position += _LENS.size
                entries.append(
                    RecordEntry(key, version, flags, offset, payload_length, body_length)
                )
            (basis_offset,) = _U32.unpack_from(data, position)
            (basis_length,) = _U32.unpack_from(data, position + 4)
            (raw_length,) = _U32.unpack_from(data, position + 8)
            (deflated_length,) = _U32.unpack_from(data, position + 12)
            position += 16
            deflated = data[position : position + deflated_length]
        except struct.error as exc:
            raise SegmentFormatError("truncated segment header") from exc
        if len(deflated) != deflated_length:
            raise SegmentFormatError("truncated segment payload")
        return cls(
            segment_id=segment_id,
            entries=tuple(entries),
            basis_offset=basis_offset,
            basis_length=basis_length,
            raw_length=raw_length,
            deflated=deflated,
        )


def decode_body(raw: bytes, entry: RecordEntry, basis_span: tuple[int, int]) -> bytes:
    """Decode one record body out of a raw stream."""
    body = raw[entry.offset : entry.offset + entry.body_length]
    if len(body) != entry.body_length:
        raise SegmentFormatError(
            "record %r body truncated (%d of %d bytes)"
            % (entry.key, len(body), entry.body_length)
        )
    if entry.flags & FLAG_DELTA:
        basis_offset, basis_length = basis_span
        basis = raw[basis_offset : basis_offset + basis_length]
        return apply_delta(basis, body)
    return bytes(body)


def scan_stream(raw: bytes) -> list[RecordEntry]:
    """Rebuild the index of a raw record stream (tail recovery path)."""
    entries: list[RecordEntry] = []
    position = 0
    end = len(raw)
    while position < end:
        try:
            flags, version, key_length = _HEAD.unpack_from(raw, position)
        except struct.error as exc:
            raise SegmentFormatError("truncated record header") from exc
        position += _HEAD.size
        key = raw[position : position + key_length].decode("utf-8")
        position += key_length
        try:
            payload_length, body_length = _LENS.unpack_from(raw, position)
        except struct.error as exc:
            raise SegmentFormatError("truncated record lengths") from exc
        position += _LENS.size
        if position + body_length > end:
            raise SegmentFormatError("truncated record body for %r" % key)
        entries.append(
            RecordEntry(key, version, flags, position, payload_length, body_length)
        )
        position += body_length
    return entries
