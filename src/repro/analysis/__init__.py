"""Executable security analysis of the paper's section VI scenarios."""

from repro.analysis.relevance import (
    PolicyRelevance,
    RelevanceConfig,
    RelevanceReport,
    run_relevance_experiment,
)
from repro.analysis.scenarios import format_outcomes, run_standard_scenarios
from repro.analysis.usability import (
    ClassResult,
    ParticipantClass,
    StudyConfig,
    UserStudyReport,
    simulate_user_study,
)
from repro.analysis.security import (
    AttackOutcome,
    collusion_attack_c1,
    dh_object_tampering_c1,
    malicious_sp_feedback_collusion_c1,
    semi_honest_sp_attack_c1,
    sp_dictionary_attack_c1,
    sp_dictionary_attack_c2,
    sp_url_tampering_c1,
)

__all__ = [
    "AttackOutcome",
    "run_standard_scenarios",
    "format_outcomes",
    "run_relevance_experiment",
    "RelevanceConfig",
    "RelevanceReport",
    "PolicyRelevance",
    "simulate_user_study",
    "StudyConfig",
    "UserStudyReport",
    "ClassResult",
    "ParticipantClass",
    "semi_honest_sp_attack_c1",
    "sp_dictionary_attack_c1",
    "sp_dictionary_attack_c2",
    "collusion_attack_c1",
    "malicious_sp_feedback_collusion_c1",
    "sp_url_tampering_c1",
    "dh_object_tampering_c1",
]
