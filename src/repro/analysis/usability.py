"""Simulated usability study (paper section VIII, "Usability Aspects").

The paper plans an on-campus user study following ISO 9241-11, which
frames usability as **effectiveness** (can users complete the task?),
**efficiency** (at what cost in time?) and **satisfaction**. No such
study can run inside a reproduction, so this module builds the closest
synthetic equivalent: a population of simulated participants with
class-dependent answer recall (attendee / invitee-who-missed / stranger),
typo rates, and per-question answering time, run against the *real*
Construction 1 protocol.

The output is the table such a study would report: per audience class,
task success rate, mean completion time (modelled protocol delay plus
typing time), and a satisfaction proxy (success within the first
``max_attempts`` tries). Sharers can use it to pick thresholds: raising k
trades stranger exclusion against attendee failure rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.construction1 import PuzzleServiceC1, ReceiverC1, SharerC1
from repro.core.context import Context, QAPair
from repro.core.errors import AccessDeniedError
from repro.osn.storage import StorageHost

__all__ = [
    "ParticipantClass",
    "StudyConfig",
    "ClassResult",
    "UserStudyReport",
    "simulate_user_study",
]

SECONDS_PER_ANSWER = 8.0  # typing + thinking time per displayed question


@dataclass(frozen=True)
class ParticipantClass:
    """One audience class of the paper's system model."""

    name: str
    recall_probability: float  # chance of knowing each answer
    typo_probability: float  # chance a known answer is mistyped beyond repair

    def __post_init__(self) -> None:
        if not 0 <= self.recall_probability <= 1:
            raise ValueError("recall_probability must be in [0, 1]")
        if not 0 <= self.typo_probability <= 1:
            raise ValueError("typo_probability must be in [0, 1]")


ATTENDEE = ParticipantClass("attendee", recall_probability=0.95, typo_probability=0.03)
INVITEE = ParticipantClass("invitee-missed", recall_probability=0.45, typo_probability=0.05)
STRANGER = ParticipantClass("stranger", recall_probability=0.02, typo_probability=0.05)


@dataclass(frozen=True)
class StudyConfig:
    """Study parameters."""

    participants_per_class: int = 30
    num_questions: int = 5
    threshold: int = 2
    max_attempts: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.participants_per_class < 1:
            raise ValueError("need at least one participant per class")
        if not 0 < self.threshold <= self.num_questions:
            raise ValueError("threshold out of range")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class ClassResult:
    """ISO 9241-11 axes for one audience class."""

    participant_class: str
    participants: int
    success_rate: float  # effectiveness
    mean_time_s: float  # efficiency (successful tasks only; nan-free: 0 if none)
    first_try_rate: float  # satisfaction proxy
    mean_attempts: float


@dataclass(frozen=True)
class UserStudyReport:
    results: tuple[ClassResult, ...]

    def by_class(self, name: str) -> ClassResult:
        for result in self.results:
            if result.participant_class == name:
                return result
        raise KeyError(name)


def _participant_knowledge(
    context: Context, participant: ParticipantClass, rng: random.Random
) -> Context | None:
    """What this participant would type, with recall and typo noise."""
    pairs = []
    for pair in context.pairs:
        if rng.random() >= participant.recall_probability:
            continue
        if rng.random() < participant.typo_probability:
            pairs.append(QAPair(pair.question, pair.answer + "x"))  # hopeless typo
        else:
            pairs.append(pair)
    return Context(pairs) if pairs else None


def simulate_user_study(
    config: StudyConfig = StudyConfig(),
    classes: tuple[ParticipantClass, ...] = (ATTENDEE, INVITEE, STRANGER),
) -> UserStudyReport:
    """Run the synthetic study against the real Construction 1 stack."""
    rng = random.Random(config.seed)

    context = Context(
        QAPair(
            "study question %d: what happened at the event?" % i,
            "ground truth answer %d %d" % (config.seed, i),
        )
        for i in range(config.num_questions)
    )
    storage = StorageHost()
    sharer = SharerC1("study-sharer", storage)
    service = PuzzleServiceC1()
    obj = b"study payload"
    puzzle_id = service.store_puzzle(
        sharer.upload(obj, context, k=config.threshold, n=config.num_questions)
    )

    results = []
    for participant_class in classes:
        successes = 0
        first_try = 0
        total_time = 0.0
        total_attempts = 0
        for index in range(config.participants_per_class):
            receiver = ReceiverC1(
                "participant-%s-%d" % (participant_class.name, index), storage
            )
            knowledge = _participant_knowledge(context, participant_class, rng)
            solved = False
            attempts_used = 0
            elapsed = 0.0
            for attempt in range(config.max_attempts):
                attempts_used += 1
                displayed = service.display_puzzle(
                    puzzle_id, rng=random.Random(rng.randrange(2**31))
                )
                elapsed += SECONDS_PER_ANSWER * len(displayed.questions)
                if knowledge is None:
                    continue
                answers = receiver.answer_puzzle(displayed, knowledge)
                try:
                    release = service.verify(answers)
                    plaintext = receiver.access(release, displayed, knowledge)
                except AccessDeniedError:
                    continue
                if plaintext == obj:
                    solved = True
                    break
            total_attempts += attempts_used
            if solved:
                successes += 1
                total_time += elapsed
                if attempts_used == 1:
                    first_try += 1
        participants = config.participants_per_class
        results.append(
            ClassResult(
                participant_class=participant_class.name,
                participants=participants,
                success_rate=successes / participants,
                mean_time_s=(total_time / successes) if successes else 0.0,
                first_try_rate=first_try / participants,
                mean_attempts=total_attempts / participants,
            )
        )
    return UserStudyReport(results=tuple(results))
