"""Content-relevance experiment (paper section I).

"Good access control inherently leads to better content-relevance for OSN
users. ... our context-based access control mechanism will inevitably
enforce relevant content being read, because users cannot access contents
with unfamiliar contexts."

The paper states this qualitatively; this module makes it measurable. A
population of users shares event-related posts; each user *cares about* a
post exactly when they participated in the underlying event (the ground
truth). Under a static friends-ACL every friend can read every post; under
social puzzles only those who know the event's context get through. We
report feed **precision** (fraction of readable posts the reader actually
cares about) and **recall** (fraction of cared-about posts the reader can
read) for both policies.

Expected result, asserted in tests and printed by the A6 ablation bench:
puzzles trade a little recall (attendees occasionally fail a display
subset or forget answers) for a large precision gain over ACLs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.platform import SocialPuzzlePlatform
from repro.core.errors import SocialPuzzleError
from repro.crypto.ec import CurveParams
from repro.crypto.params import TOY
from repro.osn.workload import WorkloadGenerator

__all__ = ["RelevanceConfig", "PolicyRelevance", "RelevanceReport", "run_relevance_experiment"]


@dataclass(frozen=True)
class RelevanceConfig:
    num_users: int = 30
    num_events: int = 10
    questions_per_event: int = 4
    threshold: int = 2
    attendee_fraction: float = 0.3
    recall_noise: float = 0.1  # chance an attendee forgets one answer
    seed: int = 0


@dataclass(frozen=True)
class PolicyRelevance:
    """Precision/recall of one access-control policy."""

    policy: str
    readable: int
    relevant_readable: int
    relevant_total: int

    @property
    def precision(self) -> float:
        return self.relevant_readable / self.readable if self.readable else 0.0

    @property
    def recall(self) -> float:
        return (
            self.relevant_readable / self.relevant_total
            if self.relevant_total
            else 0.0
        )


@dataclass(frozen=True)
class RelevanceReport:
    acl: PolicyRelevance
    puzzle: PolicyRelevance


def run_relevance_experiment(
    config: RelevanceConfig = RelevanceConfig(),
    params: CurveParams = TOY,
) -> RelevanceReport:
    """Run the experiment on a fresh simulated OSN."""
    rng = random.Random(config.seed)
    generator = WorkloadGenerator(seed=config.seed)
    platform = SocialPuzzlePlatform(params=params)
    users = generator.populate_social_graph(
        platform.provider, config.num_users, mean_degree=6
    )

    # Each event: a sharer, a set of attendees among their friends, a post.
    posts = []  # (share, sharer, attendee_ids, event)
    for i in range(config.num_events):
        sharer = rng.choice(users)
        friends = platform.provider.friends_of(sharer)
        if not friends:
            continue
        event = generator.event(config.questions_per_event)
        attendees = {
            f.user_id
            for f in friends
            if rng.random() < config.attendee_fraction
        }
        share = platform.share(
            sharer,
            b"post-%d" % i,
            event.context,
            k=config.threshold,
            construction=1,
        )
        posts.append((share, sharer, attendees, event))

    acl_readable = acl_relevant = 0
    puzzle_readable = puzzle_relevant = 0
    relevant_total = 0

    for share, sharer, attendees, event in posts:
        for friend in platform.provider.friends_of(sharer):
            cares = friend.user_id in attendees
            if cares:
                relevant_total += 1

            # Static friends-ACL: every friend reads every post.
            acl_readable += 1
            if cares:
                acl_relevant += 1

            # Social puzzle: attendees know the context (with recall
            # noise); everyone else knows nothing and never gets through.
            if not cares:
                continue  # non-attendee cannot answer anything
            knowledge = event.context
            if rng.random() < config.recall_noise and len(event.context) > 1:
                knowledge = generator.knowledge_subset(
                    event.context, len(event.context) - 1
                )
            try:
                result = platform.solve(
                    friend, share, knowledge,
                    rng=random.Random(rng.randrange(2**31)),
                )
            except SocialPuzzleError:
                continue
            if result.plaintext.startswith(b"post-"):
                puzzle_readable += 1
                puzzle_relevant += 1

    return RelevanceReport(
        acl=PolicyRelevance(
            policy="static-acl",
            readable=acl_readable,
            relevant_readable=acl_relevant,
            relevant_total=relevant_total,
        ),
        puzzle=PolicyRelevance(
            policy="social-puzzle",
            readable=puzzle_readable,
            relevant_readable=puzzle_relevant,
            relevant_total=relevant_total,
        ),
    )
