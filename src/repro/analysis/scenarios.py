"""The standard section VI attack battery, packaged for reuse.

:func:`run_standard_scenarios` stages every attack from
:mod:`repro.analysis.security` against a fresh world and returns the
outcomes; :func:`format_outcomes` renders the table. Used by the
``python -m repro attacks`` CLI command, the ``surveillance_audit``
example, and the regression tests that pin expected outcomes.
"""

from __future__ import annotations

from repro.analysis.security import (
    AttackOutcome,
    collusion_attack_c1,
    dh_object_tampering_c1,
    malicious_sp_feedback_collusion_c1,
    semi_honest_sp_attack_c1,
    sp_dictionary_attack_c1,
    sp_url_tampering_c1,
)
from repro.core.construction1 import C1_FIELD_PRIME, PuzzleServiceC1, SharerC1
from repro.core.context import Context, QAPair
from repro.crypto.bls import BlsScheme
from repro.crypto.params import SMALL
from repro.osn.storage import StorageHost

__all__ = ["run_standard_scenarios", "format_outcomes"]


def _fresh_world():
    context = Context.from_mapping(
        {
            "Where was the retreat?": "Big Bend",
            "Who won the chili cook-off?": "Yolanda",
            "What broke on day two?": "The projector",
            "Which trail did we hike?": "Window Loop",
        }
    )
    obj = b"retreat retrospective notes"
    storage = StorageHost()
    sharer = SharerC1("organizer", storage)
    service = PuzzleServiceC1()
    puzzle = sharer.upload(obj, context, k=2, n=4)
    puzzle_id = service.store_puzzle(puzzle)
    return context, obj, storage, service, puzzle, puzzle_id


def run_standard_scenarios() -> list[AttackOutcome]:
    """Stage the full battery; each scenario gets an untouched world where
    isolation matters (tampering scenarios mutate state)."""
    outcomes: list[AttackOutcome] = []

    context, obj, storage, service, puzzle, puzzle_id = _fresh_world()
    outcomes.append(
        semi_honest_sp_attack_c1(puzzle, storage, None, C1_FIELD_PRIME, obj)
    )
    outcomes.append(
        semi_honest_sp_attack_c1(puzzle, storage, context, C1_FIELD_PRIME, obj)
    )

    vocabulary = {p.question: ["decoy one", p.answer, "decoy two"] for p in context}
    outcomes.append(
        sp_dictionary_attack_c1(puzzle, storage, vocabulary, C1_FIELD_PRIME, obj)
    )

    outcomes.append(
        collusion_attack_c1(
            service, puzzle_id, storage,
            [context.take(1), context.take(1)], context, obj,
        )
    )
    outcomes.append(
        collusion_attack_c1(
            service, puzzle_id, storage,
            [context.subset([context.questions[0]]),
             context.subset([context.questions[1]])],
            context, obj,
        )
    )

    colluders = [
        Context([context.pairs[0], QAPair(context.questions[2], "wrong")]),
        Context([context.pairs[1], QAPair(context.questions[3], "wrong")]),
    ]
    outcomes.append(
        malicious_sp_feedback_collusion_c1(
            puzzle, storage, colluders, C1_FIELD_PRIME, obj
        )
    )

    context, obj, storage, _, puzzle, _ = _fresh_world()
    outcomes.append(sp_url_tampering_c1(puzzle, storage, context, bls=None))

    storage = StorageHost()
    bls = BlsScheme(SMALL)
    sharer = SharerC1("organizer", storage, bls=bls)
    signed_puzzle = sharer.upload(obj, context, k=2, n=4)
    outcomes.append(sp_url_tampering_c1(signed_puzzle, storage, context, bls=bls))

    context, obj, storage, service, puzzle, puzzle_id = _fresh_world()
    outcomes.append(
        dh_object_tampering_c1(service, puzzle, puzzle_id, storage, context, obj)
    )
    return outcomes


def format_outcomes(outcomes: list[AttackOutcome]) -> str:
    width = max(len(o.name) for o in outcomes)
    lines = [
        f"{'attack scenario':<{width}}  outcome     detail",
        "-" * (width + 60),
    ]
    for outcome in outcomes:
        verdict = "SUCCEEDED" if outcome.succeeded else "failed   "
        lines.append(f"{outcome.name:<{width}}  {verdict}  {outcome.detail}")
    return "\n".join(lines)
