"""Executable security analysis (paper section VI).

Each function stages one adversarial scenario from the paper against the
*real* protocol implementation and reports whether the attack succeeded.
The integration tests pin the expected outcomes:

=====================================================  ==================
Scenario                                               Expected
=====================================================  ==================
Semi-honest SP without context (VI-A)                  fails
Semi-honest SP who knows the context (VI-A)            succeeds (by design)
SP dictionary attack on low-entropy answers            succeeds (caveat)
Colluding ST-R_O users, pooled knowledge < k (VI-C)    fails
Colluding users pooling >= k correct answers (VI-C)    succeeds (covert channel)
Malicious SP verification-feedback collusion (VI-C)    succeeds (conceded weakness)
Malicious SP tampers URL_O, unsigned puzzle (VI-A)     DOS succeeds
Malicious SP tampers URL_O, signed puzzle (VI-A)       detected
Malicious DH tampers stored object (VI-B)              DOS, but detected
=====================================================  ==================

The "succeeds" rows are the paper's own concessions; reproducing them is
as much a part of the reproduction as the security guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.core.construction1 import PuzzleServiceC1, ReceiverC1
from repro.core.construction2 import (
    PuzzleServiceC2,
    ReceiverC2,
    SharerC2,
    answer_digest_hex,
    split_attribute,
)
from repro.core.context import Context, QAPair, normalize_answer
from repro.core.errors import AccessDeniedError, TamperDetectedError
from repro.core.puzzle import Puzzle, unblind_share
from repro.crypto import gibberish
from repro.crypto.bls import BlsScheme
from repro.crypto.ec import CurveParams
from repro.crypto.field import PrimeField
from repro.crypto.hashes import sha3_256
from repro.crypto.mac import keyed_hash
from repro.crypto.shamir import Share, reconstruct_secret
from repro.osn.storage import StorageHost

__all__ = [
    "AttackOutcome",
    "semi_honest_sp_attack_c1",
    "sp_dictionary_attack_c1",
    "sp_dictionary_attack_c2",
    "collusion_attack_c1",
    "malicious_sp_feedback_collusion_c1",
    "sp_url_tampering_c1",
    "dh_object_tampering_c1",
]


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one staged attack."""

    name: str
    succeeded: bool
    detail: str


def _object_key(secret_m: int) -> bytes:
    return sha3_256(secret_m.to_bytes(32, "big")).hexdigest().encode()


def _try_decrypt(storage: StorageHost, url: str, secret_m: int) -> bytes | None:
    try:
        return gibberish.decrypt(storage.get(url), _object_key(secret_m))
    except ValueError:
        return None


def semi_honest_sp_attack_c1(
    puzzle: Puzzle,
    storage: StorageHost,
    known_context: Context | None,
    field_prime: int,
    obj: bytes,
) -> AttackOutcome:
    """Section VI-A: the SP holds Z_O and can download O_{K_O} from the DH.

    With knowledge of >= k context answers the SP decrypts like any member
    of R_O; without it, the information-theoretic security of Shamir's
    scheme leaves every candidate secret equally likely.
    """
    field = PrimeField(field_prime, check_prime=False)
    shares: list[Share] = []
    for index, entry in enumerate(puzzle.entries):
        if known_context is None or not known_context.knows(entry.question):
            continue
        answer = normalize_answer(known_context.answer_for(entry.question)).encode()
        if keyed_hash(answer, puzzle.puzzle_key) != entry.answer_digest:
            continue
        shares.append(
            unblind_share(
                entry.share_x, entry.blinded_share, field, answer,
                puzzle.puzzle_key, index,
            )
        )
    if len(shares) < puzzle.k:
        return AttackOutcome(
            name="semi-honest SP (insufficient context)",
            succeeded=False,
            detail="SP recovered only %d of the %d shares needed"
            % (len(shares), puzzle.k),
        )
    secret_m = int(reconstruct_secret(field, shares, puzzle.k))
    plaintext = _try_decrypt(storage, puzzle.url, secret_m)
    return AttackOutcome(
        name="semi-honest SP (knows context)",
        succeeded=plaintext == obj,
        detail="SP reconstructed K_O from %d known answers" % len(shares),
    )


def sp_dictionary_attack_c1(
    puzzle: Puzzle,
    storage: StorageHost,
    vocabulary: dict[str, list[str]],
    field_prime: int,
    obj: bytes,
) -> AttackOutcome:
    """Offline dictionary attack: the SP holds K_Z in Z_O, so it can test
    candidate answers against the stored keyed hashes. Succeeds whenever
    answer entropy is low — the usability caveat the design inherits."""
    field = PrimeField(field_prime, check_prime=False)
    shares: list[Share] = []
    cracked = 0
    for index, entry in enumerate(puzzle.entries):
        for candidate in vocabulary.get(entry.question, []):
            answer = normalize_answer(candidate).encode()
            if keyed_hash(answer, puzzle.puzzle_key) == entry.answer_digest:
                cracked += 1
                shares.append(
                    unblind_share(
                        entry.share_x, entry.blinded_share, field, answer,
                        puzzle.puzzle_key, index,
                    )
                )
                break
    if len(shares) < puzzle.k:
        return AttackOutcome(
            name="SP dictionary attack (C1)",
            succeeded=False,
            detail="dictionary cracked only %d answers; %d needed"
            % (cracked, puzzle.k),
        )
    secret_m = int(reconstruct_secret(field, shares, puzzle.k))
    plaintext = _try_decrypt(storage, puzzle.url, secret_m)
    return AttackOutcome(
        name="SP dictionary attack (C1)",
        succeeded=plaintext == obj,
        detail="dictionary cracked %d answers and rebuilt K_O" % cracked,
    )


def sp_dictionary_attack_c2(
    service: PuzzleServiceC2,
    puzzle_id: int,
    storage: StorageHost,
    vocabulary: dict[str, list[str]],
    params: CurveParams,
    obj: bytes,
    digestmod: str = "sha1",
) -> AttackOutcome:
    """The C2 analogue is *easier* for the adversary: the perturbed tree
    stores unkeyed hashes H(a_i), so a dictionary can even be precomputed
    across puzzles. With enough cracked answers the SP runs the public
    KeyGen and decrypts exactly as a legitimate receiver would."""
    record = service._record(puzzle_id)
    cracked: dict[str, str] = {}
    for attribute in record.tree_perturbed.attributes():
        question, rest = split_attribute(attribute)
        if not rest.startswith("#"):
            continue
        digest = rest[1:]
        for candidate in vocabulary.get(question, []):
            if answer_digest_hex(candidate, digestmod) == digest:
                cracked[question] = candidate
                break
    knowledge_pairs = [QAPair(q, a) for q, a in cracked.items()]
    if not knowledge_pairs:
        return AttackOutcome(
            name="SP dictionary attack (C2)",
            succeeded=False,
            detail="dictionary cracked no answers",
        )
    receiver = ReceiverC2("adversary-sp", storage, params, digestmod=digestmod)
    try:
        grant = service.verify(
            receiver.answer_puzzle(
                service.display_puzzle(puzzle_id), Context(knowledge_pairs)
            )
        )
        plaintext = receiver.access(grant, Context(knowledge_pairs))
    except AccessDeniedError:
        return AttackOutcome(
            name="SP dictionary attack (C2)",
            succeeded=False,
            detail="cracked %d answers, below threshold" % len(cracked),
        )
    return AttackOutcome(
        name="SP dictionary attack (C2)",
        succeeded=plaintext == obj,
        detail="dictionary cracked %d answers" % len(cracked),
    )


def collusion_attack_c1(
    service: PuzzleServiceC1,
    puzzle_id: int,
    storage: StorageHost,
    colluder_knowledge: list[Context],
    full_context: Context,
    obj: bytes,
) -> AttackOutcome:
    """Section VI-C: users in S_T - R_O pool their (correct and incorrect)
    answers through a covert channel and submit the union. Against an
    honest SP this succeeds iff their pooled *correct* answers reach k —
    i.e. iff collectively they already know the context."""
    pooled: dict[str, str] = {}
    for knowledge in colluder_knowledge:
        for pair in knowledge.pairs:
            pooled.setdefault(pair.question, pair.answer)
    pooled_context = Context(QAPair(q, a) for q, a in pooled.items())

    receiver = ReceiverC1("colluders", storage)
    displayed = service.display_puzzle(puzzle_id, rng=random.Random(7))
    answers = receiver.answer_puzzle(displayed, pooled_context)
    try:
        release = service.verify(answers)
        plaintext = receiver.access(release, displayed, pooled_context)
    except (AccessDeniedError, TamperDetectedError) as exc:
        return AttackOutcome(
            name="colluding users (honest SP)",
            succeeded=False,
            detail="pooled submission rejected: %s" % exc,
        )
    correct = sum(
        1
        for question, answer in pooled.items()
        if full_context.knows(question)
        and normalize_answer(answer) == normalize_answer(full_context.answer_for(question))
    )
    return AttackOutcome(
        name="colluding users (honest SP)",
        succeeded=plaintext == obj,
        detail="pooled %d correct answers" % correct,
    )


def malicious_sp_feedback_collusion_c1(
    puzzle: Puzzle,
    storage: StorageHost,
    colluder_knowledge: list[Context],
    field_prime: int,
    obj: bytes,
) -> AttackOutcome:
    """Section VI-C's strong scenario: a malicious SP leaks, per colluder,
    WHICH of their answers verified (even though each stayed below k).
    The colluders then assemble a list of >= k known-correct answers and
    reconstruct the key. The paper concedes this succeeds."""
    verified: dict[str, str] = {}
    for knowledge in colluder_knowledge:
        for pair in knowledge.pairs:
            try:
                entry = puzzle.entry_for(pair.question)
            except KeyError:
                continue
            answer = pair.answer_bytes()
            # The malicious SP runs the real verification and leaks the bit.
            if keyed_hash(answer, puzzle.puzzle_key) == entry.answer_digest:
                verified[pair.question] = pair.answer
    if len(verified) < puzzle.k:
        return AttackOutcome(
            name="malicious SP feedback collusion",
            succeeded=False,
            detail="colluders verified only %d answers jointly" % len(verified),
        )
    field = PrimeField(field_prime, check_prime=False)
    shares: list[Share] = []
    for index, entry in enumerate(puzzle.entries):
        if entry.question in verified:
            answer = normalize_answer(verified[entry.question]).encode()
            shares.append(
                unblind_share(
                    entry.share_x, entry.blinded_share, field, answer,
                    puzzle.puzzle_key, index,
                )
            )
    secret_m = int(reconstruct_secret(field, shares, puzzle.k))
    plaintext = _try_decrypt(storage, puzzle.url, secret_m)
    return AttackOutcome(
        name="malicious SP feedback collusion",
        succeeded=plaintext == obj,
        detail="colluders assembled %d verified answers" % len(verified),
    )


def sp_url_tampering_c1(
    puzzle: Puzzle,
    storage: StorageHost,
    knowledge: Context,
    bls: BlsScheme | None,
) -> AttackOutcome:
    """Section VI-A DOS: the SP rewrites URL_O in Z_O. Unsigned puzzles
    leave the receiver fetching garbage; signed puzzles (the paper's
    countermeasure) are detected before any download."""
    # A plausible decoy: a well-formed container under the SP's own key,
    # so the substitution is not trivially malformed.
    fake_url = storage.put(gibberish.encrypt(b"decoy", b"sp-chosen-passphrase"))
    tampered = replace(puzzle, url=fake_url)

    service = PuzzleServiceC1()
    puzzle_id = service.store_puzzle(tampered)
    receiver = ReceiverC1("victim", storage, bls=bls)
    displayed = service.display_puzzle(puzzle_id, rng=random.Random(3))
    answers = receiver.answer_puzzle(displayed, knowledge)
    try:
        release = service.verify(answers)
        receiver.access(
            release,
            displayed,
            knowledge,
            expected_signature=tampered if bls else None,
        )
    except TamperDetectedError as exc:
        if "signature" in str(exc):
            # The countermeasure worked: tampering detected up front.
            return AttackOutcome(
                name="SP URL tampering",
                succeeded=False,
                detail="receiver detected tampering: %s" % exc,
            )
        # Decryption failed on the decoy: the DOS landed (the receiver
        # wasted the download and cannot attribute blame).
        return AttackOutcome(
            name="SP URL tampering",
            succeeded=True,
            detail="DOS landed; receiver saw only a generic failure: %s" % exc,
        )
    except AccessDeniedError as exc:
        return AttackOutcome(
            name="SP URL tampering", succeeded=False, detail=str(exc)
        )
    return AttackOutcome(
        name="SP URL tampering",
        succeeded=True,
        detail="receiver consumed the substituted object (DOS landed)",
    )


def dh_object_tampering_c1(
    service: PuzzleServiceC1,
    puzzle: Puzzle,
    puzzle_id: int,
    storage: StorageHost,
    knowledge: Context,
    obj: bytes,
) -> AttackOutcome:
    """Section VI-B DOS: the DH rewrites the stored encrypted object.

    The receiver's decryption either fails loudly or yields bytes that are
    not the original object; either way the attack is only a DOS, never a
    disclosure — which is what we check."""
    storage.tamper(puzzle.url, b"\x00" * 64)
    receiver = ReceiverC1("victim", storage)
    displayed = service.display_puzzle(puzzle_id, rng=random.Random(5))
    answers = receiver.answer_puzzle(displayed, knowledge)
    try:
        release = service.verify(answers)
        plaintext = receiver.access(release, displayed, knowledge)
    except (TamperDetectedError, AccessDeniedError) as exc:
        return AttackOutcome(
            name="DH object tampering",
            succeeded=False,
            detail="tampering surfaced as an error: %s" % exc,
        )
    return AttackOutcome(
        name="DH object tampering",
        succeeded=plaintext == obj,
        detail="receiver got %r" % plaintext[:16],
    )
