"""Implementation 2's server component as a request/response API.

Section VII describes it concretely: the Qt client cURLs four files up
(``details.txt``, ``pub_key``, ``master_key``, ``message.txt.cpabe``); the
server strips the answer hashes out of details.txt before serving it,
stores them in a database, verifies hashed answers, and on success "gives
access to message.txt.cpabe, master key, and pub key files".

Routes:

    POST /uploads                      body: 4-file bundle         -> 201 {puzzle_id}
    GET  /uploads/<id>/details.txt     -> 200 {questions, threshold}
    POST /uploads/<id>/answers         body: {question: sha1_hex}  -> 200 {files} | 403
    GET  /health                       -> 200

The upload bundle uses the shared codec; the ciphertext itself goes to the
storage host (the DH), matching the paper's logical separation even though
its prototype co-located them.
"""

from __future__ import annotations

import base64
import json

from repro.abe.serialize import decode_access_tree
from repro.apps.canvas import Request, Response
from repro.core.construction2 import C2Upload, PuzzleAnswersC2, PuzzleServiceC2
from repro.core.errors import AccessDeniedError, UnknownPuzzleError
from repro.osn.storage import StorageHost
from repro.util.codec import CodecError, Reader, blob, text

__all__ = ["CanvasApiC2", "encode_upload_bundle", "decode_upload_bundle"]


def encode_upload_bundle(
    tree_perturbed_bytes: bytes,
    pk_bytes: bytes,
    mk_bytes: bytes,
    ciphertext_bytes: bytes,
    sharer_name: str,
) -> bytes:
    """The four-file POST body (details.txt, pub_key, master_key, CT)."""
    return (
        text(sharer_name)
        + blob(tree_perturbed_bytes)
        + blob(pk_bytes)
        + blob(mk_bytes)
        + blob(ciphertext_bytes)
    )


def decode_upload_bundle(data: bytes) -> tuple[str, bytes, bytes, bytes, bytes]:
    reader = Reader(data)
    sharer_name = reader.text()
    tree = reader.blob()
    pk = reader.blob()
    mk = reader.blob()
    ct = reader.blob()
    reader.done()
    return sharer_name, tree, pk, mk, ct


class CanvasApiC2:
    """Router exposing a :class:`PuzzleServiceC2` + storage host."""

    def __init__(
        self,
        service: PuzzleServiceC2 | None = None,
        storage: StorageHost | None = None,
    ):
        self.service = service if service is not None else PuzzleServiceC2()
        self.storage = storage if storage is not None else StorageHost()

    def handle(self, request: Request) -> Response:
        try:
            return self._route(request)
        except UnknownPuzzleError:
            return Response(404, {"error": "no such puzzle"})
        except AccessDeniedError as exc:
            return Response(403, {"error": str(exc)})
        except (ValueError, KeyError, CodecError, json.JSONDecodeError) as exc:
            return Response(400, {"error": "malformed request: %s" % exc})

    def _route(self, request: Request) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if parts == ["health"] and request.method == "GET":
            return Response(200, {"ok": True, "puzzles": self.service.puzzle_count()})
        if parts == ["uploads"] and request.method == "POST":
            return self._create(request)
        if (
            len(parts) == 3
            and parts[0] == "uploads"
            and parts[2] == "details.txt"
            and request.method == "GET"
        ):
            return self._details(int(parts[1]))
        if (
            len(parts) == 3
            and parts[0] == "uploads"
            and parts[2] == "answers"
            and request.method == "POST"
        ):
            return self._verify(int(parts[1]), request)
        return Response(
            404, {"error": "no route for %s %s" % (request.method, request.path)}
        )

    def _create(self, request: Request) -> Response:
        sharer_name, tree_bytes, pk, mk, ct = decode_upload_bundle(request.body)
        tree = decode_access_tree(tree_bytes)
        url = self.storage.put(ct)
        record = C2Upload(
            puzzle_id=0,
            tree_perturbed=tree,
            pk_bytes=pk,
            mk_bytes=mk,
            url=url,
            sharer_name=sharer_name,
        )
        puzzle_id = self.service.store_upload(record)
        return Response(201, {"puzzle_id": puzzle_id})

    def _details(self, puzzle_id: int) -> Response:
        displayed = self.service.display_puzzle(puzzle_id)
        return Response(
            200,
            {
                "puzzle_id": displayed.puzzle_id,
                "questions": list(displayed.questions),
                "threshold": displayed.threshold,
            },
        )

    def _verify(self, puzzle_id: int, request: Request) -> Response:
        body = json.loads(request.body.decode())
        if not isinstance(body, dict) or not body:
            raise ValueError("answers body must be a non-empty object")
        grant = self.service.verify(
            PuzzleAnswersC2(puzzle_id=puzzle_id, digests=dict(body))
        )
        ciphertext = self.storage.get(grant.url)
        return Response(
            200,
            {
                "files": {
                    "message.txt.cpabe": base64.b64encode(ciphertext).decode(),
                    "master_key": base64.b64encode(grant.mk_bytes).decode(),
                    "pub_key": base64.b64encode(grant.pk_bytes).decode(),
                }
            },
        )
