"""Application layer: the Facebook canvas apps and the platform facade."""

from repro.apps.clients import (
    PAPER_I2_FILE_SIZES,
    AccessResult,
    ShareResult,
    SocialPuzzleAppC1,
    SocialPuzzleAppC2,
)
from repro.apps.platform import SocialPuzzlePlatform

__all__ = [
    "SocialPuzzleAppC1",
    "SocialPuzzleAppC2",
    "SocialPuzzlePlatform",
    "ShareResult",
    "AccessResult",
    "PAPER_I2_FILE_SIZES",
]
