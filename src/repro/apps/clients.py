"""The Facebook-application layer (paper section VII).

These classes mirror the paper's two prototype applications: a canvas app
hosted alongside the SP, client-side crypto in the sharer's and receiver's
browsers (Implementation 1) or Qt application (Implementation 2), and the
hyperlink post on the sharer's profile that leads receivers to the puzzle.

Every protocol step is metered (see :mod:`repro.sim.timing`) into the same
local-processing / network-delay split that the paper's Figure 10 plots:

* local processing — *measured* wall time of the real cryptography, scaled
  by the device profile;
* network delay — modelled per-request transfer costs charged against a
  :class:`~repro.osn.network.NetworkLink` using the *actual serialized
  sizes* of the protocol messages (or, for Implementation 2, optionally
  the paper prototype's observed ~600 KB four-file footprint — see
  :data:`PAPER_I2_FILE_SIZES`).
"""

from __future__ import annotations

import random
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Callable

from repro.core.construction1 import (
    DisplayedPuzzle,
    PuzzleServiceC1,
    ReceiverC1,
    SharerC1,
)
from repro.core.construction2 import (
    DisplayedPuzzleC2,
    PuzzleServiceC2,
    ReceiverC2,
    SharerC2,
)
from repro.core.context import Context
from repro.core.errors import (
    AccessDeniedError,
    PuzzleParameterError,
    ShareFailedError,
    SocialPuzzleError,
)
from repro.core.throttle import ThrottledPuzzleServiceC1, ThrottledPuzzleServiceC2
from repro.crypto.bls import BlsScheme
from repro.crypto.ec import CurveParams
from repro.crypto.parallel import PairingPool
from repro.obs import Observability
from repro.obs.events import Label
from repro.obs.runtime import emit_event, maybe_span, use as use_observer
from repro.osn.network import NetworkLink
from repro.osn.provider import Post, ServiceProvider, User
from repro.osn.resilience import RetryPolicy
from repro.osn.securechannel import ChannelClient, ChannelServer
from repro.osn.storage import StorageHost
from repro.policy import Explanation, PuzzlePolicy
from repro.proto.bus import MessageBus
from repro.proto.client import ProtocolClient
from repro.proto.engine import PuzzleProtocolEngine
from repro.proto.frontends import StorageFrontend
from repro.sim.devices import PC, DeviceProfile
from repro.sim.timing import CostMeter, TimingBreakdown

__all__ = [
    "ShareResult",
    "AccessResult",
    "SecureTransport",
    "SocialPuzzleAppC1",
    "SocialPuzzleAppC2",
    "PAPER_I2_FILE_SIZES",
]


def _enter_journey(obs: Observability | None, scope: ExitStack, name: str, **attributes):
    """Open a root span for one user journey, activating ``obs`` so every
    instrumentation point underneath (substrate spans, retry events,
    profiled crypto) reports into the same hub. Returns the root span, or
    ``None`` when the app is uninstrumented."""
    if obs is None:
        return None
    scope.enter_context(use_observer(obs))
    return scope.enter_context(obs.span(name, **attributes))


# Per-record framing added by the secure channel: sequence number + HMAC tag.
_RECORD_OVERHEAD = 8 + 32


class SecureTransport:
    """The paper's HTTPS hop, as a real protocol with real costs.

    Section VII: "all communications between users and our application on
    Amazon EC2 is carried over HTTPS". When an app is given a
    SecureTransport, every protocol flow first runs an actual
    station-to-station handshake (ECDH on the type-A curve + a BLS server
    signature — measured as local crypto and charged as handshake bytes)
    and every subsequent request pays the record-layer framing overhead.
    """

    def __init__(self, params: CurveParams, bls: BlsScheme | None = None):
        self.params = params
        self.bls = bls if bls is not None else BlsScheme(params)
        self.server_identity = self.bls.keygen()

    def open_session(self, meter: CostMeter) -> int:
        """Run a real handshake metered on ``meter``; returns the
        per-record byte overhead callers must add to each request."""
        with meter.measure("secure-channel handshake (ECDH + BLS)"):
            client = ChannelClient(self.params, self.bls)
            server = ChannelServer(self.params, self.bls, self.server_identity)
            server_hello, _, _ = server.respond(client.hello())
            client.finish(server_hello, self.server_identity.public)
        point_len = len(self.bls.generator.to_bytes())
        meter.charge_upload("secure-channel client hello", point_len)
        meter.charge_download("secure-channel server hello", 2 * point_len)
        return _RECORD_OVERHEAD

# The paper reports "four different CP-ABE related files (total ~600KB)"
# uploaded per share by Implementation 2 through cURL. Our own encodings
# are far more compact; this table reproduces the prototype's footprint
# when file_size_model="paper" (see DESIGN.md, substitutions).
PAPER_I2_FILE_SIZES = {
    "details.txt": 20_000,
    "pub_key": 150_000,
    "master_key": 140_000,
    "message.txt.cpabe": 290_000,
}

_POST_BYTES = 256  # the hyperlink post placed on the sharer's profile


class _PrefetchedStorage:
    """A storage view that answers known URLs from memory.

    The batched access flows fetch the encrypted object over the DH wire
    plane (one :class:`~repro.proto.messages.BatchRequest` round trip)
    *before* handing control to the receiver; this view lets the
    receiver's own ``storage.get`` consume that already-transferred blob
    instead of paying a second fetch. Everything else forwards to the
    real storage.
    """

    def __init__(self, storage):
        self._storage = storage
        self._blobs: dict[str, bytes] = {}

    def preload(self, url: str, data: bytes) -> None:
        self._blobs[url] = data

    def get(self, url: str) -> bytes:
        data = self._blobs.get(url)
        return data if data is not None else self._storage.get(url)

    def __getattr__(self, name: str):
        return getattr(self._storage, name)


@dataclass(frozen=True)
class ShareResult:
    """Outcome of a share operation."""

    post: Post
    puzzle_id: int
    timing: TimingBreakdown


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a (successful) access attempt."""

    plaintext: bytes
    timing: TimingBreakdown


def _meter(device: DeviceProfile, link: NetworkLink | None) -> CostMeter:
    return CostMeter(device, link if link is not None else device.default_link())


class _PuzzleAppBase:
    """Orchestration shared by both prototype applications.

    The two implementations differ in cryptography and in what they ship
    to the SP, but the surrounding machinery — serializing SP-bound
    requests onto the message bus (where spans, retries and the audit
    trail attach), the atomic publish/rollback dance, device checks and
    the file-size model — is identical, so it lives here exactly once.

    Every SP interaction travels as a wire frame through a
    :class:`~repro.proto.client.ProtocolClient` over a
    :class:`~repro.proto.bus.MessageBus` into the
    :class:`~repro.proto.engine.PuzzleProtocolEngine`; apps hold no
    direct reference into the puzzle state machines. Pass ``engine`` /
    ``bus`` to share one protocol plane between apps (the platform
    does); standalone apps build their own.
    """

    SERVICE_NAME = "social-puzzle"
    construction = 0
    requires_cpabe_toolkit = False

    def __init__(
        self,
        provider: ServiceProvider,
        storage: StorageHost,
        service,
        transport: SecureTransport | None = None,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
        file_size_model: str = "actual",
        engine: PuzzleProtocolEngine | None = None,
        bus: MessageBus | None = None,
        dh_bus: MessageBus | None = None,
    ):
        if file_size_model not in ("actual", "paper"):
            raise ValueError("file_size_model must be 'actual' or 'paper'")
        self.provider = provider
        self.storage = storage
        self.transport = transport
        self.retry = retry
        self.obs = obs
        self.file_size_model = file_size_model
        self._engine = (
            engine if engine is not None else PuzzleProtocolEngine(provider, storage)
        )
        self.bus = (
            bus if bus is not None else MessageBus(self._engine, audit=provider.audit)
        )
        self.client = ProtocolClient(self.bus, retry=retry)
        self._dh_bus = dh_bus
        self._dh_client: ProtocolClient | None = None
        # The retract-saga write-ahead log: puzzle_id -> (phase, url).
        # ``recover_retracts`` re-drives whatever a crash left here.
        self._pending_retracts: dict[int, tuple[str, str]] = {}
        # Chaos-test seam: called with the saga phase just reached
        # ("prepared" / "blob-deleted" / "committed"); raising from it
        # simulates the client dying between phases.
        self.retract_crash_hook: Callable[[str], None] | None = None
        self.service = service
        provider.host_service(self.SERVICE_NAME, service)

    # -- the DH wire plane -------------------------------------------------------

    @property
    def dh_bus(self) -> MessageBus:
        """The data-host wire plane, built lazily when first needed.

        Deliberately a *separate* bus from the SP plane, with no audit
        trail attached: DH traffic is exactly what the curious SP must
        not see. A quorum cluster gets its batching frontend so member
        gets fan across the ring; a plain host gets the generic storage
        frontend.
        """
        if self._dh_bus is None:
            if hasattr(self.storage, "ring"):
                from repro.cluster import ClusterStorageFrontend

                frontend: StorageFrontend = ClusterStorageFrontend(self.storage)
            else:
                frontend = StorageFrontend(self.storage)
            self._dh_bus = MessageBus(frontend)
        return self._dh_bus

    @property
    def dh_client(self) -> ProtocolClient:
        """Typed client over :attr:`dh_bus` (batched share fetches)."""
        if self._dh_client is None:
            self._dh_client = ProtocolClient(self.dh_bus, retry=self.retry)
        return self._dh_client

    # -- the construction backend ------------------------------------------------

    @property
    def service(self):
        """The puzzle service backing this app's construction."""
        return self._service

    @service.setter
    def service(self, value) -> None:
        """Swapping the service re-registers the engine backend, so
        fault-injecting proxies wrapped around a live service (the chaos
        harness does this) take effect on the wire path immediately."""
        self._service = value
        if self.construction in (1, 2):
            self._engine.register_backend(self.construction, value)

    # -- atomic publish ----------------------------------------------------------

    def _remove_registration(self, puzzle_id: int) -> bool:
        return self.client.retract(self.construction, puzzle_id)

    def _rollback_share(self, url: str, puzzle_id: int | None) -> None:
        """Undo a partially published share: puzzle registration first
        (so no live registration ever points at a deleted blob), then the
        blob itself."""
        emit_event(
            "share.rollback",
            construction=self.construction,
            url=Label(url),
            puzzle_id=puzzle_id if puzzle_id is not None else -1,
        )
        if puzzle_id is not None:
            self._remove_registration(puzzle_id)
        self.storage.delete(url)

    # -- the two-phase retract saga ----------------------------------------------

    def _saga_checkpoint(self, phase: str) -> None:
        if self.retract_crash_hook is not None:
            self.retract_crash_hook(phase)

    def retract_share(self, puzzle_id: int) -> bool:
        """Retract a published share atomically across both planes.

        The one-shot retract (``client.retract``) deletes the SP
        registration and leaves the DH blob to the caller; this saga
        extends the atomic-share contract to retraction: **no live
        registration may ever point at a deleted blob, and no retracted
        share may leave either artifact behind.** Three phases:

        1. *prepare* (SP): the registration moves into the retracting
           set — display/verify stop serving it — and yields URL_O;
        2. *delete* (DH): the blob is tombstoned under the usual
           retry/quorum machinery; a failure here **aborts**, restoring
           the registration unchanged, and re-raises;
        3. *commit* (SP): the prepared registration is discarded.

        Every phase transition is journaled in ``_pending_retracts``;
        :meth:`recover_retracts` re-drives interrupted sagas forward
        (both remaining steps are idempotent), so a crash between any
        two phases leaves no orphaned registration and no orphaned blob
        once recovery runs. Returns whether a registration was removed.
        """
        with maybe_span(
            "retract.saga", construction=self.construction, puzzle_id=puzzle_id
        ):
            url = self.client.retract_prepare(self.construction, puzzle_id)
            self._pending_retracts[puzzle_id] = ("prepared", url)
            emit_event(
                "retract.prepared", puzzle_id=puzzle_id, url=Label(url)
            )
            self._saga_checkpoint("prepared")
            try:
                self.storage.delete(url)
            except Exception:
                # The DH plane refused: roll the SP plane back so the
                # share stays fully live, then surface the failure.
                self.client.retract_abort(self.construction, puzzle_id)
                self._pending_retracts.pop(puzzle_id, None)
                emit_event("retract.aborted", puzzle_id=puzzle_id)
                raise
            self._pending_retracts[puzzle_id] = ("blob-deleted", url)
            self._saga_checkpoint("blob-deleted")
            removed = self.client.retract_commit(self.construction, puzzle_id)
            self._pending_retracts.pop(puzzle_id, None)
            emit_event("retract.committed", puzzle_id=puzzle_id)
            self._saga_checkpoint("committed")
            return removed

    def recover_retracts(self) -> int:
        """Re-drive every journaled retract saga to completion.

        Once a retract was *prepared* the sharer's intent is recorded
        and recovery always rolls forward: re-delete the blob if the
        crash may have preceded the delete (tombstones make this
        idempotent), then commit. Returns the number of sagas completed.
        """
        completed = 0
        for puzzle_id in sorted(self._pending_retracts):
            phase, url = self._pending_retracts[puzzle_id]
            if phase == "prepared":
                self.storage.delete(url)
            self.client.retract_commit(self.construction, puzzle_id)
            del self._pending_retracts[puzzle_id]
            emit_event(
                "retract.recovered", puzzle_id=puzzle_id, phase=Label(phase)
            )
            completed += 1
        return completed

    def _post_text(self, user: User, puzzle_id: int) -> str:
        return (
            f"[social-puzzle] {user.name} shared a protected object — "
            f"solve puzzle #{puzzle_id} to view."
        )

    def _publish_atomically(
        self,
        user: User,
        url: str,
        audience: str,
        meter: CostMeter,
        overhead: int,
        store: Callable[[], int],
    ) -> tuple[int, Post]:
        """Run the publish steps (uploads + registration + profile post)
        atomically: any failure rolls back every published artifact and
        surfaces as a typed error."""
        puzzle_id: int | None = None
        try:
            puzzle_id = store()
            post = self.client.publish_post(
                user, self._post_text(user, puzzle_id), audience=audience
            )
            meter.charge_upload("post hyperlink on profile", _POST_BYTES + overhead)
        except Exception as exc:
            self._rollback_share(url, puzzle_id)
            if isinstance(exc, SocialPuzzleError):
                raise
            raise ShareFailedError("share rolled back: %s" % exc) from exc
        return puzzle_id, post

    # -- the policy plane ----------------------------------------------------------

    @staticmethod
    def _resolve_policy(
        policy: "str | PuzzlePolicy | None",
    ) -> PuzzlePolicy | None:
        """Normalize the ``policy=`` argument of :meth:`share`.

        A string is parsed as a policy expression; a ready-made
        :class:`~repro.policy.PuzzlePolicy` passes through. ``None``
        keeps the classic flat k-of-n path (a flat threshold *is* the
        degenerate policy ``k of (q_1, ..., q_n)`` — the explicit
        argument exists for gates the flat form cannot express).
        """
        if policy is None:
            return None
        if isinstance(policy, PuzzlePolicy):
            return policy
        return PuzzlePolicy.from_text(policy)

    def _attach_policy(
        self, puzzle_id: int, policy: PuzzlePolicy, meter: CostMeter, overhead: int
    ) -> None:
        """Ship the canonical policy text to the SP (SharePolicy verb) so
        Explain replies echo the sharer's own rendering. Runs inside the
        atomic-publish window: a failure rolls the whole share back."""
        self.client.share_policy(self.construction, puzzle_id, policy.text)
        meter.charge_upload(
            "attach policy text (SharePolicy)",
            len(policy.text.encode("utf-8")) + overhead,
        )

    # -- device / sizing models --------------------------------------------------

    def _check_device(self, device: DeviceProfile) -> None:
        if self.requires_cpabe_toolkit and not device.supports_cpabe_toolkit:
            raise PuzzleParameterError(
                "the cpabe toolkit is Linux/x86 only — Implementation 2 "
                "cannot run on %s (paper section VIII)" % device.name
            )

    def _file_size(self, filename: str, actual: int) -> int:
        if self.file_size_model == "paper":
            return PAPER_I2_FILE_SIZES[filename]
        return actual


class SocialPuzzleAppC1(_PuzzleAppBase):
    """Implementation 1: browser JavaScript + Shamir puzzles."""

    SERVICE_NAME = "social-puzzle-c1"
    construction = 1

    def __init__(
        self,
        provider: ServiceProvider,
        storage: StorageHost,
        bls: BlsScheme | None = None,
        transport: SecureTransport | None = None,
        throttle_max_failures: int | None = None,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
        engine: PuzzleProtocolEngine | None = None,
        bus: MessageBus | None = None,
        dh_bus: MessageBus | None = None,
    ):
        self.bls = bls
        if throttle_max_failures is not None:
            service: PuzzleServiceC1 = ThrottledPuzzleServiceC1(
                max_failures=throttle_max_failures, audit=provider.audit
            )
        else:
            service = PuzzleServiceC1(audit=provider.audit)
        super().__init__(
            provider,
            storage,
            service,
            transport=transport,
            retry=retry,
            obs=obs,
            engine=engine,
            bus=bus,
            dh_bus=dh_bus,
        )
        self._sharers: dict[int, SharerC1] = {}

    def _sharer_for(self, user: User) -> SharerC1:
        if user.user_id not in self._sharers:
            self._sharers[user.user_id] = SharerC1(user.name, self.storage, bls=self.bls)
        return self._sharers[user.user_id]

    def share(
        self,
        user: User,
        obj: bytes,
        context: Context,
        k: int | None = None,
        n: int | None = None,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        audience: str = "friends",
        policy: "str | PuzzlePolicy | None" = None,
    ) -> ShareResult:
        """The sharer flow: client-side crypto, upload, hyperlink post.

        Access structure: either the classic flat threshold ``k`` (of
        ``n`` questions drawn from ``context``) or a nested ``policy``
        expression / :class:`~repro.policy.PuzzlePolicy` — a flat ``k``
        is exactly the degenerate policy ``k of (q_1, ..., q_n)``.
        Nested shares additionally register the canonical policy text
        with the SP (the SharePolicy verb) so Explain can echo it.
        """
        nested = self._resolve_policy(policy)
        if (nested is None) == (k is None):
            raise PuzzleParameterError("share() needs exactly one of k= or policy=")
        n = len(context) if n is None else n
        with ExitStack() as scope:
            root = _enter_journey(
                self.obs,
                scope,
                "c1.share",
                k=k if k is not None else nested.root_threshold,
                n=n,
            )
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            sharer = self._sharer_for(user)

            with maybe_span("sharer.crypto"), meter.measure(
                "sharer crypto (secret, shares, hashes, AES)"
            ):
                if nested is not None:
                    puzzle = sharer.upload_policy(obj, context, nested)
                else:
                    puzzle = sharer.upload(obj, context, k, n)

            # The encrypted blob is on the DH now. From here on the share is
            # atomic: any failure before the profile post lands rolls back
            # every published artifact and raises a typed error.
            def store() -> int:
                encrypted_size = len(self.storage.get(puzzle.url))
                meter.charge_upload(
                    "store encrypted object on DH", encrypted_size + overhead
                )
                meter.charge_upload(
                    "upload puzzle Z_O to SP", puzzle.byte_size() + overhead
                )
                puzzle_id = self.client.store_puzzle(puzzle)
                if nested is not None:
                    self._attach_policy(puzzle_id, nested, meter, overhead)
                return puzzle_id

            puzzle_id, post = self._publish_atomically(
                user, puzzle.url, audience, meter, overhead, store
            )
            if root is not None:
                root.set("puzzle_id", puzzle_id)
            return ShareResult(post=post, puzzle_id=puzzle_id, timing=meter.report())

    def attempt_access(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        rng: random.Random | None = None,
    ) -> AccessResult:
        """The receiver flow; raises AccessDeniedError below threshold."""
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c1.access", puzzle_id=puzzle_id)
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            receiver = ReceiverC1(viewer.name, self.storage, bls=self.bls)

            displayed: DisplayedPuzzle = self.client.display_puzzle_c1(
                puzzle_id, rng=rng
            )
            meter.charge_download(
                "fetch puzzle page (questions)", displayed.byte_size() + overhead
            )

            with maybe_span("receiver.answer"), meter.measure(
                "receiver crypto (hash answers)"
            ):
                answers = receiver.answer_puzzle(displayed, knowledge)
            meter.charge_upload("submit hashed answers", answers.byte_size() + overhead)

            release = self.client.submit_answers_c1(answers, viewer.name)
            meter.charge_download(
                "receive released shares + URL", release.byte_size() + overhead
            )

            encrypted_size = len(self.storage.get(release.url))
            meter.charge_download("download encrypted object", encrypted_size + overhead)
            with maybe_span("receiver.recover"), meter.measure(
                "receiver crypto (unblind, interpolate, AES)"
            ):
                plaintext = receiver.access(release, displayed, knowledge)
            return AccessResult(plaintext=plaintext, timing=meter.report())

    def explain_access(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
        rng: random.Random | None = None,
    ) -> Explanation:
        """Ask the SP *why* this knowledge grants or denies — without
        receiving shares. Runs the display + answer steps exactly like
        :meth:`attempt_access`, then submits the hashed evidence on the
        Explain verb; a deny returns (never raises) so the receiver can
        read which gates failed. Throttled services charge denied
        explains against the shared verify budget.
        """
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c1.explain", puzzle_id=puzzle_id)
            receiver = ReceiverC1(viewer.name, self.storage, bls=self.bls)
            displayed = self.client.display_puzzle_c1(puzzle_id, rng=rng)
            answers = receiver.answer_puzzle(displayed, knowledge)
            return self.client.explain_c1(answers, viewer.name)

    def attempt_access_batched(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        rng: random.Random | None = None,
    ) -> AccessResult:
        """The receiver flow with one round trip per plane after display.

        Where :meth:`attempt_access` pays a round trip per protocol step,
        this flow submits the answers as one SP-plane
        :class:`~repro.proto.messages.BatchRequest` and fetches the
        released object over the DH plane as another — the metered
        transfers (and the cryptography) are identical, only the
        round-trip count changes.
        """
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c1.access_batched", puzzle_id=puzzle_id)
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            prefetched = _PrefetchedStorage(self.storage)
            receiver = ReceiverC1(viewer.name, prefetched, bls=self.bls)

            displayed: DisplayedPuzzle = self.client.display_puzzle_c1(
                puzzle_id, rng=rng
            )
            meter.charge_download(
                "fetch puzzle page (questions)", displayed.byte_size() + overhead
            )

            with maybe_span("receiver.answer"), meter.measure(
                "receiver crypto (hash answers)"
            ):
                answers = receiver.answer_puzzle(displayed, knowledge)
            meter.charge_upload("submit hashed answers", answers.byte_size() + overhead)

            (release,) = self.client.submit_answers_c1_batched(
                [answers], viewer.name
            )
            meter.charge_download(
                "receive released shares + URL", release.byte_size() + overhead
            )

            (encrypted,) = self.dh_client.storage_get_many([release.url])
            prefetched.preload(release.url, encrypted)
            meter.charge_download("download encrypted object", len(encrypted) + overhead)
            with maybe_span("receiver.recover"), meter.measure(
                "receiver crypto (unblind, interpolate, AES)"
            ):
                plaintext = receiver.access(release, displayed, knowledge)
            return AccessResult(plaintext=plaintext, timing=meter.report())


class SocialPuzzleAppC2(_PuzzleAppBase):
    """Implementation 2: Qt client + cpabe toolkit (here: our CP-ABE)."""

    SERVICE_NAME = "social-puzzle-c2"
    construction = 2
    requires_cpabe_toolkit = True

    def __init__(
        self,
        provider: ServiceProvider,
        storage: StorageHost,
        params: CurveParams,
        digestmod: str = "sha1",
        file_size_model: str = "actual",
        legacy_unperturbed_ciphertext: bool = False,
        transport: SecureTransport | None = None,
        throttle_max_failures: int | None = None,
        retry: RetryPolicy | None = None,
        obs: Observability | None = None,
        engine: PuzzleProtocolEngine | None = None,
        bus: MessageBus | None = None,
        dh_bus: MessageBus | None = None,
        pairing_pool: PairingPool | None = None,
    ):
        self.params = params
        self.digestmod = digestmod
        self.legacy_unperturbed_ciphertext = legacy_unperturbed_ciphertext
        # Optional process pool: receiver-side CP-ABE decrypts fan their
        # fused multi-pairing across workers (repro.crypto.parallel).
        self.pairing_pool = pairing_pool
        if throttle_max_failures is not None:
            service: PuzzleServiceC2 = ThrottledPuzzleServiceC2(
                max_failures=throttle_max_failures,
                audit=provider.audit,
                digestmod=digestmod,
            )
        else:
            service = PuzzleServiceC2(audit=provider.audit, digestmod=digestmod)
        super().__init__(
            provider,
            storage,
            service,
            transport=transport,
            retry=retry,
            obs=obs,
            file_size_model=file_size_model,
            engine=engine,
            bus=bus,
            dh_bus=dh_bus,
        )

    def share(
        self,
        user: User,
        obj: bytes,
        context: Context,
        k: int | None = None,
        n: int | None = None,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        audience: str = "friends",
        policy: "str | PuzzlePolicy | None" = None,
    ) -> ShareResult:
        """The sharer flow; ``policy=`` compiles a nested expression into
        the CP-ABE access tree (see :meth:`SocialPuzzleAppC1.share` for
        the flat-vs-nested contract, which is identical)."""
        nested = self._resolve_policy(policy)
        if (nested is None) == (k is None):
            raise PuzzleParameterError("share() needs exactly one of k= or policy=")
        self._check_device(device)
        with ExitStack() as scope:
            root = _enter_journey(
                self.obs,
                scope,
                "c2.share",
                k=k if k is not None else nested.root_threshold,
            )
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            sharer = SharerC2(
                user.name,
                self.storage,
                self.params,
                digestmod=self.digestmod,
                legacy_unperturbed_ciphertext=self.legacy_unperturbed_ciphertext,
            )

            with maybe_span("sharer.crypto"), meter.measure(
                "sharer crypto (cpabe setup, encrypt, perturb)"
            ):
                if nested is not None:
                    record, ct_bytes = sharer.upload_policy(obj, context, nested)
                else:
                    record, ct_bytes = sharer.upload(obj, context, k, n)

            # The ciphertext is on the DH now; publish fully or roll back.
            def store() -> int:
                # Four cURL uploads, as in the prototype.
                sizes = record.file_sizes()
                meter.charge_upload(
                    "upload details.txt",
                    self._file_size("details.txt", sizes["details.txt"]) + overhead,
                )
                meter.charge_upload(
                    "upload pub_key",
                    self._file_size("pub_key", sizes["pub_key"]) + overhead,
                )
                meter.charge_upload(
                    "upload master_key",
                    self._file_size("master_key", sizes["master_key"]) + overhead,
                )
                meter.charge_upload(
                    "upload message.txt.cpabe",
                    self._file_size("message.txt.cpabe", len(ct_bytes)) + overhead,
                )
                puzzle_id = self.client.store_upload(record)
                if nested is not None:
                    self._attach_policy(puzzle_id, nested, meter, overhead)
                return puzzle_id

            puzzle_id, post = self._publish_atomically(
                user, record.url, audience, meter, overhead, store
            )
            if root is not None:
                root.set("puzzle_id", puzzle_id)
            return ShareResult(post=post, puzzle_id=puzzle_id, timing=meter.report())

    def attempt_access(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
    ) -> AccessResult:
        self._check_device(device)
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c2.access", puzzle_id=puzzle_id)
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            receiver = ReceiverC2(
                viewer.name,
                self.storage,
                self.params,
                digestmod=self.digestmod,
                pairing_pool=self.pairing_pool,
            )

            displayed: DisplayedPuzzleC2 = self.client.display_puzzle_c2(puzzle_id)
            meter.charge_download(
                "download details.txt (questions)",
                self._file_size("details.txt", displayed.byte_size()) + overhead,
            )

            with maybe_span("receiver.answer"), meter.measure(
                "receiver crypto (hash answers)"
            ):
                answers = receiver.answer_puzzle(displayed, knowledge)
            meter.charge_upload("submit hashed answers", answers.byte_size() + overhead)

            grant = self.client.submit_answers_c2(answers, viewer.name)

            ct_size = len(self.storage.get(grant.url))
            meter.charge_download(
                "download message.txt.cpabe",
                self._file_size("message.txt.cpabe", ct_size) + overhead,
            )
            meter.charge_download(
                "download master_key",
                self._file_size("master_key", len(grant.mk_bytes)) + overhead,
            )
            meter.charge_download(
                "download pub_key",
                self._file_size("pub_key", len(grant.pk_bytes)) + overhead,
            )

            with maybe_span("receiver.recover"), meter.measure(
                "receiver crypto (reconstruct, keygen, decrypt)"
            ):
                plaintext = receiver.access(grant, knowledge)
            return AccessResult(plaintext=plaintext, timing=meter.report())

    def explain_access(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
    ) -> Explanation:
        """The C2 Explain flow; same contract as
        :meth:`SocialPuzzleAppC1.explain_access`."""
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c2.explain", puzzle_id=puzzle_id)
            receiver = ReceiverC2(
                viewer.name, self.storage, self.params, digestmod=self.digestmod
            )
            displayed = self.client.display_puzzle_c2(puzzle_id)
            answers = receiver.answer_puzzle(displayed, knowledge)
            return self.client.explain_c2(answers, viewer.name)

    def attempt_access_batched(
        self,
        viewer: User,
        puzzle_id: int,
        knowledge: Context,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
    ) -> AccessResult:
        """The receiver flow with one round trip per plane after display;
        see :meth:`SocialPuzzleAppC1.attempt_access_batched`."""
        self._check_device(device)
        with ExitStack() as scope:
            _enter_journey(self.obs, scope, "c2.access_batched", puzzle_id=puzzle_id)
            meter = _meter(device, link)
            overhead = self.transport.open_session(meter) if self.transport else 0
            prefetched = _PrefetchedStorage(self.storage)
            receiver = ReceiverC2(
                viewer.name,
                prefetched,
                self.params,
                digestmod=self.digestmod,
                pairing_pool=self.pairing_pool,
            )

            displayed: DisplayedPuzzleC2 = self.client.display_puzzle_c2(puzzle_id)
            meter.charge_download(
                "download details.txt (questions)",
                self._file_size("details.txt", displayed.byte_size()) + overhead,
            )

            with maybe_span("receiver.answer"), meter.measure(
                "receiver crypto (hash answers)"
            ):
                answers = receiver.answer_puzzle(displayed, knowledge)
            meter.charge_upload("submit hashed answers", answers.byte_size() + overhead)

            (grant,) = self.client.submit_answers_c2_batched([answers], viewer.name)

            (ct_bytes,) = self.dh_client.storage_get_many([grant.url])
            prefetched.preload(grant.url, ct_bytes)
            meter.charge_download(
                "download message.txt.cpabe",
                self._file_size("message.txt.cpabe", len(ct_bytes)) + overhead,
            )
            meter.charge_download(
                "download master_key",
                self._file_size("master_key", len(grant.mk_bytes)) + overhead,
            )
            meter.charge_download(
                "download pub_key",
                self._file_size("pub_key", len(grant.pk_bytes)) + overhead,
            )

            with maybe_span("receiver.recover"), meter.measure(
                "receiver crypto (reconstruct, keygen, decrypt)"
            ):
                plaintext = receiver.access(grant, knowledge)
            return AccessResult(plaintext=plaintext, timing=meter.report())
