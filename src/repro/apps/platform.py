"""A one-stop platform facade tying everything together.

``SocialPuzzlePlatform`` is what the examples (and most tests) use: it
stands up a simulated OSN provider, a storage host, and both puzzle
applications, and exposes the end-to-end user journey —

    platform = SocialPuzzlePlatform(params=SMALL)
    alice = platform.join("alice"); bob = platform.join("bob")
    platform.befriend(alice, bob)
    share = platform.share(alice, b"photos!", context, k=2)     # C1
    result = platform.solve(bob, share, knowledge)               # as bob

mirroring the paper's demo: the sharer fills the HTML form, the app posts
a hyperlink, friends click it, answer questions, and read the object.
"""

from __future__ import annotations

import random

from repro.apps.clients import (
    AccessResult,
    SecureTransport,
    ShareResult,
    SocialPuzzleAppC1,
    SocialPuzzleAppC2,
)
from repro.core.context import Context
from repro.crypto.bls import BlsScheme
from repro.crypto.ec import CurveParams
from repro.crypto.parallel import PairingPool
from repro.crypto.params import SMALL
from repro.obs import Observability
from repro.obs.runtime import use as use_observer
from repro.osn.network import NetworkLink
from repro.osn.provider import Post, ServiceProvider, User
from repro.osn.resilience import CircuitBreaker, ResilientStorageClient, RetryPolicy
from repro.osn.storage import StorageHost
from repro.proto.bus import MessageBus
from repro.proto.client import ProtocolClient
from repro.proto.engine import PuzzleProtocolEngine
from repro.proto.frontends import StorageFrontend
from repro.sim.devices import PC, DeviceProfile

__all__ = ["SocialPuzzlePlatform"]


class SocialPuzzlePlatform:
    """Simulated OSN + storage + both social-puzzle applications.

    Resilience wiring: pass ``provider`` / ``storage`` to substitute
    fault-injecting substrates (:mod:`repro.osn.faults`), and a
    ``retry_policy`` (plus optional ``circuit_breaker``) to make every
    client journey retry transient faults. With a retry policy the
    storage host is wrapped in a
    :class:`~repro.osn.resilience.ResilientStorageClient` shared by both
    applications, and SP-bound requests (store / post / display / verify
    / post-ACL reads) run under the same policy. Backoff advances the
    policy's simulated clock — never wall time.

    Storage plane: ``cluster_nodes=N`` backs the DH with an N-node
    :class:`~repro.cluster.cluster.StorageCluster` (quorum reads/writes,
    read repair, hinted handoff) instead of a single ``StorageHost``;
    passing a ready-made cluster as ``storage`` works too — anything
    with a ``ring`` attribute gets the cluster wire frontend. The
    platform's ``cluster`` attribute exposes the cluster (or ``None``)
    for chaos control: ``platform.cluster.crash("dhc-n2")``.
    ``storage_engine="segment"`` puts the log-structured blob store
    (:mod:`repro.store`) under every cluster node instead of the dict
    reference engine — same wire plane, real durability.
    """

    def __init__(
        self,
        params: CurveParams = SMALL,
        signed_puzzles: bool = False,
        file_size_model: str = "actual",
        digestmod_c2: str = "sha1",
        secure_transport: bool = False,
        provider: ServiceProvider | None = None,
        storage: StorageHost | None = None,
        retry_policy: RetryPolicy | None = None,
        circuit_breaker: CircuitBreaker | None = None,
        throttle_max_failures: int | None = None,
        observability: Observability | None = None,
        cluster_nodes: int | None = None,
        degraded_reads: bool = False,
        storage_engine: str = "dict",
        pairing_workers: int | None = None,
    ):
        self.obs = observability
        # pairing_workers > 1 fans receiver-side CP-ABE multi-pairings
        # across a process pool; 0/1 pins everything serial; None means
        # no pool at all (identical to the pre-pool behaviour).
        self.pairing_pool = (
            PairingPool(workers=pairing_workers)
            if pairing_workers is not None
            else None
        )
        self.provider = provider if provider is not None else ServiceProvider()
        if cluster_nodes is not None and storage is not None:
            raise ValueError("pass either storage or cluster_nodes, not both")
        if storage_engine != "dict" and cluster_nodes is None:
            raise ValueError(
                "storage_engine selects the per-node blob engine and needs "
                "cluster_nodes (a single StorageHost has no engines)"
            )
        if cluster_nodes is not None:
            from repro.cluster import StorageCluster

            storage = StorageCluster(num_nodes=cluster_nodes, engine=storage_engine)
        base_storage = storage if storage is not None else StorageHost()
        self.cluster = base_storage if hasattr(base_storage, "ring") else None
        self.retry = retry_policy
        if retry_policy is not None or circuit_breaker is not None:
            self.storage: StorageHost = ResilientStorageClient(
                base_storage,
                retry=retry_policy,
                breaker=circuit_breaker,
                degraded_reads=degraded_reads,
            )
        else:
            self.storage = base_storage
        self.params = params
        self.bls = BlsScheme(params) if signed_puzzles else None
        self.transport = (
            SecureTransport(params, bls=self.bls) if secure_transport else None
        )
        # One protocol plane for the whole platform: both apps and the
        # ACL gate speak to the SP through the same engine and bus, so a
        # transport wrapper (or a chaos fault injector) on the bus sees
        # every SP-bound frame.
        storage_frontend = None
        if self.cluster is not None:
            from repro.cluster import ClusterStorageFrontend

            storage_frontend = ClusterStorageFrontend(
                self.storage, degraded_reads=degraded_reads
            )
        self.engine = PuzzleProtocolEngine(
            self.provider, self.storage, storage_frontend=storage_frontend
        )
        self.bus = MessageBus(self.engine, audit=self.provider.audit)
        # The DH wire plane: deliberately audit-free (DH traffic is what
        # the curious SP must not see) and shared by both apps so batched
        # fetches hit the cluster frontend when the DH is a quorum ring.
        self.dh_bus = MessageBus(
            storage_frontend
            if storage_frontend is not None
            else StorageFrontend(self.storage)
        )
        self._client = ProtocolClient(self.bus, retry=retry_policy)
        self.app_c1 = SocialPuzzleAppC1(
            self.provider,
            self.storage,
            bls=self.bls,
            transport=self.transport,
            throttle_max_failures=throttle_max_failures,
            retry=retry_policy,
            obs=observability,
            engine=self.engine,
            bus=self.bus,
            dh_bus=self.dh_bus,
        )
        self.app_c2 = SocialPuzzleAppC2(
            self.provider,
            self.storage,
            params,
            digestmod=digestmod_c2,
            file_size_model=file_size_model,
            transport=self.transport,
            throttle_max_failures=throttle_max_failures,
            retry=retry_policy,
            obs=observability,
            engine=self.engine,
            bus=self.bus,
            dh_bus=self.dh_bus,
            pairing_pool=self.pairing_pool,
        )

    # -- membership ---------------------------------------------------------------

    def join(self, name: str, **profile: str) -> User:
        return self.provider.register_user(name, profile)

    def befriend(self, a: User, b: User) -> None:
        self.provider.befriend(a, b)

    # -- sharing ------------------------------------------------------------------

    def share(
        self,
        user: User,
        obj: bytes,
        context: Context,
        k: int | None = None,
        n: int | None = None,
        construction: int = 1,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        audience: str = "friends",
        policy: str | None = None,
    ) -> ShareResult:
        """Share under a flat threshold ``k`` or a nested ``policy``
        expression (exactly one of the two; a flat ``k`` is the
        degenerate policy ``k of (q_1, ..., q_n)``)."""
        app = self._app(construction)
        return app.share(
            user,
            obj,
            context,
            k,
            n=n,
            device=device,
            link=link,
            audience=audience,
            policy=policy,
        )

    def solve(
        self,
        viewer: User,
        share: ShareResult,
        knowledge: Context,
        construction: int = 1,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        rng: random.Random | None = None,
    ) -> AccessResult:
        """Attempt to solve a previously shared puzzle as ``viewer``.

        The viewer must be able to see the post (static ACL layer) before
        the puzzle is even displayed — the paper's two complementary
        access-control layers.
        """
        self._acl_gate(viewer, share)
        app = self._app(construction)
        if construction == 1:
            return app.attempt_access(
                viewer, share.puzzle_id, knowledge, device=device, link=link, rng=rng
            )
        return app.attempt_access(
            viewer, share.puzzle_id, knowledge, device=device, link=link
        )

    def solve_batched(
        self,
        viewer: User,
        share: ShareResult,
        knowledge: Context,
        construction: int = 1,
        device: DeviceProfile = PC,
        link: NetworkLink | None = None,
        rng: random.Random | None = None,
    ) -> AccessResult:
        """Like :meth:`solve`, but after display the answer submission and
        the object fetch each travel as ONE
        :class:`~repro.proto.messages.BatchRequest` round trip — one on
        the SP plane (``platform.bus``), one on the DH plane
        (``platform.dh_bus``)."""
        self._acl_gate(viewer, share)
        app = self._app(construction)
        if construction == 1:
            return app.attempt_access_batched(
                viewer, share.puzzle_id, knowledge, device=device, link=link, rng=rng
            )
        return app.attempt_access_batched(
            viewer, share.puzzle_id, knowledge, device=device, link=link
        )

    def explain(
        self,
        viewer: User,
        share: ShareResult,
        knowledge: Context,
        construction: int = 1,
        rng: random.Random | None = None,
    ):
        """Ask the SP why ``knowledge`` grants or denies ``share`` —
        the gate-by-gate derivation, never shares or answer material.
        The static ACL gate applies exactly as it does for
        :meth:`solve`."""
        self._acl_gate(viewer, share)
        app = self._app(construction)
        if construction == 1:
            return app.explain_access(viewer, share.puzzle_id, knowledge, rng=rng)
        return app.explain_access(viewer, share.puzzle_id, knowledge)

    def retract(
        self, user: User, share: ShareResult, construction: int = 1
    ) -> bool:
        """Retract ``share`` atomically across the SP and DH planes via
        the two-phase saga (see ``_PuzzleAppBase.retract_share``)."""
        del user  # the sharer's device does the work; kept for symmetry
        return self._app(construction).retract_share(share.puzzle_id)

    def recover_retracts(self, construction: int = 1) -> int:
        """Roll forward retract sagas interrupted by a crash."""
        return self._app(construction).recover_retracts()

    def _acl_gate(self, viewer: User, share: ShareResult) -> None:
        """Check the static ACL layer: the viewer must see the post before
        the puzzle is displayed. The read travels the wire like every
        other SP interaction (retried under ``sp.get_post`` when a retry
        policy is wired); observed under ``acl.get_post`` when the
        platform carries an :class:`~repro.obs.Observability` hub."""

        def gate() -> None:
            self._client.get_post(viewer, share.post.post_id)

        if self.obs is None:
            gate()
            return
        with use_observer(self.obs), self.obs.span(
            "acl.get_post", post_id=share.post.post_id
        ):
            gate()

    def feed(self, viewer: User) -> list[Post]:
        return self.provider.feed(viewer)

    def _app(self, construction: int) -> SocialPuzzleAppC1 | SocialPuzzleAppC2:
        if construction == 1:
            return self.app_c1
        if construction == 2:
            return self.app_c2
        raise ValueError("construction must be 1 or 2, got %r" % construction)
