"""The Facebook canvas application as a request/response API.

Section VII describes a concrete server component: an HTML form posts the
puzzle, a MySQL table stores it, a hyperlink leads receivers to an
interface that fetches the puzzle, accepts hashed answers and redirects to
the encrypted object. This module models that HTTP surface explicitly —
a tiny router with typed requests and JSON-serializable responses — so
integration tests can exercise the *interface* (unknown routes, malformed
bodies, method checks, status codes) and not just the library calls.

Routes (Construction 1 service):

    POST /puzzles                  body: puzzle bytes (Z_O)      -> 201 {puzzle_id}
    GET  /puzzles/<id>             -> 200 {questions, puzzle_key, k}
    POST /puzzles/<id>/answers     body: {question: digest_hex}  -> 200 {shares, url} | 403
    GET  /health                   -> 200 {status}

The router enforces the same trust boundary as the service: request bodies
are recorded in the SP audit trail, and nothing the handlers return can
contain plaintext answers or objects (they never have them).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass

from repro.core.construction1 import PuzzleAnswers, PuzzleServiceC1
from repro.core.errors import AccessDeniedError, UnknownPuzzleError
from repro.core.puzzle import Puzzle

__all__ = ["Request", "Response", "CanvasApiC1"]


@dataclass(frozen=True)
class Request:
    """A minimal HTTP-ish request."""

    method: str
    path: str
    body: bytes = b""
    requester: str = ""


@dataclass(frozen=True)
class Response:
    """A minimal HTTP-ish response with a JSON body."""

    status: int
    payload: dict

    def json(self) -> str:
        return json.dumps({"status": self.status, **self.payload})


class CanvasApiC1:
    """Router exposing a :class:`PuzzleServiceC1` over request objects."""

    def __init__(self, service: PuzzleServiceC1 | None = None):
        self.service = service if service is not None else PuzzleServiceC1()

    # -- dispatch -------------------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Route one request; never raises — errors become status codes."""
        try:
            return self._route(request)
        except UnknownPuzzleError:
            return Response(404, {"error": "no such puzzle"})
        except AccessDeniedError as exc:
            return Response(403, {"error": str(exc)})
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            return Response(400, {"error": "malformed request: %s" % exc})

    def _route(self, request: Request) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if parts == ["health"] and request.method == "GET":
            return Response(200, {"ok": True, "puzzles": self.service.puzzle_count()})
        if parts == ["puzzles"] and request.method == "POST":
            return self._create_puzzle(request)
        if len(parts) == 2 and parts[0] == "puzzles" and request.method == "GET":
            return self._display(int(parts[1]))
        if (
            len(parts) == 3
            and parts[0] == "puzzles"
            and parts[2] == "answers"
            and request.method == "POST"
        ):
            return self._verify(int(parts[1]), request)
        return Response(404, {"error": "no route for %s %s" % (request.method, request.path)})

    # -- handlers -------------------------------------------------------------------

    def _create_puzzle(self, request: Request) -> Response:
        puzzle = Puzzle.from_bytes(request.body)
        puzzle_id = self.service.store_puzzle(puzzle)
        return Response(201, {"puzzle_id": puzzle_id})

    def _display(self, puzzle_id: int) -> Response:
        displayed = self.service.display_puzzle(puzzle_id)
        return Response(
            200,
            {
                "puzzle_id": displayed.puzzle_id,
                "questions": list(displayed.questions),
                "puzzle_key": base64.b64encode(displayed.puzzle_key).decode(),
                "k": displayed.k,
            },
        )

    def _verify(self, puzzle_id: int, request: Request) -> Response:
        body = json.loads(request.body.decode())
        if not isinstance(body, dict) or not body:
            raise ValueError("answers body must be a non-empty object")
        digests = {
            question: bytes.fromhex(digest_hex)
            for question, digest_hex in body.items()
        }
        release = self.service.verify(
            PuzzleAnswers(puzzle_id=puzzle_id, digests=digests)
        )
        return Response(
            200,
            {
                "url": release.url,
                "k": release.k,
                "shares": [
                    {
                        "question": s.question,
                        "entry_index": s.entry_index,
                        "share_x": str(s.share_x),  # 256-bit; JSON-safe as str
                        "blinded_share": base64.b64encode(s.blinded_share).decode(),
                    }
                    for s in release.shares
                ],
            },
        )
