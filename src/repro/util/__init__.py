"""Shared utilities (wire codec)."""

from repro.util.codec import CodecError, Reader, blob, text, u8, u32

__all__ = ["CodecError", "Reader", "blob", "text", "u8", "u32"]
