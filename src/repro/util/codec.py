"""Tiny length-prefixed binary codec shared by all wire formats.

Artifacts in this system cross trust boundaries (sharer -> SP -> receiver),
so nothing is pickled; every message has an explicit, checked encoding.
The codec is deliberately minimal: u8/u32 integers, length-prefixed blobs,
and UTF-8 strings built on blobs.
"""

from __future__ import annotations

import struct

__all__ = ["Reader", "blob", "u8", "u32", "text", "CodecError"]


class CodecError(ValueError):
    """Raised on malformed encodings."""


def u8(value: int) -> bytes:
    if not 0 <= value < 256:
        raise CodecError("u8 out of range: %d" % value)
    return bytes([value])


def u32(value: int) -> bytes:
    if not 0 <= value < 2**32:
        raise CodecError("u32 out of range: %d" % value)
    return struct.pack(">I", value)


def blob(data: bytes) -> bytes:
    return u32(len(data)) + data


def text(value: str) -> bytes:
    return blob(value.encode("utf-8"))


class Reader:
    """Cursor over a bytes buffer with checked reads."""

    def __init__(self, data: bytes):
        self.data = data
        self.offset = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.offset + n > len(self.data):
            raise CodecError("truncated encoding")
        chunk = self.data[self.offset : self.offset + n]
        self.offset += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def blob(self) -> bytes:
        return self.take(self.u32())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8 in encoding") from exc

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def done(self) -> None:
        if self.offset != len(self.data):
            raise CodecError("trailing bytes in encoding")
