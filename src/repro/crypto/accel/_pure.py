"""Pure-Python reference mirror of the compiled kernel surface.

The pure *tier* is simply the existing code in
:mod:`repro.crypto.numbers` / :mod:`repro.crypto.fq2` /
:mod:`repro.crypto.pairing` running with no backend installed — this
module is not on any hot path.  What it provides is a
:class:`PureKernels` object with the **same call signatures** as the
compiled :class:`~repro.crypto.accel._compiled.GmpKernels`, built from
the reference implementations, so the cross-tier equivalence suite can
drive both backends through one harness on seeded inputs and demand
bit-for-bit agreement kernel by kernel (not just end to end).
"""

from __future__ import annotations

from typing import Sequence

import repro.crypto.numbers as _numbers


class PureKernels:
    """Reference-tier implementation of the kernel table."""

    lib_path = None

    @staticmethod
    def mulmod(a: int, b: int, m: int) -> int:
        return a * b % m

    @staticmethod
    def powmod(base: int, exponent: int, m: int) -> int:
        if exponent < 0:
            return pow(_numbers._modinv_pure(base, m), -exponent, m)
        return pow(base, exponent, m)

    @staticmethod
    def modinv(a: int, m: int) -> int:
        return _numbers._modinv_pure(a, m)

    @staticmethod
    def batch_modinv(values: Sequence[int], m: int) -> list[int]:
        return _numbers._batch_modinv_pure(values, m)

    @staticmethod
    def fq2_pow(q: int, a: int, b: int, exponent: int) -> tuple[int, int]:
        ra, rb = 1, 0
        for bit in bin(exponent)[2:] if exponent else "":
            ra, rb = (ra - rb) * (ra + rb) % q, 2 * ra * rb % q
            if bit == "1":
                ra, rb = (ra * a - rb * b) % q, (ra * b + rb * a) % q
        return ra, rb

    @classmethod
    def fq2_multi_exp(
        cls,
        q: int,
        bases: Sequence[tuple[int, int]],
        exponents: Sequence[int],
    ) -> tuple[int, int]:
        ra, rb = 1, 0
        for (a, b), exponent in zip(bases, exponents):
            ta, tb = cls.fq2_pow(q, a % q, b % q, exponent)
            ra, rb = (ra * ta - rb * tb) % q, (ra * tb + rb * ta) % q
        return ra, rb

    @staticmethod
    def miller_merged(
        q: int,
        r_bits: str,
        states: Sequence[tuple[int, int, int, int, int, int, int]],
        n_groups: int,
    ) -> list[tuple[int, int]]:
        # Plain-integer transliteration of Pairing._merged_miller (which
        # is the authoritative reference; the cross-tier suite pins this
        # mirror against it at the pair_product level too).
        live = [[tx % q, ty % q, px % q, py % q, xq % q, yq % q, g, 0]
                for tx, ty, px, py, xq, yq, g in states]
        acc = [(1, 0)] * n_groups
        for bit in r_bits[1:]:
            line: list[tuple[int, int] | None] = [None] * n_groups
            for s in live:
                if s[7]:
                    continue
                tx, ty = s[0], s[1]
                slope = (3 * tx * tx + 1) * _numbers._modinv_pure(2 * ty, q) % q
                la, lb = (-(slope * (s[4] - tx) + ty)) % q, s[5]
                prev = line[s[6]]
                if prev is not None:
                    la, lb = (prev[0] * la - prev[1] * lb) % q, (
                        prev[0] * lb + prev[1] * la
                    ) % q
                line[s[6]] = (la, lb)
                x3 = (slope * slope - 2 * tx) % q
                s[1] = (slope * (tx - x3) - ty) % q
                s[0] = x3
            for g in range(n_groups):
                a, b = acc[g]
                a, b = (a - b) * (a + b) % q, 2 * a * b % q
                if line[g] is not None:
                    la, lb = line[g]
                    a, b = (a * la - b * lb) % q, (a * lb + b * la) % q
                acc[g] = (a, b)
            if bit != "1":
                continue
            line = [None] * n_groups
            for s in live:
                if s[7]:
                    continue
                tx, ty, px, py = s[0], s[1], s[2], s[3]
                if tx == px and (ty + py) % q == 0:
                    s[7] = 1
                    continue
                if tx == px:
                    slope = (3 * tx * tx + 1) * _numbers._modinv_pure(2 * ty, q) % q
                else:
                    slope = (py - ty) * _numbers._modinv_pure((px - tx) % q, q) % q
                la, lb = (-(slope * (s[4] - tx) + ty)) % q, s[5]
                prev = line[s[6]]
                if prev is not None:
                    la, lb = (prev[0] * la - prev[1] * lb) % q, (
                        prev[0] * lb + prev[1] * la
                    ) % q
                line[s[6]] = (la, lb)
                x3 = (slope * slope - tx - px) % q
                s[1] = (slope * (tx - x3) - ty) % q
                s[0] = x3
            for g in range(n_groups):
                if line[g] is not None:
                    a, b = acc[g]
                    la, lb = line[g]
                    acc[g] = ((a * la - b * lb) % q, (a * lb + b * la) % q)
        return acc
