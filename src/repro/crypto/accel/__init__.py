"""Tier selection for the crypto hot path.

The crypto substrate ships two tiers of every hot primitive, following
bzrlib's ``_dirstate_helpers_c`` / ``*_py`` convention of an optional
compiled implementation over an always-tested pure-Python reference:

* **pure** — the existing from-scratch Python in
  :mod:`repro.crypto.numbers`, :mod:`repro.crypto.fq2`,
  :mod:`repro.crypto.field` and :mod:`repro.crypto.pairing`.  Always
  present, always the semantic reference.
* **compiled** — GMP kernels built on first use by
  :mod:`repro.crypto.accel._compiled` (``cc -O2 -shared`` against the
  system libgmp, loaded with ctypes) covering ``modinv`` /
  ``batch_modinv``, field ``mulmod``, GF(q²) exponentiation, the Straus
  ``gt_multi_exp`` chain, and the whole merged Miller loop.

The tier is probed **once at import** of :mod:`repro.crypto` (the
package ``__init__`` calls :func:`initialize`): by default the compiled
backend is attempted and silently falls back to pure when there is no
compiler, no GMP, or the known-answer self-test fails.  The environment
variable ``REPRO_CRYPTO_TIER`` overrides the probe:

* ``REPRO_CRYPTO_TIER=pure`` — never probe; reference tier only (this is
  what the ``crypto-accel`` CI job forces).
* ``REPRO_CRYPTO_TIER=compiled`` — require the compiled tier; raise
  :class:`CompiledBackendUnavailable` instead of degrading.
* unset or ``auto`` — probe, prefer compiled, fall back to pure.

Selection is *per primitive*: installing the compiled tier routes the
Miller loop, batch/scalar inversion and GF(q²) power chains through the
kernels, but single base-field multiplications stay on native CPython
ints unless the probe's calibration finds the FFI crossing profitable
(it is not for ≤512-bit operands — one ``a*b % m`` is cheaper than one
ctypes call).  Operation counters always tick in the Python wrappers, so
``Pairing.op_counts`` is tier-invariant.

:func:`set_tier` re-installs at runtime (used by the cross-tier
equivalence suite); :func:`describe` feeds the ``crypto:`` stats line.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from repro.crypto.accel._compiled import CompiledBackendUnavailable
from repro.crypto.accel._pure import PureKernels

__all__ = [
    "CompiledBackendUnavailable",
    "PureKernels",
    "TierState",
    "active",
    "describe",
    "initialize",
    "set_tier",
]

_VALID_TIERS = ("auto", "pure", "compiled")

_lock = threading.RLock()
_state: "TierState | None" = None
_probe_result = None  # cached GmpKernels | CompiledBackendUnavailable
_MULMOD_BITS = 512  # calibrate at the widest preset's operand size


@dataclass(frozen=True)
class TierState:
    """What the tier layer decided and why."""

    requested: str  # the REPRO_CRYPTO_TIER / set_tier value
    active: str  # "pure" | "compiled"
    library: "str | None"  # path of the loaded kernel .so, if any
    reason: "str | None"  # why compiled is not active, if it isn't
    field_mulmod: str  # "native" | "compiled" (per-primitive selection)


def _probe_compiled():
    """Build/load/self-test the kernels once; cache the outcome."""
    global _probe_result
    if _probe_result is None:
        from repro.crypto.accel import _compiled

        try:
            _probe_result = _compiled.probe()
        except CompiledBackendUnavailable as exc:
            _probe_result = exc
    if isinstance(_probe_result, CompiledBackendUnavailable):
        raise _probe_result
    return _probe_result


def _calibrate_mulmod(kernels) -> bool:
    """True when routing single field muls through the FFI is a win.

    On CPython the native ``a*b % m`` for ≤512-bit operands beats one
    ctypes crossing, so this normally selects the native path; the hook
    stays available for wider moduli or faster FFI stacks.
    """
    m = (1 << _MULMOD_BITS) - 569  # arbitrary odd 512-bit modulus
    a = (1 << (_MULMOD_BITS - 1)) + 12345
    b = m - 98765
    rounds = 64
    start = time.perf_counter()
    for _ in range(rounds):
        _ = a * b % m
    native = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(rounds):
        kernels.mulmod(a, b, m)
    compiled = time.perf_counter() - start
    return compiled * 1.1 < native


def _install(kernels, requested: str, reason: "str | None") -> "TierState":
    """Push the chosen backend into the consumer modules."""
    import repro.crypto.field as field
    import repro.crypto.fq2 as fq2
    import repro.crypto.numbers as numbers
    import repro.crypto.pairing as pairing

    use_mulmod = bool(kernels) and _calibrate_mulmod(kernels)
    numbers._BACKEND = kernels
    fq2._BACKEND = kernels
    pairing._KERNELS = kernels
    field._MULMOD = kernels.mulmod if use_mulmod else None
    return TierState(
        requested=requested,
        active="compiled" if kernels else "pure",
        library=getattr(kernels, "lib_path", None),
        reason=reason,
        field_mulmod="compiled" if use_mulmod else "native",
    )


def initialize(requested: "str | None" = None) -> "TierState":
    """Select and install a tier (idempotent unless ``requested`` given).

    Called once from ``repro.crypto.__init__``; reads
    ``REPRO_CRYPTO_TIER`` when ``requested`` is None.
    """
    global _state
    with _lock:
        if _state is not None and requested is None:
            return _state
        if requested is None:
            requested = os.environ.get("REPRO_CRYPTO_TIER", "auto") or "auto"
        requested = requested.lower()
        if requested not in _VALID_TIERS:
            raise ValueError(
                "REPRO_CRYPTO_TIER must be one of %s, got %r"
                % ("/".join(_VALID_TIERS), requested)
            )
        if requested == "pure":
            _state = _install(None, requested, "pure tier requested")
        elif requested == "compiled":
            _state = _install(_probe_compiled(), requested, None)
        else:  # auto: prefer compiled, degrade silently
            try:
                _state = _install(_probe_compiled(), requested, None)
            except CompiledBackendUnavailable as exc:
                _state = _install(None, requested, str(exc))
    return _state


def set_tier(name: str) -> "TierState":
    """Force a tier at runtime (``pure`` / ``compiled`` / ``auto``).

    Raises :class:`CompiledBackendUnavailable` when ``compiled`` is
    forced on a machine where the kernels cannot be built.
    """
    return initialize(requested=name)


def active() -> "TierState":
    """The installed tier, initializing with the default probe if needed."""
    state = _state
    if state is None:
        state = initialize()
    return state


def describe() -> dict:
    """Plain-dict view of the active tier for stats/banner lines."""
    state = active()
    return {
        "tier": state.active,
        "requested": state.requested,
        "library": state.library,
        "reason": state.reason,
        "field_mulmod": state.field_mulmod,
    }
