/* Compiled crypto kernels for the hot-path primitives.
 *
 * Built at probe time by repro.crypto.accel._compiled (gcc -O2 -shared
 * -lgmp) and loaded through ctypes.  Every function speaks the same
 * marshalling convention: big integers travel as fixed-width big-endian
 * byte strings (the width of the field modulus), so the Python side is
 * one int.to_bytes()/int.from_bytes() per value and the C side is one
 * mpz_import/mpz_export.  All arithmetic is exact modular arithmetic,
 * which is what makes the compiled tier bit-for-bit equivalent to the
 * pure-Python reference tier: there is no algorithmic freedom that
 * could change a result, only the speed at which it is produced.
 *
 * Return conventions:
 *   0   success
 *  -1   a denominator/value had no inverse (callers raise ZeroDivisionError)
 *  -2   malformed input (callers raise ValueError)
 *  >=0  (spx_batch_modinv only) index of the first non-invertible element
 */

#include <gmp.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* -- marshalling ---------------------------------------------------------- */

static void import_be(mpz_t z, const uint8_t *buf, size_t width) {
    mpz_import(z, width, 1, 1, 1, 0, buf);
}

static void export_be(uint8_t *buf, size_t width, const mpz_t z) {
    size_t bytes = (mpz_sizeinbase(z, 2) + 7) / 8;
    memset(buf, 0, width);
    if (mpz_sgn(z) == 0 || bytes > width)
        return; /* caller guarantees z < 2^(8*width); zero exports nothing */
    mpz_export(buf + (width - bytes), NULL, 1, 1, 1, 0, z);
}

/* -- GF(q^2) helpers ------------------------------------------------------ */

/* (ra, rb) = (aa + ab*i) * (ba + bb*i) mod q.  Result operands must not
 * alias the inputs; callers pass dedicated temporaries. */
static void fq2_mul(mpz_t ra, mpz_t rb, const mpz_t aa, const mpz_t ab,
                    const mpz_t ba, const mpz_t bb, const mpz_t q,
                    mpz_t t1, mpz_t t2) {
    mpz_mul(t1, aa, ba);        /* t1 = aa*ba           */
    mpz_mul(t2, ab, bb);        /* t2 = ab*bb           */
    mpz_mul(rb, aa, bb);        /* rb = aa*bb           */
    mpz_addmul(rb, ab, ba);     /* rb = aa*bb + ab*ba   */
    mpz_sub(ra, t1, t2);        /* ra = aa*ba - ab*bb   */
    mpz_mod(ra, ra, q);
    mpz_mod(rb, rb, q);
}

/* (ra, rb) = (aa + ab*i)^2 mod q.  No-alias, as above. */
static void fq2_sqr(mpz_t ra, mpz_t rb, const mpz_t aa, const mpz_t ab,
                    const mpz_t q, mpz_t t1, mpz_t t2) {
    mpz_sub(t1, aa, ab);
    mpz_add(t2, aa, ab);
    mpz_mul(ra, t1, t2);        /* (a - b)(a + b) */
    mpz_mul(rb, aa, ab);
    mpz_mul_2exp(rb, rb, 1);    /* 2ab */
    mpz_mod(ra, ra, q);
    mpz_mod(rb, rb, q);
}

/* -- scalar primitives ---------------------------------------------------- */

int spx_mulmod(const uint8_t *mod_buf, size_t width, const uint8_t *a_buf,
               const uint8_t *b_buf, uint8_t *out_buf) {
    mpz_t m, a, b;
    mpz_inits(m, a, b, NULL);
    import_be(m, mod_buf, width);
    import_be(a, a_buf, width);
    import_be(b, b_buf, width);
    mpz_mul(a, a, b);
    mpz_mod(a, a, m);
    export_be(out_buf, width, a);
    mpz_clears(m, a, b, NULL);
    return 0;
}

int spx_powmod(const uint8_t *mod_buf, size_t width, const uint8_t *base_buf,
               const uint8_t *exp_buf, size_t exp_width, uint8_t *out_buf) {
    mpz_t m, base, e;
    mpz_inits(m, base, e, NULL);
    import_be(m, mod_buf, width);
    import_be(base, base_buf, width);
    import_be(e, exp_buf, exp_width);
    mpz_powm(base, base, e, m);
    export_be(out_buf, width, base);
    mpz_clears(m, base, e, NULL);
    return 0;
}

int spx_modinv(const uint8_t *mod_buf, size_t width, const uint8_t *a_buf,
               uint8_t *out_buf) {
    mpz_t m, a;
    int ok;
    mpz_inits(m, a, NULL);
    import_be(m, mod_buf, width);
    import_be(a, a_buf, width);
    ok = mpz_invert(a, a, m);
    if (ok)
        export_be(out_buf, width, a);
    mpz_clears(m, a, NULL);
    return ok ? 0 : -1;
}

/* Montgomery batch inversion: one mpz_invert plus 3(n-1) multiplications.
 * Returns -1 on success; otherwise the index of the FIRST element (in
 * input order) that is zero or shares a factor with the modulus, so the
 * Python wrapper can raise the same error the pure tier raises. */
long spx_batch_modinv(const uint8_t *mod_buf, size_t width,
                      const uint8_t *values_buf, size_t count,
                      uint8_t *out_buf) {
    mpz_t m, inv, t, g;
    mpz_t *vals, *prefix;
    size_t i;
    long bad = -1;

    if (count == 0)
        return -1;
    vals = malloc(count * sizeof(mpz_t));
    prefix = malloc(count * sizeof(mpz_t));
    if (!vals || !prefix) {
        free(vals);
        free(prefix);
        return -2;
    }
    mpz_inits(m, inv, t, g, NULL);
    import_be(m, mod_buf, width);
    for (i = 0; i < count; i++) {
        mpz_inits(vals[i], prefix[i], NULL);
        import_be(vals[i], values_buf + i * width, width);
        mpz_mod(vals[i], vals[i], m);
    }
    mpz_set_ui(t, 1);
    for (i = 0; i < count && bad < 0; i++) {
        if (mpz_sgn(vals[i]) == 0)
            bad = (long)i;
        else {
            mpz_mul(t, t, vals[i]);
            mpz_mod(t, t, m);
            mpz_set(prefix[i], t);
        }
    }
    if (bad < 0 && !mpz_invert(inv, prefix[count - 1], m)) {
        /* Some element shares a factor with m; report the first. */
        for (i = 0; i < count; i++) {
            mpz_gcd(g, vals[i], m);
            if (mpz_cmp_ui(g, 1) != 0) {
                bad = (long)i;
                break;
            }
        }
        if (bad < 0)
            bad = -2; /* cannot happen: product not invertible, parts are */
    }
    if (bad < 0) {
        for (i = count - 1; i > 0; i--) {
            mpz_mul(t, prefix[i - 1], inv);
            mpz_mod(t, t, m);
            export_be(out_buf + i * width, width, t);
            mpz_mul(inv, inv, vals[i]);
            mpz_mod(inv, inv, m);
        }
        export_be(out_buf, width, inv);
    }
    for (i = 0; i < count; i++)
        mpz_clears(vals[i], prefix[i], NULL);
    free(vals);
    free(prefix);
    mpz_clears(m, inv, t, g, NULL);
    return bad;
}

/* -- GF(q^2) exponentiation ------------------------------------------------ */

int spx_fq2_pow(const uint8_t *mod_buf, size_t width, const uint8_t *a_buf,
                const uint8_t *b_buf, const uint8_t *exp_buf, size_t exp_width,
                uint8_t *out_buf) {
    mpz_t q, ba, bb, ra, rb, e, t1, t2, na, nb;
    long bit;
    mpz_inits(q, ba, bb, ra, rb, e, t1, t2, na, nb, NULL);
    import_be(q, mod_buf, width);
    import_be(ba, a_buf, width);
    import_be(bb, b_buf, width);
    import_be(e, exp_buf, exp_width);
    mpz_set_ui(ra, 1);
    mpz_set_ui(rb, 0);
    if (mpz_sgn(e) != 0) {
        for (bit = (long)mpz_sizeinbase(e, 2) - 1; bit >= 0; bit--) {
            fq2_sqr(na, nb, ra, rb, q, t1, t2);
            mpz_swap(ra, na);
            mpz_swap(rb, nb);
            if (mpz_tstbit(e, (mp_bitcnt_t)bit)) {
                fq2_mul(na, nb, ra, rb, ba, bb, q, t1, t2);
                mpz_swap(ra, na);
                mpz_swap(rb, nb);
            }
        }
    }
    export_be(out_buf, width, ra);
    export_be(out_buf + width, width, rb);
    mpz_clears(q, ba, bb, ra, rb, e, t1, t2, na, nb, NULL);
    return 0;
}

/* Simultaneous multi-exponentiation in GF(q^2) (Shamir's trick): one
 * shared squaring chain, multiplying in every base whose exponent has
 * the current bit set.  Bases are (a, b) pairs laid out consecutively;
 * exponents are exp_width-byte big-endian values, one per base. */
int spx_fq2_multi_exp(const uint8_t *mod_buf, size_t width, size_t count,
                      const uint8_t *bases_buf, const uint8_t *exps_buf,
                      size_t exp_width, uint8_t *out_buf) {
    mpz_t q, ra, rb, t1, t2, na, nb;
    mpz_t *ba, *bb, *es;
    size_t i, maxbits = 0;
    long bit;

    ba = malloc(count * sizeof(mpz_t));
    bb = malloc(count * sizeof(mpz_t));
    es = malloc(count * sizeof(mpz_t));
    if (!ba || !bb || !es) {
        free(ba);
        free(bb);
        free(es);
        return -2;
    }
    mpz_inits(q, ra, rb, t1, t2, na, nb, NULL);
    import_be(q, mod_buf, width);
    for (i = 0; i < count; i++) {
        mpz_inits(ba[i], bb[i], es[i], NULL);
        import_be(ba[i], bases_buf + i * 2 * width, width);
        import_be(bb[i], bases_buf + i * 2 * width + width, width);
        import_be(es[i], exps_buf + i * exp_width, exp_width);
        if (mpz_sgn(es[i]) != 0 && mpz_sizeinbase(es[i], 2) > maxbits)
            maxbits = mpz_sizeinbase(es[i], 2);
    }
    mpz_set_ui(ra, 1);
    mpz_set_ui(rb, 0);
    for (bit = (long)maxbits - 1; bit >= 0; bit--) {
        fq2_sqr(na, nb, ra, rb, q, t1, t2);
        mpz_swap(ra, na);
        mpz_swap(rb, nb);
        for (i = 0; i < count; i++) {
            if (mpz_tstbit(es[i], (mp_bitcnt_t)bit)) {
                fq2_mul(na, nb, ra, rb, ba[i], bb[i], q, t1, t2);
                mpz_swap(ra, na);
                mpz_swap(rb, nb);
            }
        }
    }
    export_be(out_buf, width, ra);
    export_be(out_buf + width, width, rb);
    for (i = 0; i < count; i++)
        mpz_clears(ba[i], bb[i], es[i], NULL);
    free(ba);
    free(bb);
    free(es);
    mpz_clears(q, ra, rb, t1, t2, na, nb, NULL);
    return 0;
}

/* -- merged Miller loop ---------------------------------------------------- */

/* Per-state mutable data, mirroring the pure tier's
 * [tx, ty, px, py, xq, yq, group, done] rows exactly. */
typedef struct {
    mpz_t tx, ty, px, py, xq, yq;
    int32_t group;
    int done;
} miller_state;

/* Run every Miller loop of a pair_product in lockstep, one accumulator
 * per exponent group — the compiled twin of Pairing._merged_miller.
 *
 * states_buf holds n_states rows of six width-byte values
 * (tx, ty, px, py, xq, yq); group_of maps each state to its group.
 * r_bits is the binary expansion of the group order as an ASCII
 * '0'/'1' string; the loop walks r_bits[1:], exactly like the pure
 * tier.  out_buf receives n_groups (a, b) accumulator pairs.
 *
 * The doubling-step slope uses one modular inversion per live state
 * (mpz_invert is cheap here; the pure tier batches them with Montgomery's
 * trick for the same mathematical result). Vertical chords in the
 * addition step (T == -P) mark the state done, matching the reference. */
int spx_miller_merged(const uint8_t *mod_buf, size_t width,
                      const char *r_bits, const uint8_t *states_buf,
                      const int32_t *group_of, size_t n_states,
                      size_t n_groups, uint8_t *out_buf) {
    mpz_t q, slope, inv, t1, t2, t3, na, nb;
    mpz_t *acc_a, *acc_b, *line_a, *line_b;
    int *line_has;
    miller_state *st;
    size_t i, g, bitlen;
    size_t bi;
    int rc = 0;

    st = malloc(n_states * sizeof(miller_state));
    acc_a = malloc(n_groups * sizeof(mpz_t));
    acc_b = malloc(n_groups * sizeof(mpz_t));
    line_a = malloc(n_groups * sizeof(mpz_t));
    line_b = malloc(n_groups * sizeof(mpz_t));
    line_has = malloc(n_groups * sizeof(int));
    if (!st || !acc_a || !acc_b || !line_a || !line_b || !line_has) {
        free(st); free(acc_a); free(acc_b);
        free(line_a); free(line_b); free(line_has);
        return -2;
    }
    mpz_inits(q, slope, inv, t1, t2, t3, na, nb, NULL);
    import_be(q, mod_buf, width);
    for (i = 0; i < n_states; i++) {
        const uint8_t *row = states_buf + i * 6 * width;
        mpz_inits(st[i].tx, st[i].ty, st[i].px, st[i].py, st[i].xq,
                  st[i].yq, NULL);
        import_be(st[i].tx, row, width);
        import_be(st[i].ty, row + width, width);
        import_be(st[i].px, row + 2 * width, width);
        import_be(st[i].py, row + 3 * width, width);
        import_be(st[i].xq, row + 4 * width, width);
        import_be(st[i].yq, row + 5 * width, width);
        st[i].group = group_of[i];
        st[i].done = 0;
    }
    for (g = 0; g < n_groups; g++) {
        mpz_inits(acc_a[g], acc_b[g], line_a[g], line_b[g], NULL);
        mpz_set_ui(acc_a[g], 1);
        line_has[g] = 0;
    }

    bitlen = strlen(r_bits);
    for (bi = 1; bi < bitlen && rc == 0; bi++) {
        /* Doubling step for every live state. */
        for (g = 0; g < n_groups; g++)
            line_has[g] = 0;
        for (i = 0; i < n_states; i++) {
            miller_state *s = &st[i];
            if (s->done)
                continue;
            mpz_mul_2exp(t1, s->ty, 1);          /* 2*ty */
            mpz_mod(t1, t1, q);
            if (!mpz_invert(inv, t1, q)) {
                rc = -1; /* odd-order point cannot double to O mid-loop */
                break;
            }
            mpz_mul(slope, s->tx, s->tx);
            mpz_mul_ui(slope, slope, 3);
            mpz_add_ui(slope, slope, 1);         /* 3*tx^2 + 1 */
            mpz_mul(slope, slope, inv);
            mpz_mod(slope, slope, q);
            /* line value at phi(Q): (-(slope*(xq - tx) + ty)) + yq*i */
            mpz_sub(t1, s->xq, s->tx);
            mpz_mul(t1, t1, slope);
            mpz_add(t1, t1, s->ty);
            mpz_neg(t1, t1);
            mpz_mod(t1, t1, q);
            g = (size_t)s->group;
            if (line_has[g]) {
                fq2_mul(na, nb, line_a[g], line_b[g], t1, s->yq, q, t2, t3);
                mpz_swap(line_a[g], na);
                mpz_swap(line_b[g], nb);
            } else {
                mpz_set(line_a[g], t1);
                mpz_mod(line_b[g], s->yq, q);
                line_has[g] = 1;
            }
            /* T = 2T */
            mpz_mul(t1, slope, slope);
            mpz_submul_ui(t1, s->tx, 2);         /* x3 = slope^2 - 2*tx */
            mpz_mod(t1, t1, q);
            mpz_sub(t2, s->tx, t1);
            mpz_mul(t2, t2, slope);
            mpz_sub(t2, t2, s->ty);
            mpz_mod(s->ty, t2, q);
            mpz_set(s->tx, t1);
        }
        if (rc != 0)
            break;
        for (g = 0; g < n_groups; g++) {
            fq2_sqr(na, nb, acc_a[g], acc_b[g], q, t1, t2);
            mpz_swap(acc_a[g], na);
            mpz_swap(acc_b[g], nb);
            if (line_has[g]) {
                fq2_mul(na, nb, acc_a[g], acc_b[g], line_a[g], line_b[g], q,
                        t1, t2);
                mpz_swap(acc_a[g], na);
                mpz_swap(acc_b[g], nb);
            }
        }

        if (r_bits[bi] != '1')
            continue;

        /* Addition step. */
        for (g = 0; g < n_groups; g++)
            line_has[g] = 0;
        for (i = 0; i < n_states; i++) {
            miller_state *s = &st[i];
            if (s->done)
                continue;
            if (mpz_cmp(s->tx, s->px) == 0) {
                mpz_add(t1, s->ty, s->py);
                mpz_mod(t1, t1, q);
                if (mpz_sgn(t1) == 0) {
                    /* T == -P: vertical chord, erased by the final
                     * exponentiation; T becomes O (loop-end only). */
                    s->done = 1;
                    continue;
                }
                mpz_mul_2exp(t1, s->ty, 1);      /* tangent: T == P */
                mpz_mod(t1, t1, q);
                if (!mpz_invert(inv, t1, q)) {
                    rc = -1;
                    break;
                }
                mpz_mul(slope, s->tx, s->tx);
                mpz_mul_ui(slope, slope, 3);
                mpz_add_ui(slope, slope, 1);
            } else {
                mpz_sub(t1, s->px, s->tx);
                mpz_mod(t1, t1, q);
                if (!mpz_invert(inv, t1, q)) {
                    rc = -1;
                    break;
                }
                mpz_sub(slope, s->py, s->ty);
            }
            mpz_mul(slope, slope, inv);
            mpz_mod(slope, slope, q);
            mpz_sub(t1, s->xq, s->tx);
            mpz_mul(t1, t1, slope);
            mpz_add(t1, t1, s->ty);
            mpz_neg(t1, t1);
            mpz_mod(t1, t1, q);
            g = (size_t)s->group;
            if (line_has[g]) {
                fq2_mul(na, nb, line_a[g], line_b[g], t1, s->yq, q, t2, t3);
                mpz_swap(line_a[g], na);
                mpz_swap(line_b[g], nb);
            } else {
                mpz_set(line_a[g], t1);
                mpz_mod(line_b[g], s->yq, q);
                line_has[g] = 1;
            }
            /* T = T + P */
            mpz_mul(t1, slope, slope);
            mpz_sub(t1, t1, s->tx);
            mpz_sub(t1, t1, s->px);              /* x3 */
            mpz_mod(t1, t1, q);
            mpz_sub(t2, s->tx, t1);
            mpz_mul(t2, t2, slope);
            mpz_sub(t2, t2, s->ty);
            mpz_mod(s->ty, t2, q);
            mpz_set(s->tx, t1);
        }
        if (rc != 0)
            break;
        for (g = 0; g < n_groups; g++) {
            if (line_has[g]) {
                fq2_mul(na, nb, acc_a[g], acc_b[g], line_a[g], line_b[g], q,
                        t1, t2);
                mpz_swap(acc_a[g], na);
                mpz_swap(acc_b[g], nb);
            }
        }
    }

    if (rc == 0) {
        for (g = 0; g < n_groups; g++) {
            export_be(out_buf + g * 2 * width, width, acc_a[g]);
            export_be(out_buf + g * 2 * width + width, width, acc_b[g]);
        }
    }
    for (i = 0; i < n_states; i++)
        mpz_clears(st[i].tx, st[i].ty, st[i].px, st[i].py, st[i].xq,
                   st[i].yq, NULL);
    for (g = 0; g < n_groups; g++)
        mpz_clears(acc_a[g], acc_b[g], line_a[g], line_b[g], NULL);
    free(st); free(acc_a); free(acc_b);
    free(line_a); free(line_b); free(line_has);
    mpz_clears(q, slope, inv, t1, t2, t3, na, nb, NULL);
    return rc;
}
