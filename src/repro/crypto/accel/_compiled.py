"""The compiled backend: GMP kernels built with the system toolchain.

Follows the bzrlib ``*_c.pyx`` / ``*_py.py`` pattern in spirit — an
optional compiled implementation behind the always-tested pure-Python
reference — but without requiring a build step at install time: the
first probe compiles :mod:`_kernel.c <repro.crypto.accel>` with
``cc -O2 -shared -fPIC ... -lgmp`` into a content-addressed cache
directory and loads it through :mod:`ctypes`.  No compiler, no GMP, a
failed build, or a failed self-test all degrade to ``None`` (the tier
layer then stays on the pure backend); ``REPRO_CRYPTO_TIER=compiled``
turns that silent degradation into a hard error.

Marshalling: every big integer crosses the FFI boundary as a
fixed-width big-endian byte string sized to the modulus, so the kernels
are width-agnostic (the TOY/SMALL/DEFAULT presets all use the same
entry points).

The probe ends with known-answer self-tests against the pure-Python
reference implementations, so a miscompiled or ABI-skewed library can
never be selected.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Sequence

_KERNEL = os.path.join(os.path.dirname(__file__), "_kernel.c")


class CompiledBackendUnavailable(RuntimeError):
    """Raised (via the tier layer) when the compiled tier is forced but
    cannot be built on this machine."""


def _cache_dir() -> str:
    root = os.environ.get("REPRO_ACCEL_CACHE")
    if not root:
        root = os.path.join(tempfile.gettempdir(), "repro-accel")
    os.makedirs(root, exist_ok=True)
    return root


def _build_library() -> str:
    """Compile the kernel once per source revision; return the .so path."""
    with open(_KERNEL, "rb") as fh:
        source = fh.read()
    digest = hashlib.sha256(source).hexdigest()[:16]
    lib_path = os.path.join(_cache_dir(), "spxaccel-%s.so" % digest)
    if os.path.exists(lib_path):
        return lib_path
    compiler = os.environ.get("CC", "cc")
    tmp_path = lib_path + ".%d.tmp" % os.getpid()
    command = [
        compiler, "-O2", "-shared", "-fPIC", "-o", tmp_path, _KERNEL, "-lgmp",
    ]
    result = subprocess.run(
        command, capture_output=True, text=True, timeout=120
    )
    if result.returncode != 0:
        raise CompiledBackendUnavailable(
            "kernel build failed: %s" % (result.stderr.strip() or command)
        )
    os.replace(tmp_path, lib_path)  # atomic: concurrent probes both win
    return lib_path


class GmpKernels:
    """ctypes face of the compiled kernel library.

    All methods take and return plain Python ints (plus int tuples for
    GF(q²) elements); the byte-string marshalling is internal.  Raises
    :class:`ZeroDivisionError`/:class:`ValueError` with the same
    semantics as the pure tier.
    """

    def __init__(self, lib_path: str):
        self.lib_path = lib_path
        lib = ctypes.CDLL(lib_path)
        u8p = ctypes.POINTER(ctypes.c_uint8)
        lib.spx_mulmod.restype = ctypes.c_int
        lib.spx_mulmod.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p,
            ctypes.c_char_p, u8p,
        ]
        lib.spx_powmod.restype = ctypes.c_int
        lib.spx_powmod.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p,
            ctypes.c_char_p, ctypes.c_size_t, u8p,
        ]
        lib.spx_modinv.restype = ctypes.c_int
        lib.spx_modinv.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p, u8p,
        ]
        lib.spx_batch_modinv.restype = ctypes.c_long
        lib.spx_batch_modinv.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p,
            ctypes.c_size_t, u8p,
        ]
        lib.spx_fq2_pow.restype = ctypes.c_int
        lib.spx_fq2_pow.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p,
            ctypes.c_char_p, ctypes.c_char_p, ctypes.c_size_t, u8p,
        ]
        lib.spx_fq2_multi_exp.restype = ctypes.c_int
        lib.spx_fq2_multi_exp.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_size_t,
            ctypes.c_char_p, ctypes.c_char_p, ctypes.c_size_t, u8p,
        ]
        lib.spx_miller_merged.restype = ctypes.c_int
        lib.spx_miller_merged.argtypes = [
            ctypes.c_char_p, ctypes.c_size_t, ctypes.c_char_p,
            ctypes.c_char_p, ctypes.POINTER(ctypes.c_int32),
            ctypes.c_size_t, ctypes.c_size_t, u8p,
        ]
        self._lib = lib

    # -- marshalling -----------------------------------------------------------

    @staticmethod
    def _width(m: int) -> int:
        return (m.bit_length() + 7) // 8

    @staticmethod
    def _enc(value: int, width: int) -> bytes:
        return value.to_bytes(width, "big")

    @staticmethod
    def _out(width: int):
        return (ctypes.c_uint8 * width)()

    # -- scalar kernels --------------------------------------------------------

    def mulmod(self, a: int, b: int, m: int) -> int:
        width = self._width(m)
        out = self._out(width)
        self._lib.spx_mulmod(
            self._enc(m, width), width, self._enc(a % m, width),
            self._enc(b % m, width), out,
        )
        return int.from_bytes(bytes(out), "big")

    def powmod(self, base: int, exponent: int, m: int) -> int:
        if exponent < 0:
            return self.powmod(self.modinv(base, m), -exponent, m)
        width = self._width(m)
        exp = exponent.to_bytes(max(1, (exponent.bit_length() + 7) // 8), "big")
        out = self._out(width)
        self._lib.spx_powmod(
            self._enc(m, width), width, self._enc(base % m, width),
            exp, len(exp), out,
        )
        return int.from_bytes(bytes(out), "big")

    def modinv(self, a: int, m: int) -> int:
        width = self._width(m)
        a %= m
        out = self._out(width)
        rc = self._lib.spx_modinv(
            self._enc(m, width), width, self._enc(a, width), out
        )
        if rc != 0:
            from repro.crypto import numbers

            numbers.raise_not_invertible(a, m)
        return int.from_bytes(bytes(out), "big")

    def batch_modinv(self, values: Sequence[int], m: int) -> list[int]:
        if not values:
            return []
        width = self._width(m)
        reduced = [v % m for v in values]
        packed = b"".join(self._enc(v, width) for v in reduced)
        out = (ctypes.c_uint8 * (width * len(reduced)))()
        rc = self._lib.spx_batch_modinv(
            self._enc(m, width), width, packed, len(reduced), out
        )
        if rc >= 0:
            from repro.crypto import numbers

            numbers.raise_not_invertible(reduced[rc], m, index=int(rc))
        if rc != -1:
            raise ValueError("batch_modinv kernel failed (rc=%d)" % rc)
        raw = bytes(out)
        return [
            int.from_bytes(raw[i * width : (i + 1) * width], "big")
            for i in range(len(reduced))
        ]

    # -- GF(q^2) kernels -------------------------------------------------------

    def fq2_pow(self, q: int, a: int, b: int, exponent: int) -> tuple[int, int]:
        """(a + b·i)^exponent in GF(q²); exponent must be >= 0."""
        width = self._width(q)
        exp = exponent.to_bytes(max(1, (exponent.bit_length() + 7) // 8), "big")
        out = self._out(2 * width)
        self._lib.spx_fq2_pow(
            self._enc(q, width), width, self._enc(a % q, width),
            self._enc(b % q, width), exp, len(exp), out,
        )
        raw = bytes(out)
        return (
            int.from_bytes(raw[:width], "big"),
            int.from_bytes(raw[width:], "big"),
        )

    def fq2_multi_exp(
        self,
        q: int,
        bases: Sequence[tuple[int, int]],
        exponents: Sequence[int],
    ) -> tuple[int, int]:
        """Π basesᵢ^exponentsᵢ in GF(q²); exponents must be >= 0."""
        width = self._width(q)
        exp_width = max(
            1, max((e.bit_length() for e in exponents), default=1) + 7 >> 3
        )
        packed_bases = b"".join(
            self._enc(a % q, width) + self._enc(b % q, width) for a, b in bases
        )
        packed_exps = b"".join(e.to_bytes(exp_width, "big") for e in exponents)
        out = self._out(2 * width)
        rc = self._lib.spx_fq2_multi_exp(
            self._enc(q, width), width, len(bases), packed_bases,
            packed_exps, exp_width, out,
        )
        if rc != 0:
            raise ValueError("fq2_multi_exp kernel failed (rc=%d)" % rc)
        raw = bytes(out)
        return (
            int.from_bytes(raw[:width], "big"),
            int.from_bytes(raw[width:], "big"),
        )

    def miller_merged(
        self,
        q: int,
        r_bits: str,
        states: Sequence[tuple[int, int, int, int, int, int, int]],
        n_groups: int,
    ) -> list[tuple[int, int]]:
        """Lockstep Miller loops; states are (tx, ty, px, py, xq, yq, group)
        rows, the return value one (a, b) accumulator per group."""
        width = self._width(q)
        packed = b"".join(
            b"".join(self._enc(value % q, width) for value in row[:6])
            for row in states
        )
        groups = (ctypes.c_int32 * len(states))(*(row[6] for row in states))
        out = self._out(2 * width * n_groups)
        rc = self._lib.spx_miller_merged(
            self._enc(q, width), width, r_bits.encode("ascii"), packed,
            groups, len(states), n_groups, out,
        )
        if rc == -1:
            raise ZeroDivisionError(
                "degenerate Miller state: slope denominator not invertible"
            )
        if rc != 0:
            raise ValueError("miller_merged kernel failed (rc=%d)" % rc)
        raw = bytes(out)
        return [
            (
                int.from_bytes(raw[g * 2 * width : g * 2 * width + width], "big"),
                int.from_bytes(
                    raw[g * 2 * width + width : (g + 1) * 2 * width], "big"
                ),
            )
            for g in range(n_groups)
        ]


def _self_test(kernels: GmpKernels) -> None:
    """Known-answer checks against the pure reference; raises on mismatch."""
    from repro.crypto.numbers import _batch_modinv_pure, _modinv_pure

    m = 0xFFFFFFFFFFFFFFC5  # 64-bit prime
    values = [3, 7, 0xDEADBEEF, m - 2, 12345678901234567]
    if kernels.modinv(values[2], m) != _modinv_pure(values[2], m):
        raise CompiledBackendUnavailable("self-test failed: modinv")
    if kernels.batch_modinv(values, m) != _batch_modinv_pure(values, m):
        raise CompiledBackendUnavailable("self-test failed: batch_modinv")
    if kernels.mulmod(values[2], values[3], m) != values[2] * values[3] % m:
        raise CompiledBackendUnavailable("self-test failed: mulmod")
    if kernels.powmod(3, 0x12345, m) != pow(3, 0x12345, m):
        raise CompiledBackendUnavailable("self-test failed: powmod")
    # GF(q²) with q ≡ 3 (mod 4): compare against a tiny pure ladder.
    q = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF6F  # 128-bit prime, q % 4 == 3
    a, b = 0x1234567890ABCDEF, 0x0FEDCBA987654321
    expect_a, expect_b = 1, 0
    for bit in bin(0xBEEF)[2:]:
        # square
        expect_a, expect_b = (
            (expect_a - expect_b) * (expect_a + expect_b) % q,
            2 * expect_a * expect_b % q,
        )
        if bit == "1":
            expect_a, expect_b = (
                (expect_a * a - expect_b * b) % q,
                (expect_a * b + expect_b * a) % q,
            )
    if kernels.fq2_pow(q, a, b, 0xBEEF) != (expect_a, expect_b):
        raise CompiledBackendUnavailable("self-test failed: fq2_pow")
    if kernels.fq2_multi_exp(q, [(a, b)], [0xBEEF]) != (expect_a, expect_b):
        raise CompiledBackendUnavailable("self-test failed: fq2_multi_exp")
    # miller_merged is covered end-to-end: probe() runs a pairing KAT via
    # the tier layer's cross-check in tests; here assert it loads and
    # rejects a degenerate state (ty == 0 → no slope denominator).
    try:
        kernels.miller_merged(q, "101", [(5, 0, 5, 1, 2, 3, 0)], 1)
    except ZeroDivisionError:
        pass
    else:
        raise CompiledBackendUnavailable("self-test failed: miller_merged")


def probe() -> GmpKernels:
    """Build + load + self-test the compiled kernels.

    Returns the kernel table, or raises
    :class:`CompiledBackendUnavailable` with the reason (no compiler, no
    GMP, failed self-test) — the tier layer decides whether that reason
    is fatal (forced tier) or just means staying pure (auto probe).
    """
    try:
        lib_path = _build_library()
        kernels = GmpKernels(lib_path)
    except CompiledBackendUnavailable:
        raise
    except (OSError, subprocess.SubprocessError) as exc:
        raise CompiledBackendUnavailable(str(exc)) from exc
    _self_test(kernels)
    return kernels
