"""Hashing arbitrary strings into the pairing group G0.

CP-ABE's ``H: {0,1}* -> G0`` (paper section III-C) maps each attribute
string to a random-looking group element. Implemented with the classical
try-and-increment method: derive candidate x-coordinates from
SHA3-256(domain || counter || data) until one lies on the curve, then clear
the cofactor to land in the order-r subgroup. Expected ~2 attempts.
"""

from __future__ import annotations

from repro.crypto.ec import CurveParams, Point
from repro.crypto.hashes import sha3_256

__all__ = ["hash_to_g0"]

_DOMAIN = b"repro.hash_to_g0.v1"


def _candidate_x(params: CurveParams, data: bytes, counter: int) -> int:
    width = (params.q.bit_length() + 7) // 8
    material = b""
    block_index = 0
    while len(material) < width:
        digest = sha3_256(
            _DOMAIN
            + counter.to_bytes(4, "big")
            + block_index.to_bytes(4, "big")
            + data
        ).digest()
        material += digest
        block_index += 1
    return int.from_bytes(material[:width], "big") % params.q


def hash_to_g0(params: CurveParams, data: bytes) -> Point:
    """Map ``data`` to a point of order r on the curve (never infinity)."""
    counter = 0
    while True:
        x = _candidate_x(params, data, counter)
        lifted = params.lift_x(x)
        if lifted is not None:
            point = lifted * params.h
            if not point.infinity:
                # Derive the sign of y from the hash too, so the map does
                # not systematically prefer the canonical root.
                sign_bit = sha3_256(
                    _DOMAIN + b"sign" + counter.to_bytes(4, "big") + data
                ).digest()[0] & 1
                return -point if sign_bit else point
        counter += 1
