"""The supersingular (PBC "type A") elliptic curve E: y^2 = x^3 + x.

Over GF(q) with q ≡ 3 (mod 4) this curve is supersingular with exactly
q + 1 points, embedding degree 2, and admits the distortion map
phi(x, y) = (-x, i*y) into E(GF(q^2)) — the classical setting for a
*symmetric* bilinear pairing e: G0 x G0 -> GF(q^2), which is what the
paper's CP-ABE construction (section III-A/C) assumes.

G0 is the order-r subgroup of E(GF(q)), reached by multiplying random
curve points by the cofactor h = (q + 1) / r. Scalar multiplication uses
Jacobian coordinates internally to avoid per-step modular inversions.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.numbers import is_prime, legendre_symbol, modinv, sqrt_mod

__all__ = ["CurveParams", "Point"]


@dataclass(frozen=True)
class CurveParams:
    """Parameters of a type-A pairing group.

    ``q``  — base-field prime, q ≡ 3 (mod 4);
    ``r``  — prime order of G0, with r | q + 1;
    ``h``  — cofactor, h = (q + 1) / r.
    """

    q: int
    r: int
    h: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.q % 4 != 3:
            raise ValueError("type-A base prime must satisfy q ≡ 3 (mod 4)")
        if self.h * self.r != self.q + 1:
            raise ValueError("cofactor mismatch: h * r != q + 1")

    def validate(self) -> None:
        """Full (slow) validation including primality checks."""
        if not is_prime(self.q):
            raise ValueError("q is not prime")
        if not is_prime(self.r):
            raise ValueError("r is not prime")

    # -- point constructors ------------------------------------------------------

    def infinity(self) -> "Point":
        return Point(self, 0, 0, infinity=True)

    def point(self, x: int, y: int) -> "Point":
        p = Point(self, x % self.q, y % self.q)
        if not p.is_on_curve():
            raise ValueError("(%d, %d) is not on y^2 = x^3 + x" % (x, y))
        return p

    def lift_x(self, x: int) -> "Point | None":
        """The curve point with this x (canonical y), or None if x^3+x is a
        non-residue."""
        x %= self.q
        rhs = (x * x * x + x) % self.q
        if rhs == 0:
            return Point(self, x, 0)
        if legendre_symbol(rhs, self.q) != 1:
            return None
        y = sqrt_mod(rhs, self.q)
        if y > self.q - y:
            y = self.q - y
        return Point(self, x, y)

    def random_point(self) -> "Point":
        """Uniformly random point of E(GF(q)) (any order)."""
        while True:
            x = secrets.randbelow(self.q)
            p = self.lift_x(x)
            if p is not None:
                if secrets.randbelow(2):
                    p = -p
                return p

    def random_g0(self) -> "Point":
        """Uniformly random point of the prime-order subgroup G0, never O."""
        while True:
            p = self.random_point() * self.h
            if not p.infinity:
                return p

    def __repr__(self) -> str:
        return (
            f"CurveParams(name={self.name!r}, |q|={self.q.bit_length()} bits, "
            f"|r|={self.r.bit_length()} bits)"
        )


class Point:
    """An affine point on a type-A curve (or the point at infinity)."""

    __slots__ = ("curve", "x", "y", "infinity")

    def __init__(self, curve: CurveParams, x: int, y: int, infinity: bool = False):
        object.__setattr__(self, "curve", curve)
        object.__setattr__(self, "x", 0 if infinity else x % curve.q)
        object.__setattr__(self, "y", 0 if infinity else y % curve.q)
        object.__setattr__(self, "infinity", infinity)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    # -- predicates ----------------------------------------------------------------

    def is_on_curve(self) -> bool:
        if self.infinity:
            return True
        q = self.curve.q
        return (self.y * self.y - (self.x * self.x * self.x + self.x)) % q == 0

    def has_order_r(self) -> bool:
        """True for points of exact order r (i.e. nontrivial G0 members)."""
        return not self.infinity and (self * self.curve.r).infinity

    # -- group law -------------------------------------------------------------------

    def __neg__(self) -> "Point":
        if self.infinity:
            return self
        return Point(self.curve, self.x, -self.y)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve is not other.curve and self.curve != other.curve:
            raise ValueError("points on different curves")
        if self.infinity:
            return other
        if other.infinity:
            return self
        q = self.curve.q
        if self.x == other.x:
            if (self.y + other.y) % q == 0:
                return self.curve.infinity()
            # doubling; curve is y^2 = x^3 + a x with a = 1
            slope = (3 * self.x * self.x + 1) * modinv(2 * self.y, q) % q
        else:
            slope = (other.y - self.y) * modinv(other.x - self.x, q) % q
        x3 = (slope * slope - self.x - other.x) % q
        y3 = (slope * (self.x - x3) - self.y) % q
        return Point(self.curve, x3, y3)

    def __sub__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        return self._scalar_mul(scalar)

    __rmul__ = __mul__

    def _scalar_mul(self, scalar: int) -> "Point":
        """Double-and-add in Jacobian coordinates (X/Z^2, Y/Z^3)."""
        if self.infinity:
            return self
        if scalar < 0:
            return (-self)._scalar_mul(-scalar)
        if scalar == 0:
            return self.curve.infinity()

        q = self.curve.q
        # Jacobian doubling/addition for y^2 = x^3 + a x, a = 1.
        X1, Y1, Z1 = self.x, self.y, 1
        Xr, Yr, Zr = 0, 1, 0  # point at infinity

        def jdouble(X: int, Y: int, Z: int) -> tuple[int, int, int]:
            if Z == 0 or Y == 0:
                return 0, 1, 0
            YY = Y * Y % q
            S = 4 * X * YY % q
            ZZ = Z * Z % q
            # M = 3 X^2 + a Z^4 with a = 1
            M = (3 * X * X + ZZ * ZZ) % q
            X2 = (M * M - 2 * S) % q
            Y2 = (M * (S - X2) - 8 * YY * YY) % q
            Z2 = 2 * Y * Z % q
            return X2, Y2, Z2

        def jadd(
            X1: int, Y1: int, Z1: int, X2: int, Y2: int, Z2: int
        ) -> tuple[int, int, int]:
            if Z1 == 0:
                return X2, Y2, Z2
            if Z2 == 0:
                return X1, Y1, Z1
            Z1Z1 = Z1 * Z1 % q
            Z2Z2 = Z2 * Z2 % q
            U1 = X1 * Z2Z2 % q
            U2 = X2 * Z1Z1 % q
            S1 = Y1 * Z2 * Z2Z2 % q
            S2 = Y2 * Z1 * Z1Z1 % q
            if U1 == U2:
                if S1 != S2:
                    return 0, 1, 0
                return jdouble(X1, Y1, Z1)
            H = (U2 - U1) % q
            HH = H * H % q
            HHH = H * HH % q
            Rv = (S2 - S1) % q
            V = U1 * HH % q
            X3 = (Rv * Rv - HHH - 2 * V) % q
            Y3 = (Rv * (V - X3) - S1 * HHH) % q
            Z3 = Z1 * Z2 * H % q
            return X3, Y3, Z3

        for bit in bin(scalar)[2:]:
            Xr, Yr, Zr = jdouble(Xr, Yr, Zr)
            if bit == "1":
                Xr, Yr, Zr = jadd(Xr, Yr, Zr, X1, Y1, Z1)

        if Zr == 0:
            return self.curve.infinity()
        z_inv = modinv(Zr, q)
        z_inv2 = z_inv * z_inv % q
        return Point(self.curve, Xr * z_inv2 % q, Yr * z_inv2 * z_inv % q)

    # -- encoding --------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Uncompressed encoding: 0x00 for infinity, else 0x04 || x || y."""
        if self.infinity:
            return b"\x00"
        width = (self.curve.q.bit_length() + 7) // 8
        return b"\x04" + self.x.to_bytes(width, "big") + self.y.to_bytes(width, "big")

    @classmethod
    def from_bytes(cls, curve: CurveParams, data: bytes) -> "Point":
        if data == b"\x00":
            return curve.infinity()
        width = (curve.q.bit_length() + 7) // 8
        if len(data) != 1 + 2 * width or data[0] != 0x04:
            raise ValueError("malformed point encoding")
        x = int.from_bytes(data[1 : 1 + width], "big")
        y = int.from_bytes(data[1 + width :], "big")
        return curve.point(x, y)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.curve != other.curve:
            return False
        if self.infinity or other.infinity:
            return self.infinity and other.infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.curve.q, self.curve.r, self.infinity, self.x, self.y))

    def __repr__(self) -> str:
        if self.infinity:
            return "Point(infinity)"
        return f"Point({self.x}, {self.y})"
