"""Fixed-base scalar multiplication with windowed precomputation.

CP-ABE spends most of its exponentiations on a handful of *fixed* bases —
the generator g and h = g^beta appear in every leaf component, every key
component and every KeyGen. For a fixed base, a one-time table of
window powers turns each scalar multiplication from ~1.5 * log2(r) point
operations into ~log2(r)/w table additions with NO doublings:

    precompute  B[i][d] = (d * 16^i) * base   for each 4-bit window i
    multiply    k * base = sum_i B[i][window_i(k)]

For |r| = 160 and w = 4 that is a 40-addition multiply after a 600-entry
table — about 3x faster here (measured in ablation A9), at ~100 KB of
table per base. Used opportunistically by CP-ABE via
:class:`FixedBaseMult`; correctness is equivalence-tested against the
generic ladder.
"""

from __future__ import annotations

from repro.crypto.ec import Point

__all__ = ["FixedBaseMult"]


class FixedBaseMult:
    """A precomputed multiplier for one fixed point."""

    def __init__(self, base: Point, window_bits: int = 4, max_scalar_bits: int | None = None):
        if base.infinity:
            raise ValueError("cannot precompute for the point at infinity")
        if not 1 <= window_bits <= 8:
            raise ValueError("window_bits must be in 1..8")
        self.base = base
        self.window_bits = window_bits
        bits = max_scalar_bits or base.curve.r.bit_length()
        self._windows = (bits + window_bits - 1) // window_bits
        self._mask = (1 << window_bits) - 1

        # table[i][d] = (d << (w*i)) * base, for d in 1..2^w - 1.
        table: list[list[Point]] = []
        window_base = base
        for _ in range(self._windows):
            row = [window_base]
            for _ in range(self._mask - 1):
                row.append(row[-1] + window_base)
            table.append(row)
            # Advance to the next window: multiply by 2^w via doublings.
            for _ in range(window_bits):
                window_base = window_base + window_base
        self._table = table

    def multiply(self, scalar: int) -> Point:
        """``scalar * base`` via table lookups (scalar reduced mod r).

        Additions accumulate in Jacobian coordinates with *mixed* addition
        (table entries are affine, Z=1), so the whole multiply costs one
        modular inversion instead of one per window.
        """
        from repro.crypto.numbers import modinv

        scalar %= self.base.curve.r
        if scalar == 0:
            return self.base.curve.infinity()
        q = self.base.curve.q

        # Jacobian accumulator (X, Y, Z); Z == 0 encodes infinity.
        X1, Y1, Z1 = 0, 1, 0
        index = 0
        while scalar and index < self._windows:
            digit = scalar & self._mask
            if digit:
                point = self._table[index][digit - 1]
                X1, Y1, Z1 = self._mixed_add(X1, Y1, Z1, point.x, point.y, q)
            scalar >>= self.window_bits
            index += 1
        if scalar:
            # Scalar exceeded the precomputed range (cannot happen once
            # reduced mod r); fall back for the remainder.
            extra = self.base * (scalar << (self.window_bits * self._windows))
            if not extra.infinity:
                X1, Y1, Z1 = self._mixed_add(X1, Y1, Z1, extra.x, extra.y, q)

        if Z1 == 0:
            return self.base.curve.infinity()
        z_inv = modinv(Z1, q)
        z_inv2 = z_inv * z_inv % q
        return Point(self.base.curve, X1 * z_inv2 % q, Y1 * z_inv2 * z_inv % q)

    @staticmethod
    def _mixed_add(
        X1: int, Y1: int, Z1: int, x2: int, y2: int, q: int
    ) -> tuple[int, int, int]:
        """Jacobian (X1,Y1,Z1) + affine (x2,y2) on y^2 = x^3 + x."""
        if Z1 == 0:
            return x2, y2, 1
        Z1Z1 = Z1 * Z1 % q
        U2 = x2 * Z1Z1 % q
        S2 = y2 * Z1 * Z1Z1 % q
        if U2 == X1:
            if S2 != Y1 % q:
                return 0, 1, 0  # P + (-P) = O
            # Doubling (a = 1 curve): M = 3X^2 + Z^4.
            YY = Y1 * Y1 % q
            S = 4 * X1 * YY % q
            M = (3 * X1 * X1 + Z1Z1 * Z1Z1) % q
            X3 = (M * M - 2 * S) % q
            Y3 = (M * (S - X3) - 8 * YY * YY) % q
            Z3 = 2 * Y1 * Z1 % q
            return X3, Y3, Z3
        H = (U2 - X1) % q
        HH = H * H % q
        HHH = H * HH % q
        Rv = (S2 - Y1) % q
        V = X1 * HH % q
        X3 = (Rv * Rv - HHH - 2 * V) % q
        Y3 = (Rv * (V - X3) - Y1 * HHH) % q
        Z3 = Z1 * H % q
        return X3, Y3, Z3

    def table_size(self) -> int:
        """Number of precomputed points (memory footprint proxy)."""
        return sum(len(row) for row in self._table)
