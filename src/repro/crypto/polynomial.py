"""Polynomials over prime fields.

Provides the polynomial machinery behind Shamir's secret sharing (paper
section III-B) and CP-ABE's per-node secret-sharing polynomials (paper
section III-C): random polynomial generation with a fixed constant term,
Horner evaluation, and Lagrange interpolation (both full interpolation and
the "evaluate at zero" shortcut via Lagrange basis coefficients).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

from repro.crypto.field import FieldElement, PrimeField
from repro.crypto.numbers import batch_modinv

__all__ = [
    "Polynomial",
    "lagrange_coefficients_at_zero",
    "lagrange_interpolate_at",
]

# Bounded LRU for Lagrange-at-zero coefficient vectors, keyed by
# (field modulus, evaluation points). Threshold reconstructions reuse a
# tiny set of index tuples — Shamir uses share x-coordinates, CP-ABE uses
# child indices 1..n — so this cache turns the O(n^2) + inversion work
# into a dict hit on every decrypt after the first.
_LAGRANGE_CACHE: "OrderedDict[tuple[int, tuple[int, ...]], tuple[int, ...]]" = (
    OrderedDict()
)
_LAGRANGE_CACHE_MAX = 4096


class Polynomial:
    """An immutable polynomial over a :class:`PrimeField`.

    Coefficients are stored lowest-degree first: ``coeffs[i]`` multiplies
    ``x**i``. Trailing zero coefficients are stripped so that ``degree`` is
    canonical; the zero polynomial has ``degree == -1``.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Sequence[FieldElement | int]):
        normalized = [c if isinstance(c, FieldElement) else field(c) for c in coeffs]
        for c in normalized:
            if c.field != field:
                raise ValueError("coefficient from a different field")
        while normalized and normalized[-1].is_zero():
            normalized.pop()
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "coeffs", tuple(normalized))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polynomial is immutable")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def random(
        cls,
        field: PrimeField,
        degree: int,
        constant_term: FieldElement | int | None = None,
    ) -> "Polynomial":
        """Random polynomial of *exactly* ``degree`` (leading coeff nonzero).

        When ``constant_term`` is given it becomes ``P(0)`` — this is how a
        Shamir dealer embeds the secret. ``degree == 0`` with a fixed
        constant term returns the constant polynomial (which is what a
        threshold of 1 means: every share equals the secret).
        """
        if degree < 0:
            raise ValueError("degree must be >= 0, got %d" % degree)
        if constant_term is None:
            c0 = field.random()
        elif isinstance(constant_term, FieldElement):
            c0 = constant_term
        else:
            c0 = field(constant_term)
        coeffs: list[FieldElement] = [c0]
        for _ in range(degree - 1):
            coeffs.append(field.random())
        if degree >= 1:
            coeffs.append(field.random_nonzero())
        return cls(field, coeffs)

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [])

    # -- queries ---------------------------------------------------------------

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def constant_term(self) -> FieldElement:
        if not self.coeffs:
            return self.field.zero()
        return self.coeffs[0]

    def __call__(self, x: FieldElement | int) -> FieldElement:
        """Evaluate via Horner's method."""
        if isinstance(x, int):
            x = self.field(x)
        result = self.field.zero()
        for coeff in reversed(self.coeffs):
            result = result * x + coeff
        return result

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        if other.field != self.field:
            raise ValueError("polynomials over different fields")
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        coeffs = list(a)
        for i, c in enumerate(b):
            coeffs[i] = coeffs[i] + c
        return Polynomial(self.field, coeffs)

    def __mul__(self, other: "Polynomial | FieldElement | int") -> "Polynomial":
        if isinstance(other, (FieldElement, int)):
            scalar = other if isinstance(other, FieldElement) else self.field(other)
            return Polynomial(self.field, [c * scalar for c in self.coeffs])
        if not isinstance(other, Polynomial):
            return NotImplemented
        if other.field != self.field:
            raise ValueError("polynomials over different fields")
        if not self.coeffs or not other.coeffs:
            return Polynomial.zero(self.field)
        out = [self.field.zero()] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            for j, b in enumerate(other.coeffs):
                out[i + j] = out[i + j] + a * b
        return Polynomial(self.field, out)

    __rmul__ = __mul__

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.field, [-c for c in self.coeffs])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (-other)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.field == other.field
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((self.field, self.coeffs))

    def __repr__(self) -> str:
        if not self.coeffs:
            return "Polynomial(0)"
        terms = " + ".join(
            f"{int(c)}*x^{i}" if i else str(int(c))
            for i, c in enumerate(self.coeffs)
            if not c.is_zero()
        )
        return f"Polynomial({terms} over GF({self.field.p}))"


def lagrange_coefficients_at_zero(
    field: PrimeField, xs: Sequence[FieldElement | int], use_cache: bool = True
) -> list[FieldElement]:
    """Lagrange basis coefficients gamma_j evaluated at x = 0.

    Given distinct evaluation points ``xs``, returns the coefficients such
    that ``P(0) = sum_j gamma_j * P(xs[j])`` for any polynomial ``P`` of
    degree < len(xs). This is exactly the reconstruction formula of the
    paper's section III-B:

        gamma_j = prod_{j' != j} s_{j'} / (s_{j'} - s_j)

    All n denominators are inverted with one Montgomery batch inversion
    (one egcd instead of n), and the resulting vector is memoized in a
    bounded cache keyed by ``(field.p, tuple(points))`` — both Shamir
    reconstruction and CP-ABE's threshold-gate recombination hit the same
    handful of index sets over and over. Pass ``use_cache=False`` to force
    a fresh computation (the equivalence tests pin both paths equal).
    """
    for x in xs:
        if isinstance(x, FieldElement) and x.field != field:
            raise ValueError("evaluation point from a different field")
    points = [int(x) % field.p for x in xs]
    if len(set(points)) != len(points):
        raise ValueError("evaluation points must be distinct")
    if any(p == 0 for p in points):
        raise ValueError("x = 0 must not be an evaluation point")

    key = (field.p, tuple(points))
    if use_cache:
        cached = _LAGRANGE_CACHE.get(key)
        if cached is not None:
            _LAGRANGE_CACHE.move_to_end(key)
            return [field(c) for c in cached]

    p = field.p
    numerators: list[int] = []
    denominators: list[int] = []
    for j, xj in enumerate(points):
        num = 1
        den = 1
        for j2, xj2 in enumerate(points):
            if j2 == j:
                continue
            num = num * xj2 % p
            den = den * (xj2 - xj) % p
        numerators.append(num)
        denominators.append(den)
    inverses = batch_modinv(denominators, p)
    values = tuple(n * inv % p for n, inv in zip(numerators, inverses))

    if use_cache:
        _LAGRANGE_CACHE[key] = values
        if len(_LAGRANGE_CACHE) > _LAGRANGE_CACHE_MAX:
            _LAGRANGE_CACHE.popitem(last=False)
    return [field(c) for c in values]


def lagrange_interpolate_at(
    field: PrimeField,
    points: Sequence[tuple[FieldElement | int, FieldElement | int]],
    x: FieldElement | int,
) -> FieldElement:
    """Evaluate, at ``x``, the unique degree-<len(points) polynomial through
    ``points`` (a sequence of ``(x_j, y_j)`` pairs with distinct ``x_j``)."""
    if isinstance(x, int):
        x = field(x)
    xs = [p[0] if isinstance(p[0], FieldElement) else field(p[0]) for p in points]
    ys = [p[1] if isinstance(p[1], FieldElement) else field(p[1]) for p in points]
    if len({p.value for p in xs}) != len(xs):
        raise ValueError("interpolation points must have distinct x coordinates")
    total = field.zero()
    for j, (xj, yj) in enumerate(zip(xs, ys)):
        num = field.one()
        den = field.one()
        for j2, xj2 in enumerate(xs):
            if j2 == j:
                continue
            num = num * (x - xj2)
            den = den * (xj - xj2)
        total = total + yj * num / den
    return total
