"""Prime-field arithmetic GF(p).

A :class:`PrimeField` instance represents the field; :class:`FieldElement`
instances are immutable values carrying a reference to their field so that
cross-field operations are rejected loudly instead of producing garbage.

This module backs Shamir's secret sharing (the finite field ``F`` of the
paper's section III-B) and the base field of the pairing-friendly curve.
"""

from __future__ import annotations

import secrets
from typing import Iterator

from repro.crypto.numbers import is_prime, modinv, sqrt_mod

__all__ = ["PrimeField", "FieldElement"]

# Optional compiled mulmod installed by repro.crypto.accel when its
# calibration finds the FFI crossing cheaper than native ``a*b % p``
# (``None`` otherwise — the common case for ≤512-bit moduli).
_MULMOD = None


class PrimeField:
    """The finite field of integers modulo a prime ``p``."""

    __slots__ = ("p",)

    def __init__(self, p: int, check_prime: bool = True):
        if p < 2:
            raise ValueError("field modulus must be >= 2, got %d" % p)
        if check_prime and not is_prime(p):
            raise ValueError("field modulus %d is not prime" % p)
        self.p = p

    # -- element constructors -------------------------------------------------

    def __call__(self, value: int) -> "FieldElement":
        return FieldElement(self, value % self.p)

    def zero(self) -> "FieldElement":
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        return FieldElement(self, 1)

    def random(self) -> "FieldElement":
        """Uniformly random field element (cryptographically secure)."""
        return FieldElement(self, secrets.randbelow(self.p))

    def random_nonzero(self) -> "FieldElement":
        """Uniformly random element of the multiplicative group."""
        return FieldElement(self, secrets.randbelow(self.p - 1) + 1)

    def from_bytes(self, data: bytes) -> "FieldElement":
        """Element from big-endian bytes, reduced modulo ``p``."""
        return FieldElement(self, int.from_bytes(data, "big") % self.p)

    # -- field metadata --------------------------------------------------------

    @property
    def order(self) -> int:
        return self.p

    @property
    def byte_length(self) -> int:
        """Bytes needed to encode any canonical element."""
        return (self.p.bit_length() + 7) // 8

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate over all field elements (only sensible for tiny fields)."""
        for v in range(self.p):
            yield FieldElement(self, v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return f"PrimeField({self.p})"


class FieldElement:
    """An immutable element of a :class:`PrimeField`."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value % field.p)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FieldElement is immutable")

    # -- coercion helpers ------------------------------------------------------

    def _coerce(self, other: "FieldElement | int") -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise ValueError(
                    "cannot mix elements of GF(%d) and GF(%d)"
                    % (self.field.p, other.field.p)
                )
            return other
        if isinstance(other, int):
            return FieldElement(self.field, other)
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value + o.value)

    __radd__ = __add__

    def __sub__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value - o.value)

    def __rsub__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, o.value - self.value)

    def __mul__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        if _MULMOD is not None:
            return FieldElement(self.field, _MULMOD(self.value, o.value, self.field.p))
        return FieldElement(self.field, self.value * o.value)

    __rmul__ = __mul__

    def __truediv__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return self * o.inverse()

    def __rtruediv__(self, other: "FieldElement | int") -> "FieldElement":
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o * self.inverse()

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, -self.value)

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(self.field, pow(self.value, exponent, self.field.p))

    def inverse(self) -> "FieldElement":
        return FieldElement(self.field, modinv(self.value, self.field.p))

    def sqrt(self) -> "FieldElement":
        """A square root, raising :class:`ValueError` for non-residues."""
        return FieldElement(self.field, sqrt_mod(self.value, self.field.p))

    def is_square(self) -> bool:
        if self.value == 0:
            return True
        return pow(self.value, (self.field.p - 1) // 2, self.field.p) == 1

    # -- predicates / conversions ----------------------------------------------

    def is_zero(self) -> bool:
        return self.value == 0

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(self.field.byte_length, "big")

    def __int__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.p
        return (
            isinstance(other, FieldElement)
            and self.field == other.field
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"FieldElement({self.value} mod {self.field.p})"
