"""Number-theoretic primitives used throughout the crypto substrate.

Everything in this module is implemented from first principles (no
dependency on ``sympy`` or similar): extended Euclid, modular inverses,
Miller--Rabin primality testing, deterministic trial division for small
inputs, Tonelli--Shanks modular square roots, and random prime generation.

These primitives back the prime-field arithmetic (:mod:`repro.crypto.field`),
the pairing parameter generation (:mod:`repro.crypto.params`) and Shamir's
secret sharing (:mod:`repro.crypto.shamir`).
"""

from __future__ import annotations

import secrets

__all__ = [
    "egcd",
    "modinv",
    "batch_modinv",
    "raise_not_invertible",
    "is_prime",
    "next_prime",
    "random_prime",
    "sqrt_mod",
    "legendre_symbol",
    "PrimalityError",
]

# Active compiled backend for the hot primitives (installed by
# :mod:`repro.crypto.accel`); ``None`` means the pure-Python tier.  The
# pure implementations below stay the always-tested reference — the
# backend must agree with them bit for bit (see tests/crypto/test_accel).
_BACKEND = None

# Primes below 100, used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

# Witness set sufficient for a *deterministic* Miller-Rabin answer for all
# n < 3,317,044,064,679,887,385,961,981 (Sorenson & Webster, 2015).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


class PrimalityError(ValueError):
    """Raised when a prime was required but the argument is composite."""


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def raise_not_invertible(a: int, m: int, index: "int | None" = None) -> None:
    """Raise the canonical :class:`ZeroDivisionError` for a non-invertible
    value.

    Both tiers funnel their failures through here so the error text is
    byte-identical whether the pure Montgomery chain or the compiled GMP
    kernel detected the problem.  ``index`` attributes the failure to a
    position in a batch (the first offending element).
    """
    a %= m
    if a == 0:
        if index is None:
            raise ZeroDivisionError("0 has no inverse modulo %d" % m)
        raise ZeroDivisionError("0 has no inverse modulo %d (element %d)" % (m, index))
    g = egcd(a, m)[0]
    if index is None:
        raise ZeroDivisionError("%d has no inverse modulo %d (gcd=%d)" % (a, m, g))
    raise ZeroDivisionError(
        "%d has no inverse modulo %d (gcd=%d, element %d)" % (a, m, g, index)
    )


def _modinv_pure(a: int, m: int) -> int:
    """Reference-tier extended-Euclid inverse."""
    a %= m
    if a == 0:
        raise_not_invertible(0, m)
    g, x, _ = egcd(a, m)
    if g != 1:
        raise_not_invertible(a, m)
    return x % m


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ZeroDivisionError` when ``gcd(a, m) != 1``.
    """
    if _BACKEND is not None:
        return _BACKEND.modinv(a, m)
    return _modinv_pure(a, m)


def _batch_modinv_pure(values: "list[int] | tuple[int, ...]", m: int) -> list[int]:
    """Reference-tier Montgomery batch inversion."""
    reduced = [v % m for v in values]
    if not reduced:
        return []
    prefix = [0] * len(reduced)
    acc = 1
    for i, v in enumerate(reduced):
        if v == 0:
            raise_not_invertible(0, m, index=i)
        acc = acc * v % m
        prefix[i] = acc
    # One egcd for the whole batch.  A non-coprime element poisons the
    # product, so on failure rescan for the *first* offender and raise
    # with its index instead of blaming the opaque prefix product.
    try:
        inv = _modinv_pure(acc, m)
    except ZeroDivisionError:
        for i, v in enumerate(reduced):
            if egcd(v, m)[0] != 1:
                raise_not_invertible(v, m, index=i)
        raise
    out = [0] * len(reduced)
    for i in range(len(reduced) - 1, 0, -1):
        out[i] = prefix[i - 1] * inv % m
        inv = inv * reduced[i] % m
    out[0] = inv
    return out


def batch_modinv(values: "list[int] | tuple[int, ...]", m: int) -> list[int]:
    """Inverses of all ``values`` modulo ``m`` via Montgomery's trick.

    One :func:`modinv` plus ``3(n-1)`` multiplications instead of ``n``
    extended-Euclid runs — the workhorse behind merged Miller loops and
    batched Lagrange coefficients, where the per-element ``egcd`` would
    otherwise dominate the hot path.

    Element-wise equivalent to ``[modinv(v, m) for v in values]``: raises
    :class:`ZeroDivisionError` if any element is zero or shares a factor
    with ``m``, attributing the failure to the first offending index —
    never a garbage prefix-product result.  Both tiers raise the same
    error through :func:`raise_not_invertible`.
    """
    if _BACKEND is not None:
        return _BACKEND.batch_modinv(values, m)
    return _batch_modinv_pure(values, m)


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True when ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 40) -> bool:
    """Primality test.

    Deterministic (via a fixed witness set) for ``n`` below ~3.3e24 and
    probabilistic Miller--Rabin with ``rounds`` random bases above that,
    giving an error probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        witnesses = [secrets.randbelow(n - 3) + 2 for _ in range(rounds)]

    for a in witnesses:
        if a % n == 0:
            continue
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def random_prime(bits: int) -> int:
    """Random prime of exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits, got %d" % bits)
    while True:
        candidate = secrets.randbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol (a/p) for odd prime ``p``: 1, -1 or 0."""
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return -1 if result == p - 1 else result


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo the odd prime ``p``.

    Uses the fast ``p % 4 == 3`` exponentiation shortcut when possible and
    Tonelli--Shanks otherwise. Raises :class:`ValueError` when ``a`` is a
    quadratic non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if legendre_symbol(a, p) != 1:
        raise ValueError("%d is not a quadratic residue modulo %d" % (a, p))

    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)

    # Tonelli-Shanks: write p - 1 = q * 2^s with q odd.
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1

    # Find a quadratic non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1

    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find the least i, 0 < i < m, with t^(2^i) == 1.
        i = 0
        t2i = t
        while t2i != 1:
            t2i = t2i * t2i % p
            i += 1
            if i == m:
                raise ValueError("sqrt_mod failed; %d is not prime?" % p)
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r
