"""BLS short signatures over the type-A pairing.

The paper's security analysis (section VI-A/B) proposes defending against
a malicious service provider or storage host that tampers with
``URL_O``, the puzzle key ``K_Z``, the questions, or the stored ciphertext
by having the sharer *sign* those components. Any pairing-based signature
works; BLS is the natural fit since the pairing substrate is already here:

    sk = x in Z_r,  pk = g^x,  sign(m) = H(m)^x,
    verify: ê(sigma, g) == ê(H(m), pk).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.ec import CurveParams, Point
from repro.crypto.hash_to_group import hash_to_g0
from repro.crypto.pairing import Pairing

__all__ = ["BlsKeyPair", "BlsScheme"]


@dataclass(frozen=True)
class BlsKeyPair:
    """A BLS signing key and its public counterpart."""

    secret: int
    public: Point


class BlsScheme:
    """BLS signing/verification bound to fixed parameters and generator."""

    def __init__(self, params: CurveParams, generator: Point | None = None):
        self.params = params
        self.pairing = Pairing(params)
        self.generator = generator if generator is not None else params.random_g0()
        if self.generator.infinity or not self.generator.has_order_r():
            raise ValueError("generator must have order r")

    def keygen(self) -> BlsKeyPair:
        secret = secrets.randbelow(self.params.r - 1) + 1
        return BlsKeyPair(secret=secret, public=self.generator * secret)

    def sign(self, secret: int, message: bytes) -> Point:
        if not 0 < secret < self.params.r:
            raise ValueError("secret key out of range")
        return hash_to_g0(self.params, message) * secret

    def verify(self, public: Point, message: bytes, signature: Point) -> bool:
        # Subgroup checks: signature points arrive from untrusted parties;
        # a point outside G0 (order dividing q+1 but not r) would otherwise
        # feed the pairing garbage. Costs one scalar multiplication.
        if signature.infinity or not signature.is_on_curve():
            return False
        if not signature.has_order_r():
            return False
        if public.infinity or not public.is_on_curve() or not public.has_order_r():
            return False
        lhs = self.pairing.pair(signature, self.generator)
        rhs = self.pairing.pair(hash_to_g0(self.params, message), public)
        return lhs == rhs
