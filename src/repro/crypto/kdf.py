"""Key derivation functions.

* :func:`hkdf` — RFC 5869 extract-and-expand, the library default for
  deriving the object key ``K_O = H(M_O)`` with domain separation.
* :func:`evp_bytes_to_key` — OpenSSL's legacy ``EVP_BytesToKey`` with MD5
  replaced by a configurable digest; in its SHA-256/one-iteration form it
  is what GibberishAES (the JavaScript library used by the paper's
  Implementation 1) uses to turn a passphrase + salt into an AES key + IV.
"""

from __future__ import annotations

from repro.crypto import hashes
from repro.crypto.mac import hmac_digest

__all__ = ["hkdf", "hkdf_extract", "hkdf_expand", "evp_bytes_to_key"]


def hkdf_extract(salt: bytes, ikm: bytes, digestmod: str = "sha3_256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, ikm)."""
    if not salt:
        salt = b"\x00" * hashes.new(digestmod).digest_size
    return hmac_digest(salt, ikm, digestmod)


def hkdf_expand(
    prk: bytes, info: bytes, length: int, digestmod: str = "sha3_256"
) -> bytes:
    """HKDF-Expand: OKM of ``length`` bytes."""
    digest_size = hashes.new(digestmod).digest_size
    if length > 255 * digest_size:
        raise ValueError("HKDF output too long: %d bytes" % length)
    okm = b""
    block = b""
    counter = 1
    while len(okm) < length:
        block = hmac_digest(prk, block + info + bytes([counter]), digestmod)
        okm += block
        counter += 1
    return okm[:length]


def hkdf(
    ikm: bytes,
    length: int,
    salt: bytes = b"",
    info: bytes = b"",
    digestmod: str = "sha3_256",
) -> bytes:
    """One-shot HKDF (RFC 5869)."""
    return hkdf_expand(hkdf_extract(salt, ikm, digestmod), info, length, digestmod)


def evp_bytes_to_key(
    passphrase: bytes,
    salt: bytes,
    key_len: int,
    iv_len: int,
    digestmod: str = "sha256",
    iterations: int = 1,
) -> tuple[bytes, bytes]:
    """OpenSSL ``EVP_BytesToKey`` key/IV derivation.

    D_1 = H(pass || salt); D_i = H(D_{i-1} || pass || salt); key material is
    the concatenation of the D_i. GibberishAES uses this (with enough
    rounds to fill key + IV) for its ``Salted__`` container.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    derived = b""
    block = b""
    while len(derived) < key_len + iv_len:
        block = hashes.new(digestmod, block + passphrase + salt).digest()
        for _ in range(iterations - 1):
            block = hashes.new(digestmod, block).digest()
        derived += block
    return derived[:key_len], derived[key_len : key_len + iv_len]
