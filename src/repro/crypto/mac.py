"""HMAC (FIPS 198-1) over the from-scratch hash functions.

Also provides :func:`keyed_hash`, the puzzle-keyed answer hash
``H(a_i, K_Z)`` of the paper's Construction 1 — implemented as HMAC with
the puzzle key so that answer digests are bound to a specific puzzle and
cannot be precomputed across puzzles (rainbow-table resistance, as the
paper's security analysis assumes).
"""

from __future__ import annotations

from typing import Callable

from repro.crypto import hashes

__all__ = ["HMAC", "hmac_digest", "keyed_hash", "constant_time_compare"]


class HMAC:
    """HMAC with any of the :mod:`repro.crypto.hashes` constructors."""

    def __init__(
        self,
        key: bytes,
        msg: bytes = b"",
        digestmod: str | Callable[..., object] = "sha3_256",
    ):
        if isinstance(digestmod, str):
            self._new = lambda d=b"": hashes.new(digestmod, d)
        else:
            self._new = digestmod  # type: ignore[assignment]
        probe = self._new()
        self.digest_size = probe.digest_size
        block_size = probe.block_size

        if len(key) > block_size:
            key = self._new(key).digest()
        key = key.ljust(block_size, b"\x00")
        self._outer_key = bytes(b ^ 0x5C for b in key)
        self._inner = self._new(bytes(b ^ 0x36 for b in key))
        if msg:
            self._inner.update(msg)

    def update(self, msg: bytes) -> None:
        self._inner.update(msg)

    def copy(self) -> "HMAC":
        clone = object.__new__(HMAC)
        clone._new = self._new
        clone.digest_size = self.digest_size
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        outer = self._new(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        return self.digest().hex()


def hmac_digest(key: bytes, msg: bytes, digestmod: str = "sha3_256") -> bytes:
    return HMAC(key, msg, digestmod).digest()


def keyed_hash(answer: bytes, puzzle_key: bytes, digestmod: str = "sha3_256") -> bytes:
    """The paper's ``H(a_i, K_Z)``: hash of an answer keyed by the puzzle key."""
    return hmac_digest(puzzle_key, answer, digestmod)


def constant_time_compare(a: bytes, b: bytes) -> bool:
    """Timing-safe equality for digests."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
