"""The AES block cipher (FIPS 197) implemented from scratch.

The S-box and its inverse are *computed* from the AES finite-field
definition (multiplicative inverse in GF(2^8) followed by an affine map)
rather than pasted as magic tables, and encryption/decryption use
precomputed T-tables for speed — the same trick native implementations use,
which keeps pure-Python AES fast enough to encrypt the paper's payloads
(100-character messages up to multi-kilobyte pictures) in microseconds to
milliseconds.

Only the raw block transform lives here; chaining modes and padding are in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

import struct

__all__ = ["AES", "SBOX", "INV_SBOX"]


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # GF(2^8) inverse via exponentiation tables on generator 3.
    exp = [0] * 510
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # Affine transformation over GF(2).
        b = inv
        transformed = 0x63
        for shift in (0, 1, 2, 3, 4):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            transformed ^= rotated
        sbox[value] = transformed

    inv_sbox = [0] * 256
    for value, substituted in enumerate(sbox):
        inv_sbox[substituted] = value
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# Encryption T-tables: Te0[x] = MixColumn(SubBytes(x) in column position 0).
_TE0 = [0] * 256
_TE1 = [0] * 256
_TE2 = [0] * 256
_TE3 = [0] * 256
_TD0 = [0] * 256
_TD1 = [0] * 256
_TD2 = [0] * 256
_TD3 = [0] * 256

for _x in range(256):
    _s = SBOX[_x]
    _t = (
        (_gf_mul(_s, 2) << 24)
        | (_s << 16)
        | (_s << 8)
        | _gf_mul(_s, 3)
    )
    _TE0[_x] = _t
    _TE1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    _TE2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    _TE3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF

    _si = INV_SBOX[_x]
    _t = (
        (_gf_mul(_si, 14) << 24)
        | (_gf_mul(_si, 9) << 16)
        | (_gf_mul(_si, 13) << 8)
        | _gf_mul(_si, 11)
    )
    _TD0[_x] = _t
    _TD1[_x] = ((_t >> 8) | (_t << 24)) & 0xFFFFFFFF
    _TD2[_x] = ((_t >> 16) | (_t << 16)) & 0xFFFFFFFF
    _TD3[_x] = ((_t >> 24) | (_t << 8)) & 0xFFFFFFFF

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


class AES:
    """AES-128/192/256 raw block cipher."""

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes, got %d" % len(key))
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._inv_round_keys = self._invert_round_keys()

    # -- key schedule ----------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        total_words = 4 * (self.rounds + 1)
        words = list(struct.unpack(">%dI" % nk, key))
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _invert_round_keys(self) -> list[int]:
        """Equivalent-inverse-cipher round keys (InvMixColumns applied)."""
        rk = self._round_keys
        inv: list[int] = [0] * len(rk)
        n = self.rounds
        for rnd in range(n + 1):
            for c in range(4):
                word = rk[4 * (n - rnd) + c]
                if 0 < rnd < n:
                    word = (
                        _TD0[SBOX[(word >> 24) & 0xFF]]
                        ^ _TD1[SBOX[(word >> 16) & 0xFF]]
                        ^ _TD2[SBOX[(word >> 8) & 0xFF]]
                        ^ _TD3[SBOX[word & 0xFF]]
                    )
                inv[4 * rnd + c] = word
        return inv

    # -- block transforms --------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        rk = self._round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        i = 4
        for _ in range(self.rounds - 1):
            t0 = (
                _TE0[(s0 >> 24) & 0xFF]
                ^ _TE1[(s1 >> 16) & 0xFF]
                ^ _TE2[(s2 >> 8) & 0xFF]
                ^ _TE3[s3 & 0xFF]
                ^ rk[i]
            )
            t1 = (
                _TE0[(s1 >> 24) & 0xFF]
                ^ _TE1[(s2 >> 16) & 0xFF]
                ^ _TE2[(s3 >> 8) & 0xFF]
                ^ _TE3[s0 & 0xFF]
                ^ rk[i + 1]
            )
            t2 = (
                _TE0[(s2 >> 24) & 0xFF]
                ^ _TE1[(s3 >> 16) & 0xFF]
                ^ _TE2[(s0 >> 8) & 0xFF]
                ^ _TE3[s1 & 0xFF]
                ^ rk[i + 2]
            )
            t3 = (
                _TE0[(s3 >> 24) & 0xFF]
                ^ _TE1[(s0 >> 16) & 0xFF]
                ^ _TE2[(s1 >> 8) & 0xFF]
                ^ _TE3[s2 & 0xFF]
                ^ rk[i + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            i += 4
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        out0 = (
            (SBOX[(s0 >> 24) & 0xFF] << 24)
            | (SBOX[(s1 >> 16) & 0xFF] << 16)
            | (SBOX[(s2 >> 8) & 0xFF] << 8)
            | SBOX[s3 & 0xFF]
        ) ^ rk[i]
        out1 = (
            (SBOX[(s1 >> 24) & 0xFF] << 24)
            | (SBOX[(s2 >> 16) & 0xFF] << 16)
            | (SBOX[(s3 >> 8) & 0xFF] << 8)
            | SBOX[s0 & 0xFF]
        ) ^ rk[i + 1]
        out2 = (
            (SBOX[(s2 >> 24) & 0xFF] << 24)
            | (SBOX[(s3 >> 16) & 0xFF] << 16)
            | (SBOX[(s0 >> 8) & 0xFF] << 8)
            | SBOX[s1 & 0xFF]
        ) ^ rk[i + 2]
        out3 = (
            (SBOX[(s3 >> 24) & 0xFF] << 24)
            | (SBOX[(s0 >> 16) & 0xFF] << 16)
            | (SBOX[(s1 >> 8) & 0xFF] << 8)
            | SBOX[s2 & 0xFF]
        ) ^ rk[i + 3]
        return struct.pack(">4I", out0, out1, out2, out3)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes, got %d" % len(block))
        rk = self._inv_round_keys
        s0, s1, s2, s3 = struct.unpack(">4I", block)
        s0 ^= rk[0]
        s1 ^= rk[1]
        s2 ^= rk[2]
        s3 ^= rk[3]
        i = 4
        for _ in range(self.rounds - 1):
            t0 = (
                _TD0[(s0 >> 24) & 0xFF]
                ^ _TD1[(s3 >> 16) & 0xFF]
                ^ _TD2[(s2 >> 8) & 0xFF]
                ^ _TD3[s1 & 0xFF]
                ^ rk[i]
            )
            t1 = (
                _TD0[(s1 >> 24) & 0xFF]
                ^ _TD1[(s0 >> 16) & 0xFF]
                ^ _TD2[(s3 >> 8) & 0xFF]
                ^ _TD3[s2 & 0xFF]
                ^ rk[i + 1]
            )
            t2 = (
                _TD0[(s2 >> 24) & 0xFF]
                ^ _TD1[(s1 >> 16) & 0xFF]
                ^ _TD2[(s0 >> 8) & 0xFF]
                ^ _TD3[s3 & 0xFF]
                ^ rk[i + 2]
            )
            t3 = (
                _TD0[(s3 >> 24) & 0xFF]
                ^ _TD1[(s2 >> 16) & 0xFF]
                ^ _TD2[(s1 >> 8) & 0xFF]
                ^ _TD3[s0 & 0xFF]
                ^ rk[i + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            i += 4
        out0 = (
            (INV_SBOX[(s0 >> 24) & 0xFF] << 24)
            | (INV_SBOX[(s3 >> 16) & 0xFF] << 16)
            | (INV_SBOX[(s2 >> 8) & 0xFF] << 8)
            | INV_SBOX[s1 & 0xFF]
        ) ^ rk[i]
        out1 = (
            (INV_SBOX[(s1 >> 24) & 0xFF] << 24)
            | (INV_SBOX[(s0 >> 16) & 0xFF] << 16)
            | (INV_SBOX[(s3 >> 8) & 0xFF] << 8)
            | INV_SBOX[s2 & 0xFF]
        ) ^ rk[i + 1]
        out2 = (
            (INV_SBOX[(s2 >> 24) & 0xFF] << 24)
            | (INV_SBOX[(s1 >> 16) & 0xFF] << 16)
            | (INV_SBOX[(s0 >> 8) & 0xFF] << 8)
            | INV_SBOX[s3 & 0xFF]
        ) ^ rk[i + 2]
        out3 = (
            (INV_SBOX[(s3 >> 24) & 0xFF] << 24)
            | (INV_SBOX[(s2 >> 16) & 0xFF] << 16)
            | (INV_SBOX[(s1 >> 8) & 0xFF] << 8)
            | INV_SBOX[s0 & 0xFF]
        ) ^ rk[i + 3]
        return struct.pack(">4I", out0, out1, out2, out3)
