"""A multiprocessing pool for embarrassingly parallel pairing work.

The pairing hot paths contain two natural fan-out points:

* a fused ``pair_product`` is a product of independent Miller loops —
  because the final exponentiation is multiplicative
  (``FE(a·b) = FE(a)·FE(b)``), the pair list can be split into chunks,
  each chunk evaluated (Miller loop **and** final exponentiation) in a
  separate process, and the finalized partials multiplied in the parent;
* the members of a wire-level ``BatchRequest`` — and equally the
  per-ciphertext decryptions of a C2 feed fetch — are fully independent
  pairing computations.

:class:`PairingPool` serves both.  Job descriptors are **plain-integer
tuples** (curve parameters and affine coordinates), never ``Point`` /
``Fq2`` objects: the crypto value types are immutable ``__slots__``
classes whose ``__setattr__`` raises, which breaks default pickling —
and flat ints keep the fork/pickle cost per job negligible anyway.
Workers rebuild the points, run their own :class:`Pairing` (inheriting
the process-wide acceleration tier), and return ``(a, b)`` coefficient
pairs.

Dispatch is chunked (at most one chunk per worker), and everything
degrades to an in-process serial computation when the pool is
unavailable — pool creation failed, the pool was closed, the job is too
small to amortize the round trip, or ``workers <= 1``.  The
``REPRO_PAIRING_WORKERS`` environment variable sets the default size
(``0``/``1`` mean serial; unset means ``os.cpu_count()``).

Note on operation counters: the parent's ``op_counts`` are kept
tier-invariant by ticking them before dispatch, but a *split* product
performs one final exponentiation per chunk (in the workers) rather than
one overall — the documented, measured trade for wall-clock parallelism.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Iterable, Sequence

from repro.crypto.ec import CurveParams, Point
from repro.crypto.fq2 import Fq2
from repro.crypto.pairing import Pairing

__all__ = ["PairingPool", "default_workers", "encode_pairs"]

# A product smaller than this many pairs is never worth a round trip.
_MIN_SPLIT_PAIRS = 4

# (q, r, h, name) — enough to rebuild CurveParams in a worker.
_ParamsWire = "tuple[int, int, int, str]"

# (px, py, qx, qy, exponent) per surviving pair.
_PairWire = "tuple[int, int, int, int, int]"


def default_workers() -> int:
    """Pool size from ``REPRO_PAIRING_WORKERS``, else ``os.cpu_count()``."""
    raw = os.environ.get("REPRO_PAIRING_WORKERS")
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError as exc:
            raise ValueError(
                "REPRO_PAIRING_WORKERS must be an integer, got %r" % raw
            ) from exc
    return os.cpu_count() or 1


def encode_pairs(
    params: CurveParams,
    pairs: Iterable["tuple[Point, Point] | tuple[Point, Point, int]"],
) -> "list[tuple[int, int, int, int, int]]":
    """Flatten pairing entries to picklable int tuples.

    Validates curve membership (matching :meth:`Pairing.pair_product`)
    and drops identity contributions (zero exponent / infinity points) so
    workers only ever see live states.
    """
    wire: list[tuple[int, int, int, int, int]] = []
    for entry in pairs:
        if len(entry) == 2:
            p, q_point = entry
            exponent = 1
        else:
            p, q_point, exponent = entry
        if p.curve != params or q_point.curve != params:
            raise ValueError("points do not belong to this pairing's curve")
        exponent %= params.r
        if exponent == 0 or p.infinity or q_point.infinity:
            continue
        wire.append((p.x, p.y, q_point.x, q_point.y, exponent))
    return wire


def _decode_pairs(
    params: CurveParams, wire: Sequence["tuple[int, int, int, int, int]"]
) -> "list[tuple[Point, Point, int]]":
    return [
        (Point(params, px, py), Point(params, qx, qy), exponent)
        for px, py, qx, qy, exponent in wire
    ]


# One Pairing engine per (worker process, params) — rebuilt lazily so the
# job payload stays flat ints.
_WORKER_ENGINES: "dict[tuple[int, int, int, str], Pairing]" = {}


def _worker_engine(params_wire: "tuple[int, int, int, str]") -> Pairing:
    engine = _WORKER_ENGINES.get(params_wire)
    if engine is None:
        q, r, h, name = params_wire
        engine = Pairing(CurveParams(q=q, r=r, h=h, name=name))
        _WORKER_ENGINES[params_wire] = engine
    return engine


def _run_pair_product(
    job: "tuple[tuple[int, int, int, str], list[tuple[int, int, int, int, int]]]",
) -> "tuple[int, int]":
    """Worker entry point: one finalized chunk product, as (a, b)."""
    params_wire, wire_pairs = job
    engine = _worker_engine(params_wire)
    value = engine.pair_product(_decode_pairs(engine.params, wire_pairs))
    return value.a, value.b


class PairingPool:
    """Fan pairing work across processes, with automatic serial fallback.

    ``workers=None`` takes :func:`default_workers`; ``workers <= 1``
    never forks and runs everything inline (still a correct, if serial,
    implementation of the same API).  The pool is lazy: no process is
    spawned until the first job large enough to split arrives.
    """

    def __init__(self, workers: "int | None" = None):
        self.workers = default_workers() if workers is None else max(0, workers)
        self._pool: "multiprocessing.pool.Pool | None" = None
        self._closed = False
        self._broken = False
        self.stats = {
            "parallel_products": 0,
            "serial_products": 0,
            "chunks_dispatched": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def _ensure_pool(self) -> "multiprocessing.pool.Pool | None":
        if self._closed or self._broken or self.workers <= 1:
            return None
        if self._pool is None:
            try:
                self._pool = multiprocessing.get_context("fork").Pool(self.workers)
            except (OSError, ValueError):
                # No fork support / process limits: permanent serial mode.
                self._broken = True
                return None
        return self._pool

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        self._closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PairingPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def describe(self) -> dict:
        """Plain-dict view for stats/banner lines."""
        return {
            "workers": self.workers,
            "mode": "serial" if (self.workers <= 1 or self._broken) else "parallel",
            **self.stats,
        }

    # -- work ------------------------------------------------------------------

    def _chunk(self, items: Sequence, n_chunks: int) -> "list[list]":
        size, extra = divmod(len(items), n_chunks)
        chunks, start = [], 0
        for i in range(n_chunks):
            end = start + size + (1 if i < extra else 0)
            if end > start:
                chunks.append(list(items[start:end]))
            start = end
        return chunks

    def pair_product(
        self,
        pairing: Pairing,
        pairs: Iterable["tuple[Point, Point] | tuple[Point, Point, int]"],
    ) -> Fq2:
        """Drop-in parallel :meth:`Pairing.pair_product`.

        Splits the surviving pairs into up to ``workers`` chunks, runs
        each chunk's Miller loops + final exponentiation in a worker, and
        multiplies the finalized partials (valid because the final
        exponentiation is multiplicative).  Falls back to the serial
        engine when splitting cannot pay for itself.
        """
        wire = encode_pairs(pairing.params, pairs)
        pool = self._ensure_pool() if len(wire) >= _MIN_SPLIT_PAIRS else None
        if pool is None:
            self.stats["serial_products"] += 1
            return pairing.pair_product(_decode_pairs(pairing.params, wire))
        params_wire = (
            pairing.params.q,
            pairing.params.r,
            pairing.params.h,
            pairing.params.name,
        )
        chunks = self._chunk(wire, min(self.workers, len(wire)))
        try:
            partials = pool.map(
                _run_pair_product, [(params_wire, chunk) for chunk in chunks]
            )
        except (OSError, multiprocessing.ProcessError):
            self._broken = True
            self.stats["serial_products"] += 1
            return pairing.pair_product(_decode_pairs(pairing.params, wire))
        self.stats["parallel_products"] += 1
        self.stats["chunks_dispatched"] += len(chunks)
        # Parent-side counters: one product, one loop per chunk, all
        # states advanced, one final exp per chunk (see module docstring).
        pairing.op_counts["pair_products"] += 1
        pairing.op_counts["miller_loops"] += len(chunks)
        pairing.op_counts["miller_states"] += len(wire)
        pairing.op_counts["final_exps"] += len(chunks)
        result = Fq2.one(pairing.q)
        for a, b in partials:
            result = result * Fq2(pairing.q, a, b)
        return result

    def pair_products(
        self,
        pairing: Pairing,
        jobs: Sequence[
            Iterable["tuple[Point, Point] | tuple[Point, Point, int]"]
        ],
    ) -> "list[Fq2]":
        """Evaluate many independent products — one per batch member or
        ciphertext — across the pool, one job per chunk slot."""
        encoded = [encode_pairs(pairing.params, job) for job in jobs]
        pool = self._ensure_pool() if len(encoded) > 1 else None
        if pool is None:
            self.stats["serial_products"] += len(encoded)
            return [
                pairing.pair_product(_decode_pairs(pairing.params, wire))
                for wire in encoded
            ]
        params_wire = (
            pairing.params.q,
            pairing.params.r,
            pairing.params.h,
            pairing.params.name,
        )
        try:
            results = pool.map(
                _run_pair_product, [(params_wire, wire) for wire in encoded]
            )
        except (OSError, multiprocessing.ProcessError):
            self._broken = True
            self.stats["serial_products"] += len(encoded)
            return [
                pairing.pair_product(_decode_pairs(pairing.params, wire))
                for wire in encoded
            ]
        self.stats["parallel_products"] += len(encoded)
        self.stats["chunks_dispatched"] += len(encoded)
        for wire in encoded:
            pairing.op_counts["pair_products"] += 1
            pairing.op_counts["miller_loops"] += 1 if wire else 0
            pairing.op_counts["miller_states"] += len(wire)
            pairing.op_counts["final_exps"] += 1 if wire else 0
        return [Fq2(pairing.q, a, b) for a, b in results]
