"""Schnorr signatures over the type-A curve group G0.

BLS (:mod:`repro.crypto.bls`) verification costs two pairings; on mobile
receivers verifying every puzzle component that adds up. Schnorr
signatures over the same group verify with two scalar multiplications —
roughly an order of magnitude cheaper here — at the cost of larger
signatures (a scalar + a challenge instead of one point).

Scheme (Fiat-Shamir over G0, challenge bound to the public key):

    sk = x in Z_r,  pk = g^x
    sign(m):  k random in Z_r;  R = g^k;  e = H(R || pk || m) mod r;
              s = k + e*x mod r;  signature = (e, s)
    verify:   R' = g^s * pk^(-e);  accept iff H(R' || pk || m) mod r == e

Both schemes implement the same sign/verify interface, so the puzzle
signing layer can swap them (signature agility).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.crypto.ec import CurveParams, Point
from repro.crypto.hashes import sha3_256

__all__ = ["SchnorrKeyPair", "SchnorrSignature", "SchnorrScheme"]


@dataclass(frozen=True)
class SchnorrKeyPair:
    secret: int
    public: Point


@dataclass(frozen=True)
class SchnorrSignature:
    """(e, s) pair; encodable as two fixed-width scalars."""

    e: int
    s: int

    def to_bytes(self, params: CurveParams) -> bytes:
        width = (params.r.bit_length() + 7) // 8
        return self.e.to_bytes(width, "big") + self.s.to_bytes(width, "big")

    @classmethod
    def from_bytes(cls, params: CurveParams, data: bytes) -> "SchnorrSignature":
        width = (params.r.bit_length() + 7) // 8
        if len(data) != 2 * width:
            raise ValueError("Schnorr signature must be %d bytes" % (2 * width))
        return cls(
            e=int.from_bytes(data[:width], "big"),
            s=int.from_bytes(data[width:], "big"),
        )


class SchnorrScheme:
    """Schnorr signing/verification bound to parameters and a generator."""

    def __init__(self, params: CurveParams, generator: Point | None = None):
        self.params = params
        self.generator = generator if generator is not None else params.random_g0()
        if self.generator.infinity or not self.generator.has_order_r():
            raise ValueError("generator must have order r")

    def keygen(self) -> SchnorrKeyPair:
        secret = secrets.randbelow(self.params.r - 1) + 1
        return SchnorrKeyPair(secret=secret, public=self.generator * secret)

    def _challenge(self, commitment: Point, public: Point, message: bytes) -> int:
        material = commitment.to_bytes() + public.to_bytes() + message
        return int.from_bytes(sha3_256(material).digest(), "big") % self.params.r

    def sign(self, secret: int, message: bytes) -> SchnorrSignature:
        if not 0 < secret < self.params.r:
            raise ValueError("secret key out of range")
        public = self.generator * secret
        while True:
            nonce = secrets.randbelow(self.params.r - 1) + 1
            commitment = self.generator * nonce
            e = self._challenge(commitment, public, message)
            if e == 0:
                continue  # degenerate challenge; resample
            s = (nonce + e * secret) % self.params.r
            return SchnorrSignature(e=e, s=s)

    def verify(self, public: Point, message: bytes, signature: SchnorrSignature) -> bool:
        if not 0 < signature.e < self.params.r:
            return False
        if not 0 <= signature.s < self.params.r:
            return False
        if public.infinity or not public.is_on_curve() or not public.has_order_r():
            return False
        # R' = g^s * pk^(-e)
        commitment = self.generator * signature.s + public * (-signature.e)
        if commitment.infinity:
            return False
        return self._challenge(commitment, public, message) == signature.e
