"""The symmetric Tate pairing on type-A curves via Miller's algorithm.

Computes ê(P, Q) = f_{r,P}(phi(Q))^((q^2 - 1) / r) where phi is the
distortion map (x, y) -> (-x, i*y) into E(GF(q^2)). Because the embedding
degree is 2 and the x-coordinates of distorted points lie in the base
field, *denominator elimination* applies: all vertical-line factors are
killed by the final exponentiation (their values lie in GF(q)* whose order
q - 1 divides (q^2 - 1) / r), so the Miller loop only accumulates the
tangent/chord line values.

This realizes the bilinear map e: G0 x G0 -> G2 of the paper's
section III-A with G0 = G1 (symmetric pairing, as required by CP-ABE).
"""

from __future__ import annotations

from repro.crypto.ec import CurveParams, Point
from repro.crypto.fq2 import Fq2
from repro.crypto.numbers import modinv

__all__ = ["Pairing"]


class Pairing:
    """Tate pairing engine for a fixed :class:`CurveParams`."""

    def __init__(self, params: CurveParams):
        self.params = params
        self.q = params.q
        self.r = params.r
        # Final exponent (q^2 - 1) / r, split as (q - 1) * ((q + 1) / r).
        # The (q - 1) part is the cheap Frobenius-based "easy" exponent.
        self._hard_exponent = (self.q + 1) // self.r
        self._r_bits = bin(params.r)[2:]

    # -- public API ----------------------------------------------------------------

    def pair(self, p: Point, q_point: Point) -> Fq2:
        """The symmetric pairing ê(P, Q); returns 1 in GF(q^2) if either
        argument is the point at infinity."""
        if p.curve != self.params or q_point.curve != self.params:
            raise ValueError("points do not belong to this pairing's curve")
        if p.infinity or q_point.infinity:
            return Fq2.one(self.q)
        f = self._miller_loop(p, q_point)
        return self._final_exponentiation(f)

    def identity(self) -> Fq2:
        """The identity of the target group GT."""
        return Fq2.one(self.q)

    def gt_exp(self, element: Fq2, exponent: int) -> Fq2:
        """Exponentiation in GT with the exponent reduced modulo r."""
        return element ** (exponent % self.r)

    # -- internals ------------------------------------------------------------------

    def _miller_loop(self, p: Point, q_point: Point) -> Fq2:
        """Accumulate line functions f_{r,P} evaluated at phi(Q).

        phi(Q) = (-xq, i*yq): for a line y - (slope*x + c) through points of
        E(GF(q)), its value at phi(Q) is  i*yq - slope*(-xq) - c, an element
        (-slope*(-xq) - c) + yq*i of GF(q^2) — base-field work except for
        one imaginary coefficient.
        """
        mod = self.q
        xq = (-q_point.x) % mod  # x-coordinate of phi(Q), in GF(q)
        yq = q_point.y           # imaginary part of phi(Q)'s y-coordinate

        # Current multiple T = (tx, ty) of P, tracked in affine coordinates.
        tx, ty = p.x, p.y
        f = Fq2.one(mod)

        def line_value(slope: int, px: int, py: int) -> Fq2:
            # Line through (px, py) with given slope, evaluated at phi(Q):
            #   i*yq - (slope * (xq - px) + py)
            real = (-(slope * (xq - px) + py)) % mod
            return Fq2(mod, real, yq)

        for bit in self._r_bits[1:]:
            # Tangent line at T (doubling step). ty == 0 cannot occur for a
            # point of odd prime order before the loop ends.
            slope = (3 * tx * tx + 1) * modinv(2 * ty, mod) % mod
            f = f.square() * line_value(slope, tx, ty)
            # T = 2T
            x3 = (slope * slope - 2 * tx) % mod
            ty = (slope * (tx - x3) - ty) % mod
            tx = x3

            if bit == "1":
                if tx == p.x and (ty + p.y) % mod == 0:
                    # T == -P: the chord is vertical; its value lies in
                    # GF(q) and is erased by the final exponentiation.
                    tx, ty = 0, 0  # T becomes O; only happens at loop end
                    continue
                if tx == p.x and ty == p.y:
                    slope = (3 * tx * tx + 1) * modinv(2 * ty, mod) % mod
                else:
                    slope = (p.y - ty) * modinv(p.x - tx, mod) % mod
                f = f * line_value(slope, tx, ty)
                # T = T + P
                x3 = (slope * slope - tx - p.x) % mod
                ty = (slope * (tx - x3) - ty) % mod
                tx = x3
        return f

    def _final_exponentiation(self, f: Fq2) -> Fq2:
        """f^((q^2 - 1) / r) = (conj(f) / f)^((q + 1) / r)."""
        if f.is_zero():
            # Can only happen if phi(Q) hit a line zero, i.e. Q in <P>'s
            # image — impossible for independent subgroups, but fail safe.
            raise ArithmeticError("degenerate Miller value")
        easy = f.conjugate() * f.inverse()  # f^(q - 1)
        return easy ** self._hard_exponent
