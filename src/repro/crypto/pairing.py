"""The symmetric Tate pairing on type-A curves via Miller's algorithm.

Computes ê(P, Q) = f_{r,P}(phi(Q))^((q^2 - 1) / r) where phi is the
distortion map (x, y) -> (-x, i*y) into E(GF(q^2)). Because the embedding
degree is 2 and the x-coordinates of distorted points lie in the base
field, *denominator elimination* applies: all vertical-line factors are
killed by the final exponentiation (their values lie in GF(q)* whose order
q - 1 divides (q^2 - 1) / r), so the Miller loop only accumulates the
tangent/chord line values.

This realizes the bilinear map e: G0 x G0 -> G2 of the paper's
section III-A with G0 = G1 (symmetric pairing, as required by CP-ABE).

Beyond the single :meth:`Pairing.pair`, the engine exposes the batched
hot-path primitives that CP-ABE decryption is built on:

* :meth:`Pairing.pair_product` — Π ê(P_i, Q_i)^{e_i} with **one** final
  exponentiation for the whole product. All Miller loops share the same
  bit sequence (the group order r), so they run in lockstep with a single
  squaring chain per exponent group and *one* Montgomery batch inversion
  per loop iteration instead of one egcd per pair per iteration. Inverted
  factors use the conjugation trick: r | q + 1 means q ≡ -1 (mod r), so
  FE(conj(m)) = FE(m)^q = FE(m)^(-1) — conjugating a Miller value before
  the final exponentiation inverts the pairing after it, and conjugating
  a line value a + b·i is just negating b.
* :meth:`Pairing.gt_multi_exp` — Straus/Shamir simultaneous
  exponentiation in GT (shared squaring chain, windowed subset-product
  tables), for Lagrange-weighted leaf recombination.

``op_counts`` tracks Miller loops / final exponentiations / products so
benchmarks can assert the 2k+1 -> 1 final-exponentiation collapse.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.ec import CurveParams, Point
from repro.crypto.fq2 import Fq2
from repro.crypto.numbers import batch_modinv, modinv

__all__ = ["Pairing"]

# Straus multi-exp processes bases in chunks of this size; each chunk
# precomputes 2^_STRAUS_CHUNK - 1 subset products.
_STRAUS_CHUNK = 4

# Compiled kernel table installed by repro.crypto.accel (None = pure
# tier).  The kernels replace the arithmetic only; op_counts tick in the
# Python wrappers either way, so counter contracts are tier-invariant.
_KERNELS = None


class Pairing:
    """Tate pairing engine for a fixed :class:`CurveParams`."""

    def __init__(self, params: CurveParams):
        self.params = params
        self.q = params.q
        self.r = params.r
        # Final exponent (q^2 - 1) / r, split as (q - 1) * ((q + 1) / r).
        # The (q - 1) part is the cheap Frobenius-based "easy" exponent.
        self._hard_exponent = (self.q + 1) // self.r
        self._r_bits = bin(params.r)[2:]
        # Operation counters for benchmarks and attribution tests. Keys:
        #   pairings        — public pair() calls
        #   pair_products   — public pair_product() calls
        #   miller_loops    — merged lockstep loop executions (1 per
        #                     pair() and 1 per pair_product(), however
        #                     many pairs it folds)
        #   miller_states   — individual (P, Q) Miller states advanced
        #   final_exps      — hard final exponentiations
        #   gt_multi_exps   — public gt_multi_exp() calls
        self.op_counts: dict[str, int] = {}
        self.reset_op_counts()

    def reset_op_counts(self) -> None:
        """Zero all operation counters."""
        for key in (
            "pairings",
            "pair_products",
            "miller_loops",
            "miller_states",
            "final_exps",
            "gt_multi_exps",
        ):
            self.op_counts[key] = 0

    # -- public API ----------------------------------------------------------------

    def pair(self, p: Point, q_point: Point) -> Fq2:
        """The symmetric pairing ê(P, Q); returns 1 in GF(q^2) if either
        argument is the point at infinity."""
        if p.curve != self.params or q_point.curve != self.params:
            raise ValueError("points do not belong to this pairing's curve")
        self.op_counts["pairings"] += 1
        if p.infinity or q_point.infinity:
            return Fq2.one(self.q)
        f = self._miller_loop(p, q_point)
        return self._final_exponentiation(f)

    def pair_product(
        self,
        pairs: Iterable[tuple[Point, Point] | tuple[Point, Point, int]],
    ) -> Fq2:
        """Π ê(P_i, Q_i)^{e_i} with a single shared final exponentiation.

        ``pairs`` yields ``(P, Q)`` (exponent 1) or ``(P, Q, e)`` entries;
        exponents are reduced modulo r, and exponents above r/2 are folded
        to ``(r - e, conjugate)`` so a numerator/denominator leaf pair
        ``(P, Q, +w), (P', Q', -w)`` merges into one lockstep Miller loop.
        Entries with a zero exponent or an infinity point contribute the
        identity (and are skipped). An empty product returns the identity
        without touching the final exponentiation.
        """
        # Group surviving entries by folded exponent so each group shares
        # one Miller squaring chain: |group| states, one f accumulator.
        groups: dict[int, list[tuple[Point, Point, int]]] = {}
        for entry in pairs:
            if len(entry) == 2:
                p, q_point = entry
                exponent = 1
            else:
                p, q_point, exponent = entry
            if p.curve != self.params or q_point.curve != self.params:
                raise ValueError("points do not belong to this pairing's curve")
            exponent %= self.r
            if exponent == 0 or p.infinity or q_point.infinity:
                continue
            sign = 1
            if 2 * exponent > self.r:
                exponent, sign = self.r - exponent, -1
            groups.setdefault(exponent, []).append((p, q_point, sign))

        self.op_counts["pair_products"] += 1
        if not groups:
            return Fq2.one(self.q)
        exponents = sorted(groups)
        miller_values = self._merged_miller([groups[e] for e in exponents])
        if len(miller_values) == 1 and exponents[0] == 1:
            combined = miller_values[0]
        else:
            combined = self._multi_exp(miller_values, exponents)
        return self._final_exponentiation(combined)

    def identity(self) -> Fq2:
        """The identity of the target group GT."""
        return Fq2.one(self.q)

    def gt_exp(self, element: Fq2, exponent: int) -> Fq2:
        """Exponentiation in GT with the exponent reduced modulo r."""
        return element ** (exponent % self.r)

    def gt_multi_exp(self, bases: Sequence[Fq2], exponents: Sequence[int]) -> Fq2:
        """Π bases[i]^exponents[i] for elements of GT (the order-r
        subgroup), via Straus/Shamir simultaneous exponentiation.

        Equivalent to folding :meth:`gt_exp` over the pairs, but shares
        one squaring chain across all bases. Exponents are reduced modulo
        r; exponents above r/2 are rewritten as ``conj(base)^(r - e)``
        (conjugation inverts order-r elements), which keeps every scalar
        short. Bases must lie in GT — for general Fq2 elements use
        :meth:`gt_exp`.
        """
        if len(bases) != len(exponents):
            raise ValueError(
                "got %d bases but %d exponents" % (len(bases), len(exponents))
            )
        work_bases: list[Fq2] = []
        work_exponents: list[int] = []
        for base, exponent in zip(bases, exponents):
            if base.q != self.q:
                raise ValueError("base is not a GT element for these parameters")
            exponent %= self.r
            if exponent == 0:
                continue
            if 2 * exponent > self.r:
                base, exponent = base.conjugate(), self.r - exponent
            work_bases.append(base)
            work_exponents.append(exponent)
        self.op_counts["gt_multi_exps"] += 1
        if not work_bases:
            return Fq2.one(self.q)
        return self._multi_exp(work_bases, work_exponents)

    # -- internals ------------------------------------------------------------------

    def _multi_exp(self, bases: list[Fq2], exponents: list[int]) -> Fq2:
        """Straus simultaneous exponentiation (positive exponents only).

        Bases are chunked; each chunk precomputes all subset products, and
        a single square chain over the longest exponent interleaves the
        chunk lookups.
        """
        if _KERNELS is not None:
            a, b = _KERNELS.fq2_multi_exp(
                self.q, [(base.a, base.b) for base in bases], exponents
            )
            return Fq2(self.q, a, b)
        one = Fq2.one(self.q)
        chunks: list[tuple[list[Fq2], list[int]]] = []
        for start in range(0, len(bases), _STRAUS_CHUNK):
            chunk_bases = bases[start : start + _STRAUS_CHUNK]
            table = [one] * (1 << len(chunk_bases))
            for j, base in enumerate(chunk_bases):
                bit = 1 << j
                table[bit] = base
                for mask in range(1, bit):
                    table[bit | mask] = base * table[mask]
            chunks.append((table, exponents[start : start + _STRAUS_CHUNK]))

        acc = one
        for position in range(max(e.bit_length() for e in exponents) - 1, -1, -1):
            acc = acc.square()
            for table, chunk_exponents in chunks:
                mask = 0
                for j, exponent in enumerate(chunk_exponents):
                    if (exponent >> position) & 1:
                        mask |= 1 << j
                if mask:
                    acc = acc * table[mask]
        return acc

    def _miller_loop(self, p: Point, q_point: Point) -> Fq2:
        """Accumulate line functions f_{r,P} evaluated at phi(Q).

        phi(Q) = (-xq, i*yq): for a line y - (slope*x + c) through points of
        E(GF(q)), its value at phi(Q) is  i*yq - slope*(-xq) - c, an element
        (-slope*(-xq) - c) + yq*i of GF(q^2) — base-field work except for
        one imaginary coefficient.
        """
        mod = self.q
        xq = (-q_point.x) % mod  # x-coordinate of phi(Q), in GF(q)
        yq = q_point.y           # imaginary part of phi(Q)'s y-coordinate

        self.op_counts["miller_loops"] += 1
        self.op_counts["miller_states"] += 1
        if _KERNELS is not None:
            ((a, b),) = _KERNELS.miller_merged(
                mod, self._r_bits, [(p.x, p.y, p.x, p.y, xq, yq, 0)], 1
            )
            return Fq2(mod, a, b)

        # Current multiple T = (tx, ty) of P, tracked in affine coordinates.
        tx, ty = p.x, p.y
        f = Fq2.one(mod)

        def line_value(slope: int, px: int, py: int) -> Fq2:
            # Line through (px, py) with given slope, evaluated at phi(Q):
            #   i*yq - (slope * (xq - px) + py)
            real = (-(slope * (xq - px) + py)) % mod
            return Fq2(mod, real, yq)

        for bit in self._r_bits[1:]:
            # Tangent line at T (doubling step). ty == 0 cannot occur for a
            # point of odd prime order before the loop ends.
            slope = (3 * tx * tx + 1) * modinv(2 * ty, mod) % mod
            f = f.square() * line_value(slope, tx, ty)
            # T = 2T
            x3 = (slope * slope - 2 * tx) % mod
            ty = (slope * (tx - x3) - ty) % mod
            tx = x3

            if bit == "1":
                if tx == p.x and (ty + p.y) % mod == 0:
                    # T == -P: the chord is vertical; its value lies in
                    # GF(q) and is erased by the final exponentiation.
                    tx, ty = 0, 0  # T becomes O; only happens at loop end
                    continue
                if tx == p.x and ty == p.y:
                    slope = (3 * tx * tx + 1) * modinv(2 * ty, mod) % mod
                else:
                    slope = (p.y - ty) * modinv(p.x - tx, mod) % mod
                f = f * line_value(slope, tx, ty)
                # T = T + P
                x3 = (slope * slope - tx - p.x) % mod
                ty = (slope * (tx - x3) - ty) % mod
                tx = x3
        return f

    def _merged_miller(
        self, groups: list[list[tuple[Point, Point, int]]]
    ) -> list[Fq2]:
        """Run every Miller loop in lockstep; return one value per group.

        Each group gets its own accumulator (so groups can carry different
        outer exponents) but all states across all groups share the loop:
        every iteration performs ONE batch inversion over all pending
        slope denominators instead of one egcd per state. A ``sign`` of -1
        on a state conjugates its contribution by negating the imaginary
        part of every line value — equivalent to inverting the pairing
        after the final exponentiation.
        """
        mod = self.q
        # Mutable state per pair: [tx, ty, px, py, xq, yq, group, done].
        states: list[list[int]] = []
        for group_index, entries in enumerate(groups):
            for p, q_point, sign in entries:
                xq = (-q_point.x) % mod
                yq = q_point.y % mod if sign >= 0 else (-q_point.y) % mod
                states.append([p.x, p.y, p.x, p.y, xq, yq, group_index, 0])
        self.op_counts["miller_loops"] += 1
        self.op_counts["miller_states"] += len(states)
        if _KERNELS is not None:
            values = _KERNELS.miller_merged(
                mod,
                self._r_bits,
                [tuple(state[:7]) for state in states],
                len(groups),
            )
            return [Fq2(mod, a, b) for a, b in values]

        accumulators = [Fq2.one(mod)] * len(groups)
        for bit in self._r_bits[1:]:
            alive = [s for s in states if not s[7]]
            # Doubling step for every live state, slopes batch-inverted.
            inverses = batch_modinv([2 * s[1] % mod for s in alive], mod)
            line_products: list[Fq2 | None] = [None] * len(groups)
            for state, inverse in zip(alive, inverses):
                tx, ty = state[0], state[1]
                slope = (3 * tx * tx + 1) * inverse % mod
                real = (-(slope * (state[4] - tx) + ty)) % mod
                line = Fq2(mod, real, state[5])
                group_index = state[6]
                previous = line_products[group_index]
                line_products[group_index] = line if previous is None else previous * line
                x3 = (slope * slope - 2 * tx) % mod
                state[1] = (slope * (tx - x3) - ty) % mod
                state[0] = x3
            for group_index, product in enumerate(line_products):
                squared = accumulators[group_index].square()
                accumulators[group_index] = (
                    squared if product is None else squared * product
                )

            if bit == "1":
                # Addition step. Vertical chords (T == -P) drop out under
                # the final exponentiation; such a state is done (its T is
                # O, which only happens at the end of the loop).
                adding: list[list[int]] = []
                denominators: list[int] = []
                for state in alive:
                    tx, ty, px, py = state[0], state[1], state[2], state[3]
                    if tx == px:
                        if (ty + py) % mod == 0:
                            state[7] = 1
                            continue
                        denominators.append(2 * ty % mod)
                    else:
                        denominators.append((px - tx) % mod)
                    adding.append(state)
                inverses = batch_modinv(denominators, mod)
                line_products = [None] * len(groups)
                for state, inverse in zip(adding, inverses):
                    tx, ty, px, py = state[0], state[1], state[2], state[3]
                    if tx == px:  # T == P: tangent
                        slope = (3 * tx * tx + 1) * inverse % mod
                    else:
                        slope = (py - ty) * inverse % mod
                    real = (-(slope * (state[4] - tx) + ty)) % mod
                    line = Fq2(mod, real, state[5])
                    group_index = state[6]
                    previous = line_products[group_index]
                    line_products[group_index] = (
                        line if previous is None else previous * line
                    )
                    x3 = (slope * slope - tx - px) % mod
                    state[1] = (slope * (tx - x3) - ty) % mod
                    state[0] = x3
                for group_index, product in enumerate(line_products):
                    if product is not None:
                        accumulators[group_index] = accumulators[group_index] * product
        return accumulators

    def _final_exponentiation(self, f: Fq2) -> Fq2:
        """f^((q^2 - 1) / r) = (conj(f) / f)^((q + 1) / r)."""
        if f.is_zero():
            # Can only happen if phi(Q) hit a line zero, i.e. Q in <P>'s
            # image — impossible for independent subgroups, but fail safe.
            raise ArithmeticError("degenerate Miller value")
        self.op_counts["final_exps"] += 1
        easy = f.conjugate() * f.inverse()  # f^(q - 1)
        return easy ** self._hard_exponent
