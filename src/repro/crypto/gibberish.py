"""GibberishAES-compatible passphrase encryption container.

The paper's Implementation 1 encrypts shared objects in the browser with
GibberishAES, which produces OpenSSL-``enc``-compatible output:

    base64( b"Salted__" || 8-byte salt || AES-256-CBC ciphertext )

with key and IV derived from the passphrase and salt via
``EVP_BytesToKey``. This module reproduces that container exactly so the
Construction 1 engine can store objects in the same wire format the paper's
prototype uploaded to its storage service.
"""

from __future__ import annotations

import base64
import secrets

from repro.crypto.kdf import evp_bytes_to_key
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.obs.profile import profiled

__all__ = ["encrypt", "decrypt", "MAGIC"]

MAGIC = b"Salted__"
_KEY_LEN = 32  # AES-256
_IV_LEN = 16


@profiled(name="gibberish.encrypt")
def encrypt(plaintext: bytes, passphrase: bytes, salt: bytes | None = None) -> bytes:
    """Encrypt to the base64 ``Salted__`` container."""
    if salt is None:
        salt = secrets.token_bytes(8)
    if len(salt) != 8:
        raise ValueError("salt must be 8 bytes, got %d" % len(salt))
    key, iv = evp_bytes_to_key(passphrase, salt, _KEY_LEN, _IV_LEN)
    # cbc_encrypt returns iv || ct; the container stores the IV implicitly
    # (derived from the passphrase), so strip the explicit copy.
    ciphertext = cbc_encrypt(key, plaintext, iv=iv)[16:]
    return base64.b64encode(MAGIC + salt + ciphertext)


@profiled(name="gibberish.decrypt")
def decrypt(container: bytes, passphrase: bytes) -> bytes:
    """Decrypt a base64 ``Salted__`` container."""
    try:
        raw = base64.b64decode(container, validate=True)
    except Exception as exc:
        raise ValueError("container is not valid base64") from exc
    if len(raw) < len(MAGIC) + 8 + 16 or not raw.startswith(MAGIC):
        raise ValueError("container is missing the Salted__ header")
    salt = raw[len(MAGIC) : len(MAGIC) + 8]
    ciphertext = raw[len(MAGIC) + 8 :]
    key, iv = evp_bytes_to_key(passphrase, salt, _KEY_LEN, _IV_LEN)
    return cbc_decrypt(key, iv + ciphertext)
