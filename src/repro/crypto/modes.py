"""Block-cipher modes of operation and padding.

CBC with PKCS#7 padding is what GibberishAES (the paper's Implementation 1
symmetric cryptosystem) uses; CTR is provided for streaming payloads, and
an encrypt-then-MAC authenticated wrapper gives the integrity property the
paper's security analysis achieves with signatures.
"""

from __future__ import annotations

import secrets

from repro.crypto.aes import AES
from repro.crypto.mac import constant_time_compare, hmac_digest

__all__ = [
    "pkcs7_pad",
    "pkcs7_unpad",
    "cbc_encrypt",
    "cbc_decrypt",
    "ctr_transform",
    "seal",
    "unseal",
    "PaddingError",
    "IntegrityError",
]


class PaddingError(ValueError):
    """Raised when PKCS#7 padding is malformed."""


class IntegrityError(ValueError):
    """Raised when an authenticated ciphertext fails its MAC check."""


def pkcs7_pad(data: bytes, block_size: int = 16) -> bytes:
    if not 0 < block_size < 256:
        raise ValueError("block size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = 16) -> bytes:
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length %d is invalid" % len(data))
    pad_len = data[-1]
    if not 0 < pad_len <= block_size:
        raise PaddingError("invalid padding byte %d" % pad_len)
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad_len]


def cbc_encrypt(key: bytes, plaintext: bytes, iv: bytes | None = None) -> bytes:
    """AES-CBC with PKCS#7; returns ``iv || ciphertext``."""
    cipher = AES(key)
    if iv is None:
        iv = secrets.token_bytes(16)
    if len(iv) != 16:
        raise ValueError("IV must be 16 bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray(iv)
    previous = iv
    for offset in range(0, len(padded), 16):
        block = bytes(a ^ b for a, b in zip(padded[offset : offset + 16], previous))
        previous = cipher.encrypt_block(block)
        out += previous
    return bytes(out)


def cbc_decrypt(key: bytes, data: bytes) -> bytes:
    """Inverse of :func:`cbc_encrypt` (expects ``iv || ciphertext``)."""
    if len(data) < 32 or len(data) % 16 != 0:
        raise ValueError("CBC ciphertext length %d is invalid" % len(data))
    cipher = AES(key)
    iv, ciphertext = data[:16], data[16:]
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), 16):
        block = ciphertext[offset : offset + 16]
        decrypted = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))


def ctr_transform(key: bytes, data: bytes, nonce: bytes) -> bytes:
    """AES-CTR keystream XOR (its own inverse)."""
    if len(nonce) != 16:
        raise ValueError("CTR nonce must be 16 bytes")
    cipher = AES(key)
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    for offset in range(0, len(data), 16):
        keystream = cipher.encrypt_block(
            (counter % (1 << 128)).to_bytes(16, "big")
        )
        chunk = data[offset : offset + 16]
        out += bytes(a ^ b for a, b in zip(chunk, keystream))
        counter += 1
    return bytes(out)


def seal(key: bytes, plaintext: bytes, associated_data: bytes = b"") -> bytes:
    """Encrypt-then-MAC: AES-CBC + HMAC-SHA3-256 over AD || ciphertext."""
    ciphertext = cbc_encrypt(key, plaintext)
    tag = hmac_digest(key, associated_data + ciphertext)
    return ciphertext + tag


def unseal(key: bytes, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Inverse of :func:`seal`; raises :class:`IntegrityError` on tampering."""
    if len(sealed) < 32 + 32:
        raise IntegrityError("sealed blob too short")
    ciphertext, tag = sealed[:-32], sealed[-32:]
    expected = hmac_digest(key, associated_data + ciphertext)
    if not constant_time_compare(tag, expected):
        raise IntegrityError("MAC verification failed")
    return cbc_decrypt(key, ciphertext)
