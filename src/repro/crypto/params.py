"""Pairing parameter generation and named presets.

Follows the PBC library's "type A" recipe: pick a prime group order ``r``,
then search for a cofactor ``h`` (a multiple of 4, so that q ≡ 3 mod 4)
with ``q = h * r - 1`` prime. The paper's prototype used the cpabe toolkit
on PBC type-A parameters (|r| = 160, |q| = 512); the presets below bracket
that working point:

* ``TOY``     — |r| = 32,  |q| = 128: unit tests, exhaustive property checks.
* ``SMALL``   — |r| = 80,  |q| = 256: fast integration tests.
* ``DEFAULT`` — |r| = 160, |q| = 512: the paper's operating point, used by
  the benchmark harness.

Presets were generated once with :func:`generate_type_a_params` and are
pinned so imports are instant and benchmarks deterministic; a test
re-validates every pinned preset (primality, q ≡ 3 mod 4, cofactor).
"""

from __future__ import annotations

import secrets

from repro.crypto.ec import CurveParams
from repro.crypto.numbers import is_prime, random_prime

__all__ = ["generate_type_a_params", "get_params", "TOY", "SMALL", "DEFAULT", "PRESETS"]


def generate_type_a_params(rbits: int, qbits: int, name: str = "custom") -> CurveParams:
    """Generate fresh type-A parameters with |r| = rbits and |q| ~= qbits.

    q = h * r - 1 with h ≡ 0 (mod 4) guarantees q ≡ 3 (mod 4) for odd r.
    """
    if rbits < 4 or qbits <= rbits + 3:
        raise ValueError("need qbits comfortably larger than rbits")
    while True:
        r = random_prime(rbits)
        hbits = qbits - rbits
        # h = 4 * m for random m of the right size.
        for _ in range(4 * qbits):
            m = secrets.randbits(hbits - 2) | (1 << (hbits - 3)) if hbits >= 3 else 1
            h = 4 * m
            q = h * r - 1
            if q % 4 == 3 and is_prime(q):
                return CurveParams(q=q, r=r, h=h, name=name)


# Pinned presets (generated with generate_type_a_params; re-validated in tests).
TOY = CurveParams(
    name="toy-32-128",
    r=3343421677,
    q=248550684269726183658606406295874801127,
    h=74340214391606991922546659464,
)

SMALL = CurveParams(
    name="small-80-256",
    r=1066069795919421177654727,
    q=61238536570116751883191138598637191121141245254261012055035544537817572337047,
    h=57443271354763589081758342326969583075541088886246824,
)

DEFAULT = CurveParams(
    name="default-160-512",
    r=764763699195582645146043654073643696693924853307,
    q=6353639178285217448038842819567509836696586729338586561027102811591013884901600988546311467195244841915615593877783931457888379821557430678860336003172687,
    h=8307976941071207071103148290024734996559258480311642317321477800022641290801265492139275020673214653740784,
)

PRESETS = {"toy": TOY, "small": SMALL, "default": DEFAULT}


def get_params(name: str) -> CurveParams:
    """Look up a named preset ('toy', 'small', 'default')."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            "unknown preset %r; choose from %s" % (name, sorted(PRESETS))
        ) from None
