"""Quadratic extension field GF(q^2) = GF(q)[i] / (i^2 + 1).

Requires q ≡ 3 (mod 4) so that -1 is a quadratic non-residue and the
polynomial i^2 + 1 is irreducible. This is the target group GT of the
type-A symmetric pairing: the paper's CP-ABE construction computes
``e(g, g)^{alpha s}`` in exactly this field.

Elements are ``a + b*i`` with plain-integer coefficients; the class keeps a
reference to its modulus so cross-field mixing fails loudly.
"""

from __future__ import annotations

from repro.crypto.numbers import modinv

__all__ = ["Fq2"]

# Compiled kernel table installed by repro.crypto.accel (None = pure
# tier).  Only long power chains are routed through it: a single mul or
# square is cheaper on native ints than across the FFI boundary.
_BACKEND = None

# Exponents at least this many bits long go to the compiled kernel.
_POW_KERNEL_BITS = 16


class Fq2:
    """An immutable element a + b*i of GF(q^2)."""

    __slots__ = ("q", "a", "b")

    def __init__(self, q: int, a: int, b: int = 0):
        object.__setattr__(self, "q", q)
        object.__setattr__(self, "a", a % q)
        object.__setattr__(self, "b", b % q)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Fq2 is immutable")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def one(cls, q: int) -> "Fq2":
        return cls(q, 1, 0)

    @classmethod
    def zero(cls, q: int) -> "Fq2":
        return cls(q, 0, 0)

    # -- helpers ---------------------------------------------------------------

    def _check(self, other: "Fq2") -> None:
        if self.q != other.q:
            raise ValueError("cannot mix GF(%d^2) and GF(%d^2)" % (self.q, other.q))

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Fq2") -> "Fq2":
        if not isinstance(other, Fq2):
            return NotImplemented
        self._check(other)
        return Fq2(self.q, self.a + other.a, self.b + other.b)

    def __sub__(self, other: "Fq2") -> "Fq2":
        if not isinstance(other, Fq2):
            return NotImplemented
        self._check(other)
        return Fq2(self.q, self.a - other.a, self.b - other.b)

    def __neg__(self) -> "Fq2":
        return Fq2(self.q, -self.a, -self.b)

    def __mul__(self, other: "Fq2 | int") -> "Fq2":
        if isinstance(other, int):
            return Fq2(self.q, self.a * other, self.b * other)
        if not isinstance(other, Fq2):
            return NotImplemented
        self._check(other)
        q = self.q
        # (a + bi)(c + di) = (ac - bd) + (ad + bc)i; Karatsuba on the cross term.
        ac = self.a * other.a
        bd = self.b * other.b
        cross = (self.a + self.b) * (other.a + other.b) - ac - bd
        return Fq2(q, ac - bd, cross)

    __rmul__ = __mul__

    def square(self) -> "Fq2":
        q = self.q
        # (a + bi)^2 = (a - b)(a + b) + 2ab i
        return Fq2(q, (self.a - self.b) * (self.a + self.b), 2 * self.a * self.b)

    def inverse(self) -> "Fq2":
        q = self.q
        norm = (self.a * self.a + self.b * self.b) % q
        if norm == 0:
            raise ZeroDivisionError("0 in GF(q^2) has no inverse")
        inv_norm = modinv(norm, q)
        return Fq2(q, self.a * inv_norm, -self.b * inv_norm)

    def __truediv__(self, other: "Fq2") -> "Fq2":
        if not isinstance(other, Fq2):
            return NotImplemented
        return self * other.inverse()

    def conjugate(self) -> "Fq2":
        """a - b*i, which is also the Frobenius map x -> x^q (q ≡ 3 mod 4)."""
        return Fq2(self.q, self.a, -self.b)

    def __pow__(self, exponent: int) -> "Fq2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        if _BACKEND is not None and exponent.bit_length() >= _POW_KERNEL_BITS:
            a, b = _BACKEND.fq2_pow(self.q, self.a, self.b, exponent)
            return Fq2(self.q, a, b)
        result = Fq2.one(self.q)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    # -- predicates / conversions -----------------------------------------------

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def to_bytes(self) -> bytes:
        width = (self.q.bit_length() + 7) // 8
        return self.a.to_bytes(width, "big") + self.b.to_bytes(width, "big")

    @classmethod
    def from_bytes(cls, q: int, data: bytes) -> "Fq2":
        width = (q.bit_length() + 7) // 8
        if len(data) != 2 * width:
            raise ValueError("Fq2 encoding must be %d bytes" % (2 * width))
        return cls(
            q,
            int.from_bytes(data[:width], "big"),
            int.from_bytes(data[width:], "big"),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Fq2)
            and self.q == other.q
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.q, self.a, self.b))

    def __repr__(self) -> str:
        return f"Fq2({self.a} + {self.b}i mod {self.q})"
