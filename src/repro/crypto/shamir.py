"""Shamir's (k, n) threshold secret sharing (paper section III-B).

A dealer splits a secret ``M`` (an element of GF(p)) into ``n`` shares such
that any ``k`` of them reconstruct ``M`` by Lagrange interpolation at zero,
while any ``k - 1`` shares are information-theoretically independent of
``M``.

The paper's Construction 1 uses this with *random* (rather than sequential)
evaluation points ``s_i``; both styles are supported here. Shares carry
their evaluation point, mirroring the paper's ``d_i = <s_i, P(s_i)>``.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.field import FieldElement, PrimeField
from repro.crypto.polynomial import Polynomial, lagrange_coefficients_at_zero
from repro.obs.profile import profiled

__all__ = ["Share", "ShamirDealer", "split_secret", "reconstruct_secret"]


@dataclass(frozen=True)
class Share:
    """One share ``<x, P(x)>`` of a Shamir-shared secret."""

    x: int
    y: int

    def to_bytes(self, field: PrimeField) -> bytes:
        """Fixed-width big-endian encoding ``x || y``."""
        width = field.byte_length
        return self.x.to_bytes(width, "big") + self.y.to_bytes(width, "big")

    @classmethod
    def from_bytes(cls, field: PrimeField, data: bytes) -> "Share":
        width = field.byte_length
        if len(data) != 2 * width:
            raise ValueError(
                "share encoding must be %d bytes, got %d" % (2 * width, len(data))
            )
        return cls(
            x=int.from_bytes(data[:width], "big"),
            y=int.from_bytes(data[width:], "big"),
        )


class ShamirDealer:
    """Dealer for a (k, n) sharing over a given prime field."""

    def __init__(self, field: PrimeField, k: int, n: int):
        if not 0 < k <= n:
            raise ValueError("need 0 < k <= n, got k=%d n=%d" % (k, n))
        if n >= field.p:
            raise ValueError(
                "n=%d shares need field order > n, got p=%d" % (n, field.p)
            )
        self.field = field
        self.k = k
        self.n = n

    def split(
        self,
        secret: FieldElement | int,
        xs: Sequence[int] | None = None,
        random_points: bool = True,
    ) -> list[Share]:
        """Produce ``n`` shares of ``secret``.

        ``xs`` fixes the evaluation points explicitly; otherwise they are
        chosen at random (``random_points=True``, the paper's choice) or
        sequentially ``1..n`` (Shamir's original description). Points are
        always nonzero and distinct.
        """
        if isinstance(secret, int):
            secret = self.field(secret)
        if xs is not None:
            points = list(xs)
            if len(points) != self.n:
                raise ValueError("expected %d evaluation points" % self.n)
        elif random_points:
            chosen: set[int] = set()
            while len(chosen) < self.n:
                chosen.add(secrets.randbelow(self.field.p - 1) + 1)
            points = sorted(chosen)
        else:
            points = list(range(1, self.n + 1))

        if len(set(points)) != len(points):
            raise ValueError("evaluation points must be distinct")
        if any(x % self.field.p == 0 for x in points):
            raise ValueError("evaluation points must be nonzero mod p")

        # Degree k polynomial in the paper's phrasing = k coefficients
        # (k - 1 random ones plus the constant term), i.e. mathematical
        # degree k - 1: any k shares determine it, k - 1 do not.
        poly = Polynomial.random(self.field, self.k - 1, constant_term=secret)
        return [Share(x=x, y=int(poly(x))) for x in points]

    def reconstruct(self, shares: Iterable[Share]) -> FieldElement:
        """Recover the secret from at least ``k`` shares."""
        return reconstruct_secret(self.field, shares, self.k)


def split_secret(
    field: PrimeField,
    secret: FieldElement | int,
    k: int,
    n: int,
    xs: Sequence[int] | None = None,
    random_points: bool = True,
) -> list[Share]:
    """Convenience wrapper around :class:`ShamirDealer`."""
    return ShamirDealer(field, k, n).split(secret, xs=xs, random_points=random_points)


@profiled(name="shamir.reconstruct")
def reconstruct_secret(
    field: PrimeField, shares: Iterable[Share], k: int | None = None
) -> FieldElement:
    """Reconstruct ``P(0)`` from shares via Lagrange interpolation at zero.

    When ``k`` is given, exactly the first ``k`` distinct shares are used
    and fewer than ``k`` raises :class:`ValueError`. Duplicate evaluation
    points with conflicting y-values also raise.
    """
    unique: dict[int, int] = {}
    for share in shares:
        x = share.x % field.p
        if x in unique and unique[x] != share.y % field.p:
            raise ValueError("conflicting shares for x=%d" % share.x)
        unique[x] = share.y % field.p
    items = sorted(unique.items())
    if k is not None:
        if len(items) < k:
            raise ValueError(
                "need at least %d distinct shares, got %d" % (k, len(items))
            )
        items = items[:k]
    if not items:
        raise ValueError("cannot reconstruct from zero shares")

    gammas = lagrange_coefficients_at_zero(field, [x for x, _ in items])
    total = field.zero()
    for gamma, (_, y) in zip(gammas, items):
        total = total + gamma * field(y)
    return total
