"""Cryptographic substrate — everything implemented from scratch.

Layout:

* :mod:`repro.crypto.numbers` — number theory (primality, modular sqrt...).
* :mod:`repro.crypto.field`, :mod:`repro.crypto.fq2` — GF(p) and GF(p^2).
* :mod:`repro.crypto.polynomial`, :mod:`repro.crypto.shamir` — Lagrange
  interpolation and Shamir's (k, n) secret sharing (paper section III-B).
* :mod:`repro.crypto.hashes`, :mod:`repro.crypto.mac`,
  :mod:`repro.crypto.kdf` — SHA-1 / SHA-256 / Keccak, HMAC, HKDF and
  OpenSSL's EVP_BytesToKey.
* :mod:`repro.crypto.aes`, :mod:`repro.crypto.modes`,
  :mod:`repro.crypto.gibberish` — AES with CBC/CTR and the GibberishAES
  ``Salted__`` container used by the paper's Implementation 1.
* :mod:`repro.crypto.ec`, :mod:`repro.crypto.pairing`,
  :mod:`repro.crypto.params`, :mod:`repro.crypto.hash_to_group` — the
  type-A supersingular curve, symmetric Tate pairing and hashing into G0
  (paper section III-A).
* :mod:`repro.crypto.bls` — BLS signatures for the tamper-detection
  countermeasures of the paper's security analysis (section VI).
* :mod:`repro.crypto.accel` — acceleration-tier selection (compiled GMP
  kernels with the pure-Python path as the always-tested reference,
  ``REPRO_CRYPTO_TIER=pure|compiled|auto``).
* :mod:`repro.crypto.parallel` — multiprocessing pool for embarrassingly
  parallel pairing work.
"""

from repro.crypto.ec import CurveParams, Point
from repro.crypto.field import FieldElement, PrimeField
from repro.crypto.pairing import Pairing
from repro.crypto.params import DEFAULT, SMALL, TOY, generate_type_a_params, get_params
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrScheme, SchnorrSignature
from repro.crypto.shamir import Share, ShamirDealer, reconstruct_secret, split_secret

# Probe and install the acceleration tier exactly once, at import: after
# the submodules above exist, before any caller can hit a hot path.
from repro.crypto import accel as _accel

_accel.initialize()

__all__ = [
    "CurveParams",
    "Point",
    "FieldElement",
    "PrimeField",
    "Pairing",
    "TOY",
    "SMALL",
    "DEFAULT",
    "get_params",
    "generate_type_a_params",
    "Share",
    "SchnorrScheme",
    "SchnorrKeyPair",
    "SchnorrSignature",
    "ShamirDealer",
    "split_secret",
    "reconstruct_secret",
]
