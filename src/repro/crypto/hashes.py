"""Hash functions implemented from scratch.

The paper's Implementation 1 computes all hashes with CryptoJS's SHA-3
(Keccak) and Implementation 2 with OpenSSL's SHA-1; the security analysis
only requires "a cryptographically secure hash function H". This module
implements all three families from their specifications:

* :class:`SHA1` — FIPS 180-4 (160-bit Merkle–Damgard).
* :class:`SHA256` — FIPS 180-4 (256-bit Merkle–Damgard).
* :class:`Keccak` / :func:`sha3_256` etc. — FIPS 202 sponge construction.

Each class follows the incremental ``update()/digest()`` hashlib protocol
and is cross-validated against :mod:`hashlib` in the test suite.
"""

from __future__ import annotations

import struct

__all__ = [
    "SHA1",
    "SHA256",
    "Keccak",
    "sha1",
    "sha256",
    "sha3_224",
    "sha3_256",
    "sha3_384",
    "sha3_512",
    "new",
]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _rotl32(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _rotr32(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _rotl64(x: int, n: int) -> int:
    n %= 64
    return ((x << n) | (x >> (64 - n))) & _MASK64


class _MerkleDamgard:
    """Shared machinery for the 32-bit-word SHA family."""

    block_size = 64
    digest_size = 0
    name = ""

    def __init__(self, data: bytes = b""):
        self._h = list(self._initial_state())
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def _initial_state(self) -> tuple[int, ...]:
        raise NotImplementedError

    def _compress(self, block: bytes) -> None:
        raise NotImplementedError

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("update() expects bytes-like data")
        data = bytes(data)
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= self.block_size:
            self._compress(self._buffer[: self.block_size])
            self._buffer = self._buffer[self.block_size :]

    def copy(self):
        clone = type(self)()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        return clone

    def digest(self) -> bytes:
        clone = self.copy()
        bit_length = clone._length * 8
        clone._buffer += b"\x80"
        while len(clone._buffer) % clone.block_size != 56:
            clone._buffer += b"\x00"
        clone._buffer += struct.pack(">Q", bit_length)
        while clone._buffer:
            clone._compress(clone._buffer[: clone.block_size])
            clone._buffer = clone._buffer[clone.block_size :]
        return b"".join(struct.pack(">I", h) for h in clone._h)

    def hexdigest(self) -> str:
        return self.digest().hex()


class SHA1(_MerkleDamgard):
    """SHA-1 per FIPS 180-4.

    Included because the paper's Implementation 2 hashes answers with
    OpenSSL's SHA-1. (SHA-1 is collision-broken; the reproduction defaults
    to SHA3-256 and only uses SHA-1 where fidelity to the paper matters.)
    """

    digest_size = 20
    name = "sha1"

    def _initial_state(self) -> tuple[int, ...]:
        return (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 80):
            w.append(_rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
        a, b, c, d, e = self._h
        for i in range(80):
            if i < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif i < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif i < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl32(a, 5) + f + e + k + w[i]) & _MASK32
            e, d, c, b, a = d, c, _rotl32(b, 30), a, temp
        self._h = [
            (self._h[0] + a) & _MASK32,
            (self._h[1] + b) & _MASK32,
            (self._h[2] + c) & _MASK32,
            (self._h[3] + d) & _MASK32,
            (self._h[4] + e) & _MASK32,
        ]


_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)


class SHA256(_MerkleDamgard):
    """SHA-256 per FIPS 180-4."""

    digest_size = 32
    name = "sha256"

    def _initial_state(self) -> tuple[int, ...]:
        return (
            0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
            0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
        )

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for i in range(16, 64):
            s0 = _rotr32(w[i - 15], 7) ^ _rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3)
            s1 = _rotr32(w[i - 2], 17) ^ _rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10)
            w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)
        a, b, c, d, e, f, g, h = self._h
        for i in range(64):
            s1 = _rotr32(e, 6) ^ _rotr32(e, 11) ^ _rotr32(e, 25)
            ch = (e & f) ^ (~e & g)
            temp1 = (h + s1 + ch + _SHA256_K[i] + w[i]) & _MASK32
            s0 = _rotr32(a, 2) ^ _rotr32(a, 13) ^ _rotr32(a, 22)
            maj = (a & b) ^ (a & c) ^ (b & c)
            temp2 = (s0 + maj) & _MASK32
            h, g, f, e, d, c, b, a = (
                g, f, e, (d + temp1) & _MASK32, c, b, a, (temp1 + temp2) & _MASK32,
            )
        self._h = [
            (old + new) & _MASK32
            for old, new in zip(self._h, (a, b, c, d, e, f, g, h))
        ]


# Keccak round constants and rotation offsets, FIPS 202 / Keccak reference.
_KECCAK_RC = (
    0x0000000000000001, 0x0000000000008082, 0x800000000000808A,
    0x8000000080008000, 0x000000000000808B, 0x0000000080000001,
    0x8000000080008081, 0x8000000000008009, 0x000000000000008A,
    0x0000000000000088, 0x0000000080008009, 0x000000008000000A,
    0x000000008000808B, 0x800000000000008B, 0x8000000000008089,
    0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
    0x000000000000800A, 0x800000008000000A, 0x8000000080008081,
    0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
)

_KECCAK_ROT = (
    (0, 36, 3, 41, 18),
    (1, 44, 10, 45, 2),
    (62, 6, 43, 15, 61),
    (28, 55, 25, 21, 56),
    (27, 20, 39, 8, 14),
)


def _keccak_f1600(state: list[int]) -> None:
    """The Keccak-f[1600] permutation over a 5x5 lane state (in place).

    ``state`` is a flat list of 25 64-bit lanes indexed ``x + 5 * y``.
    """
    for rc in _KECCAK_RC:
        # theta
        c = [
            state[x] ^ state[x + 5] ^ state[x + 10] ^ state[x + 15] ^ state[x + 20]
            for x in range(5)
        ]
        d = [c[(x - 1) % 5] ^ _rotl64(c[(x + 1) % 5], 1) for x in range(5)]
        for x in range(5):
            for y in range(5):
                state[x + 5 * y] ^= d[x]
        # rho + pi
        b = [0] * 25
        for x in range(5):
            for y in range(5):
                b[y + 5 * ((2 * x + 3 * y) % 5)] = _rotl64(
                    state[x + 5 * y], _KECCAK_ROT[x][y]
                )
        # chi
        for x in range(5):
            for y in range(5):
                state[x + 5 * y] = b[x + 5 * y] ^ (
                    ~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]
                )
        # iota
        state[0] ^= rc


class Keccak:
    """The Keccak sponge with SHA-3 padding (FIPS 202).

    ``capacity_bits`` must be twice the digest size in bits for the
    standard SHA-3 instances. ``domain`` selects the padding suffix:
    0x06 for SHA-3, 0x01 for legacy Keccak (as used by e.g. CryptoJS in
    "Keccak" mode).
    """

    def __init__(self, digest_size: int, data: bytes = b"", domain: int = 0x06):
        if digest_size not in (28, 32, 48, 64):
            raise ValueError("unsupported Keccak digest size %d" % digest_size)
        self.digest_size = digest_size
        self.name = "sha3_%d" % (digest_size * 8)
        self._rate = 200 - 2 * digest_size  # bytes
        self.block_size = self._rate
        self._domain = domain
        self._state = [0] * 25
        self._buffer = b""
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("update() expects bytes-like data")
        self._buffer += bytes(data)
        while len(self._buffer) >= self._rate:
            self._absorb(self._buffer[: self._rate])
            self._buffer = self._buffer[self._rate :]

    def _absorb(self, block: bytes) -> None:
        for i in range(len(block) // 8):
            self._state[i] ^= struct.unpack_from("<Q", block, i * 8)[0]
        _keccak_f1600(self._state)

    def copy(self) -> "Keccak":
        clone = Keccak(self.digest_size, domain=self._domain)
        clone._state = list(self._state)
        clone._buffer = self._buffer
        return clone

    def digest(self) -> bytes:
        clone = self.copy()
        pad_len = clone._rate - len(clone._buffer)
        if pad_len == 1:
            padding = bytes([clone._domain | 0x80])
        else:
            padding = bytes([clone._domain]) + b"\x00" * (pad_len - 2) + b"\x80"
        clone._absorb(clone._buffer + padding)
        out = b"".join(struct.pack("<Q", lane) for lane in clone._state)
        return out[: clone.digest_size]

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha1(data: bytes = b"") -> SHA1:
    return SHA1(data)


def sha256(data: bytes = b"") -> SHA256:
    return SHA256(data)


def sha3_224(data: bytes = b"") -> Keccak:
    return Keccak(28, data)


def sha3_256(data: bytes = b"") -> Keccak:
    return Keccak(32, data)


def sha3_384(data: bytes = b"") -> Keccak:
    return Keccak(48, data)


def sha3_512(data: bytes = b"") -> Keccak:
    return Keccak(64, data)


_CONSTRUCTORS = {
    "sha1": sha1,
    "sha256": sha256,
    "sha3_224": sha3_224,
    "sha3_256": sha3_256,
    "sha3_384": sha3_384,
    "sha3_512": sha3_512,
}


def new(name: str, data: bytes = b""):
    """hashlib-style constructor lookup by algorithm name."""
    try:
        return _CONSTRUCTORS[name](data)
    except KeyError:
        raise ValueError("unsupported hash algorithm %r" % name) from None
