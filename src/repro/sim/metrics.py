"""Aggregation and export of timing measurements.

The figure harness produces one :class:`~repro.sim.timing.TimingBreakdown`
per protocol run; real evaluations repeat runs and report statistics. This
module aggregates repeated breakdowns (mean / median / p95 for local,
network and total components) and exports figure series as CSV so results
can be plotted outside Python.
"""

from __future__ import annotations

import csv
import io
import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.sim.timing import TimingBreakdown

__all__ = [
    "Summary",
    "summarize",
    "figure_series_to_csv",
    "write_csv",
    "ResilienceMetrics",
    "BreakerTransition",
]


@dataclass(frozen=True)
class BreakerTransition:
    """One circuit-breaker state change, stamped with simulated time."""

    breaker: str
    old_state: str
    new_state: str
    at_s: float


class ResilienceMetrics:
    """Resilience-layer accounting, backed by a shared metrics registry.

    The retry policy and circuit breaker report here so experiments can
    ask "how many retries did this fault rate cost?" and chaos tests can
    assert the breaker actually cycled closed -> open -> half-open.

    Counts live in a :class:`~repro.obs.metrics.MetricsRegistry` under
    the ``resilience.`` namespace (``resilience.retry.<label>``,
    ``resilience.giveup.<label>``, ``resilience.backoff_s``,
    ``resilience.breaker.to.<state>``, plus a ``resilience.backoff``
    latency histogram) — pass the registry of the platform's
    :class:`~repro.obs.Observability` hub and every ``repro stats`` dump
    includes them alongside span timings. The pre-observability query
    API (``retry_count`` / ``transitions`` / ``backoff_s`` / the
    Counter-style ``retries`` and ``giveups`` views) is preserved.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Chronological breaker transitions; bounded only by breaker
        #: activity (state changes, not calls), so inherently small.
        self.transitions: list[BreakerTransition] = []

    def record_retry(self, label: str, backoff_s: float = 0.0) -> None:
        self.registry.counter("resilience.retry." + label).increment()
        self.registry.counter("resilience.backoff_s").add(backoff_s)
        self.registry.histogram("resilience.backoff").observe(backoff_s)

    def record_giveup(self, label: str) -> None:
        self.registry.counter("resilience.giveup." + label).increment()

    def record_transition(
        self, breaker: str, old_state: str, new_state: str, at_s: float
    ) -> None:
        self.transitions.append(
            BreakerTransition(breaker, old_state, new_state, at_s)
        )
        self.registry.counter("resilience.breaker.to." + new_state).increment()

    # -- query API (compatible with the pre-registry implementation) -----------

    @property
    def retries(self) -> Counter:
        """Counter view: retry count per operation label."""
        return Counter(
            {
                label: int(value)
                for label, value in self.registry.counters_with_prefix(
                    "resilience.retry."
                ).items()
            }
        )

    @property
    def giveups(self) -> Counter:
        """Counter view: exhausted retry budgets per operation label."""
        return Counter(
            {
                label: int(value)
                for label, value in self.registry.counters_with_prefix(
                    "resilience.giveup."
                ).items()
            }
        )

    @property
    def backoff_s(self) -> float:
        """Total simulated seconds spent in retry backoff."""
        return self.registry.counter("resilience.backoff_s").value

    def retry_count(self, label: str | None = None) -> int:
        if label is not None:
            return self.retries[label]
        return int(self.registry.counter_total("resilience.retry."))

    def transition_count(self, new_state: str | None = None) -> int:
        if new_state is None:
            return len(self.transitions)
        return sum(1 for t in self.transitions if t.new_state == new_state)


@dataclass(frozen=True)
class Summary:
    """Statistics (seconds) over repeated runs of one measurement."""

    count: int
    local_mean_s: float
    local_median_s: float
    local_p95_s: float
    network_mean_s: float
    network_median_s: float
    network_p95_s: float
    total_mean_s: float

    def as_row(self) -> dict[str, float | int]:
        return {
            "count": self.count,
            "local_mean_s": self.local_mean_s,
            "local_median_s": self.local_median_s,
            "local_p95_s": self.local_p95_s,
            "network_mean_s": self.network_mean_s,
            "network_median_s": self.network_median_s,
            "network_p95_s": self.network_p95_s,
            "total_mean_s": self.total_mean_s,
        }


def _p95(values: Sequence[float]) -> float:
    if len(values) == 1:
        return values[0]
    ordered = sorted(values)
    rank = 0.95 * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(ordered):
        return ordered[-1]
    return ordered[low] * (1 - frac) + ordered[low + 1] * frac


def summarize(breakdowns: Iterable[TimingBreakdown]) -> Summary:
    """Aggregate repeated runs; raises on an empty input."""
    runs = list(breakdowns)
    if not runs:
        raise ValueError("cannot summarize zero runs")
    locals_ = [b.local_s for b in runs]
    networks = [b.network_s for b in runs]
    totals = [b.total_s for b in runs]
    return Summary(
        count=len(runs),
        local_mean_s=statistics.fmean(locals_),
        local_median_s=statistics.median(locals_),
        local_p95_s=_p95(locals_),
        network_mean_s=statistics.fmean(networks),
        network_median_s=statistics.median(networks),
        network_p95_s=_p95(networks),
        total_mean_s=statistics.fmean(totals),
    )


def figure_series_to_csv(labelled_series: dict[str, list]) -> str:
    """Render Figure-10-style series (label -> [FigurePoint]) as CSV text
    with columns: n, <label> local_ms, <label> network_ms per label."""
    if not labelled_series:
        raise ValueError("no series to export")
    lengths = {len(points) for points in labelled_series.values()}
    if len(lengths) != 1:
        raise ValueError("series must cover the same N values")

    out = io.StringIO()
    writer = csv.writer(out)
    header = ["n"]
    for label in labelled_series:
        header += [f"{label}_local_ms", f"{label}_network_ms"]
    writer.writerow(header)
    count = lengths.pop()
    first = next(iter(labelled_series.values()))
    for i in range(count):
        row: list[object] = [first[i].n]
        for points in labelled_series.values():
            point = points[i]
            if point.n != first[i].n:
                raise ValueError("series disagree on N values")
            row += [round(point.local_ms, 3), round(point.network_ms, 3)]
        writer.writerow(row)
    return out.getvalue()


def write_csv(labelled_series: dict[str, list], path: str) -> None:
    with open(path, "w", newline="") as handle:
        handle.write(figure_series_to_csv(labelled_series))
