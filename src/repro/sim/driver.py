"""System-level simulation driver: a day in the life of the deployment.

The paper evaluates single protocol runs; a service operator cares about
aggregate behaviour — how many puzzles get shared and solved per day, how
often legitimate friends are denied, what load the SP and DH carry, how
many bytes the network moves. This driver composes the whole stack
(workload generator -> platform -> metered flows) into one seeded
simulation and reports those aggregates.

Simulated day: each tick, a random user shares an event album with
probability ``share_rate``; every friend then attempts access according to
their knowledge class (attendee / invitee / stranger — strangers rarely
bother). Results feed the capstone example and the A7 scale ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.platform import SocialPuzzlePlatform
from repro.core.errors import SocialPuzzleError
from repro.crypto.ec import CurveParams
from repro.crypto.params import TOY
from repro.osn.workload import WorkloadGenerator

__all__ = ["SimulationConfig", "SimulationReport", "run_simulation"]


@dataclass(frozen=True)
class SimulationConfig:
    num_users: int = 40
    ticks: int = 30
    share_probability: float = 0.4
    questions_per_event: int = 4
    threshold: int = 2
    attendee_fraction: float = 0.35
    invitee_fraction: float = 0.3
    stranger_attempt_probability: float = 0.2
    construction: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.construction not in (1, 2):
            raise ValueError("construction must be 1 or 2")
        if not 0 < self.threshold <= self.questions_per_event:
            raise ValueError("threshold out of range")


@dataclass
class SimulationReport:
    """Aggregates over the simulated period."""

    shares: int = 0
    access_attempts: int = 0
    access_granted: int = 0
    access_denied: int = 0
    attendee_denied: int = 0  # false negatives: full knowers who failed
    stranger_granted: int = 0  # false positives: must stay zero
    sharer_local_s: float = 0.0
    sharer_network_s: float = 0.0
    receiver_local_s: float = 0.0
    receiver_network_s: float = 0.0
    bytes_transferred: int = 0
    sp_stored_puzzles: int = 0
    dh_stored_bytes: int = 0
    per_tick_shares: list[int] = field(default_factory=list)

    @property
    def grant_rate(self) -> float:
        return self.access_granted / self.access_attempts if self.access_attempts else 0.0

    def summary_lines(self) -> list[str]:
        return [
            "shares: %d  attempts: %d  granted: %d (%.0f%%)  denied: %d"
            % (
                self.shares,
                self.access_attempts,
                self.access_granted,
                100 * self.grant_rate,
                self.access_denied,
            ),
            "false negatives (attendees denied): %d   false positives "
            "(strangers granted): %d" % (self.attendee_denied, self.stranger_granted),
            "sharer cost: %.2fs local + %.2fs network;  receiver cost: "
            "%.2fs local + %.2fs network"
            % (
                self.sharer_local_s,
                self.sharer_network_s,
                self.receiver_local_s,
                self.receiver_network_s,
            ),
            "network bytes: %d;  SP puzzles: %d;  DH bytes at rest: %d"
            % (self.bytes_transferred, self.sp_stored_puzzles, self.dh_stored_bytes),
        ]


def run_simulation(
    config: SimulationConfig = SimulationConfig(),
    params: CurveParams = TOY,
) -> SimulationReport:
    """Run the seeded simulation; deterministic for a given config."""
    rng = random.Random(config.seed)
    generator = WorkloadGenerator(seed=config.seed)
    platform = SocialPuzzlePlatform(params=params)
    users = generator.populate_social_graph(platform.provider, config.num_users)
    report = SimulationReport()

    for tick in range(config.ticks):
        tick_shares = 0
        if rng.random() >= config.share_probability:
            report.per_tick_shares.append(0)
            continue
        sharer = rng.choice(users)
        friends = platform.provider.friends_of(sharer)
        if not friends:
            report.per_tick_shares.append(0)
            continue

        event = generator.event(config.questions_per_event)
        share = platform.share(
            sharer,
            b"object-tick-%d" % tick,
            event.context,
            k=config.threshold,
            construction=config.construction,
        )
        report.shares += 1
        tick_shares += 1
        report.sharer_local_s += share.timing.local_s
        report.sharer_network_s += share.timing.network_s
        report.bytes_transferred += share.timing.bytes_transferred()

        knowledge_split = generator.split_audience(
            event.context,
            friends,
            attendee_fraction=config.attendee_fraction,
            invitee_fraction=config.invitee_fraction,
        )
        for friend in friends:
            knowledge = knowledge_split[friend.user_id]
            is_attendee = knowledge is event.context
            if knowledge is None:
                # A stranger: usually doesn't bother; when they do, they
                # guess wrong answers.
                if rng.random() >= config.stranger_attempt_probability:
                    continue
                knowledge = generator.corrupted_knowledge(
                    event.context, len(event.context)
                )
            report.access_attempts += 1
            try:
                result = platform.solve(
                    friend,
                    share,
                    knowledge,
                    construction=config.construction,
                    rng=random.Random(rng.randrange(2**31))
                    if config.construction == 1
                    else None,
                )
            except SocialPuzzleError:
                report.access_denied += 1
                if is_attendee:
                    report.attendee_denied += 1
                continue
            report.access_granted += 1
            report.receiver_local_s += result.timing.local_s
            report.receiver_network_s += result.timing.network_s
            report.bytes_transferred += result.timing.bytes_transferred()
            if knowledge_split[friend.user_id] is None:
                report.stranger_granted += 1
        report.per_tick_shares.append(tick_shares)

    report.sp_stored_puzzles = (
        platform.app_c1.service.puzzle_count()
        + platform.app_c2.service.puzzle_count()
    )
    report.dh_stored_bytes = platform.storage.stored_bytes()
    return report
