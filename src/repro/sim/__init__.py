"""Measurement substrate: device cost models, the local/network timing
split of the paper's Figure 10, and aggregation/CSV export.

The figure harness (:mod:`repro.sim.figures`) and the system-level
simulation driver (:mod:`repro.sim.driver`) sit above the apps layer and
are imported explicitly (not re-exported here) to avoid import cycles.
"""

from repro.sim.devices import PC, TABLET, DeviceProfile, get_device
from repro.sim.metrics import Summary, figure_series_to_csv, summarize, write_csv
from repro.sim.timing import CostMeter, CostRecord, TimingBreakdown

__all__ = [
    "DeviceProfile",
    "PC",
    "TABLET",
    "get_device",
    "CostMeter",
    "CostRecord",
    "TimingBreakdown",
    "Summary",
    "summarize",
    "figure_series_to_csv",
    "write_csv",
]
