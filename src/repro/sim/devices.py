"""Device cost models for the paper's two client platforms.

The paper evaluates on (a) a PC — quad-core 2.5 GHz, 1 GB RAM, Ubuntu
13.04, Firefox — and (b) a Nexus 7 tablet running Firefox for Android
(Implementation 1 only; the cpabe toolkit is Linux/x86-only, which is why
Figure 10(c,d) has no tablet series for Implementation 2 — we keep that
restriction via :attr:`DeviceProfile.supports_cpabe_toolkit`).

We cannot run on the original hardware, so local processing is *measured*
by running the real (pure-Python) cryptography and scaled by the device's
``compute_scale`` — a relative-speed factor. The PC anchors the scale at
1.0; the tablet factor (~4.5x slower) reflects 2013-era mobile JavaScript
performance relative to a desktop. Only relative shape is claimed, exactly
as in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.osn.network import NetworkLink, WLAN_PC, WLAN_TABLET

__all__ = ["DeviceProfile", "PC", "TABLET", "get_device"]


@dataclass(frozen=True)
class DeviceProfile:
    """A client platform: compute speed factor + default network path."""

    name: str
    compute_scale: float
    supports_cpabe_toolkit: bool

    def default_link(self, seed: int | None = None, jitter: float = 0.0) -> NetworkLink:
        if self.name.startswith("tablet"):
            return WLAN_TABLET(seed=seed, jitter=jitter)
        return WLAN_PC(seed=seed, jitter=jitter)

    def scale(self, measured_seconds: float) -> float:
        """Convert a measured local computation into modelled device time."""
        if measured_seconds < 0:
            raise ValueError("measured time must be non-negative")
        return measured_seconds * self.compute_scale


PC = DeviceProfile(
    name="pc-quadcore-2.5ghz",
    compute_scale=1.0,
    supports_cpabe_toolkit=True,
)

TABLET = DeviceProfile(
    name="tablet-nexus7",
    compute_scale=4.5,
    supports_cpabe_toolkit=False,
)

_DEVICES = {"pc": PC, "tablet": TABLET}


def get_device(name: str) -> DeviceProfile:
    """Look up a device by short name ('pc' or 'tablet')."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise ValueError(
            "unknown device %r; choose from %s" % (name, sorted(_DEVICES))
        ) from None
