"""Cost metering: the harness behind Figure 10's two-part bars.

A :class:`CostMeter` accumulates, for one protocol role (sharer or
receiver) on one device:

* **local processing** — wall-clock time of real crypto work measured with
  ``perf_counter`` inside :meth:`CostMeter.measure`, scaled by the device's
  relative speed; and
* **network delay** — modelled request delays charged against a
  :class:`~repro.osn.network.NetworkLink` via :meth:`charge_upload` /
  :meth:`charge_download`.

The result is a :class:`TimingBreakdown`, mirroring exactly the local
processing / network delay split the paper plots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.osn.network import NetworkLink
from repro.sim.devices import DeviceProfile

__all__ = ["CostMeter", "TimingBreakdown", "CostRecord"]


@dataclass(frozen=True)
class CostRecord:
    """One metered step."""

    label: str
    kind: str  # "local" or "network"
    seconds: float
    num_bytes: int = 0


@dataclass
class TimingBreakdown:
    """Totals for one protocol run, in seconds."""

    local_s: float = 0.0
    network_s: float = 0.0
    records: list[CostRecord] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.local_s + self.network_s

    def bytes_transferred(self) -> int:
        return sum(r.num_bytes for r in self.records if r.kind == "network")

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            local_s=self.local_s + other.local_s,
            network_s=self.network_s + other.network_s,
            records=self.records + other.records,
        )


class CostMeter:
    """Accumulates one role's costs on a given device and link."""

    def __init__(self, device: DeviceProfile, link: NetworkLink):
        self.device = device
        self.link = link
        self.breakdown = TimingBreakdown()

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Measure real compute time for the enclosed block, device-scaled."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = self.device.scale(time.perf_counter() - start)
            self.breakdown.local_s += elapsed
            self.breakdown.records.append(CostRecord(label, "local", elapsed))

    def charge_local(self, label: str, seconds: float) -> None:
        """Charge an already-measured local cost (device-scaled)."""
        scaled = self.device.scale(seconds)
        self.breakdown.local_s += scaled
        self.breakdown.records.append(CostRecord(label, "local", scaled))

    def charge_upload(self, label: str, num_bytes: int) -> None:
        delay = self.link.upload(num_bytes, label)
        self.breakdown.network_s += delay
        self.breakdown.records.append(CostRecord(label, "network", delay, num_bytes))

    def charge_download(self, label: str, num_bytes: int) -> None:
        delay = self.link.download(num_bytes, label)
        self.breakdown.network_s += delay
        self.breakdown.records.append(CostRecord(label, "network", delay, num_bytes))

    def report(self) -> TimingBreakdown:
        return self.breakdown
