"""Cost metering: the harness behind Figure 10's two-part bars.

A :class:`CostMeter` accumulates, for one protocol role (sharer or
receiver) on one device:

* **local processing** — wall-clock time of real crypto work measured with
  ``perf_counter`` inside :meth:`CostMeter.measure`, scaled by the device's
  relative speed; and
* **network delay** — modelled request delays charged against a
  :class:`~repro.osn.network.NetworkLink` via :meth:`charge_upload` /
  :meth:`charge_download`.

The result is a :class:`TimingBreakdown`, mirroring exactly the local
processing / network delay split the paper plots.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.osn.network import NetworkLink
from repro.sim.devices import DeviceProfile

__all__ = ["CostMeter", "TimingBreakdown", "CostRecord", "SimClock"]


class SimClock:
    """A deterministic simulated clock.

    The resilience layer (:mod:`repro.osn.resilience`) schedules retry
    backoff and circuit-breaker cooldowns against this clock instead of
    wall time: ``sleep`` advances simulated time instantly, so chaos
    tests sweep thousands of retries in milliseconds and stay exactly
    reproducible. ``slept_s`` separates time spent waiting from time
    merely observed, for metrics.
    """

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_s = start_s
        self.slept_s = 0.0

    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now_s

    def sleep(self, seconds: float) -> None:
        """Advance simulated time (a zero-cost stand-in for a real sleep)."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now_s += seconds
        self.slept_s += seconds

    def advance(self, seconds: float) -> None:
        """Advance time without counting it as backoff sleep (e.g. the
        passage of simulated request time between operations)."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._now_s += seconds


@dataclass(frozen=True)
class CostRecord:
    """One metered step."""

    label: str
    kind: str  # "local" or "network"
    seconds: float
    num_bytes: int = 0


@dataclass
class TimingBreakdown:
    """Totals for one protocol run, in seconds."""

    local_s: float = 0.0
    network_s: float = 0.0
    records: list[CostRecord] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.local_s + self.network_s

    def bytes_transferred(self) -> int:
        return sum(r.num_bytes for r in self.records if r.kind == "network")

    def merged_with(self, other: "TimingBreakdown") -> "TimingBreakdown":
        return TimingBreakdown(
            local_s=self.local_s + other.local_s,
            network_s=self.network_s + other.network_s,
            records=self.records + other.records,
        )


class CostMeter:
    """Accumulates one role's costs on a given device and link."""

    def __init__(self, device: DeviceProfile, link: NetworkLink):
        self.device = device
        self.link = link
        self.breakdown = TimingBreakdown()

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Measure real compute time for the enclosed block, device-scaled."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = self.device.scale(time.perf_counter() - start)
            self.breakdown.local_s += elapsed
            self.breakdown.records.append(CostRecord(label, "local", elapsed))

    def charge_local(self, label: str, seconds: float) -> None:
        """Charge an already-measured local cost (device-scaled)."""
        scaled = self.device.scale(seconds)
        self.breakdown.local_s += scaled
        self.breakdown.records.append(CostRecord(label, "local", scaled))

    def charge_upload(self, label: str, num_bytes: int) -> None:
        delay = self.link.upload(num_bytes, label)
        self.breakdown.network_s += delay
        self.breakdown.records.append(CostRecord(label, "network", delay, num_bytes))

    def charge_download(self, label: str, num_bytes: int) -> None:
        delay = self.link.download(num_bytes, label)
        self.breakdown.network_s += delay
        self.breakdown.records.append(CostRecord(label, "network", delay, num_bytes))

    def report(self) -> TimingBreakdown:
        return self.breakdown
