"""Shared harness for reproducing the paper's Figure 10 series.

The paper's evaluation (section VIII) fixes messages at 100 characters,
answers at 20, questions at 50, threshold k = 1, and varies the number of
contexts N (from 2, because CP-ABE rejects a (1,1) gate). Each figure
plots, per N, the breakdown into *local processing delay* and *network
delay (incl. server-side processing)* for one role (sharer or receiver) —
comparing Implementation 1 vs 2 on the PC (10a, 10b) and PC vs tablet for
Implementation 1 (10c, 10d).

:func:`measure_point` runs the real metered application flow once for one
(construction, role, device, N) combination and returns the modelled
breakdown; the figure modules assemble series from it, print the table the
paper plots, and assert the expected shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.clients import SocialPuzzleAppC1, SocialPuzzleAppC2
from repro.core.context import Context
from repro.crypto.ec import CurveParams
from repro.crypto.params import DEFAULT
from repro.osn.provider import ServiceProvider
from repro.osn.storage import StorageHost
from repro.osn.workload import PaperWorkload
from repro.sim.devices import DeviceProfile, PC

# The paper varies N starting at 2; we sample the same range.
N_VALUES = [2, 4, 6, 8, 10]
THRESHOLD_K = 1


@dataclass(frozen=True)
class FigurePoint:
    """One bar of a Figure 10 series."""

    n: int
    local_ms: float
    network_ms: float

    @property
    def total_ms(self) -> float:
        return self.local_ms + self.network_ms


def _fresh_apps(
    params: CurveParams, file_size_model: str
) -> tuple[SocialPuzzleAppC1, SocialPuzzleAppC2, ServiceProvider, StorageHost]:
    provider = ServiceProvider()
    storage = StorageHost()
    app1 = SocialPuzzleAppC1(provider, storage)
    app2 = SocialPuzzleAppC2(
        provider, storage, params, file_size_model=file_size_model
    )
    return app1, app2, provider, storage


def _full_display_rng(n: int, k: int = THRESHOLD_K, limit: int = 10_000) -> random.Random:
    """A seed whose DisplayPuzzle draw shows all n questions, so a
    receiver's answers are never hidden by the random subset."""
    for seed in range(limit):
        if random.Random(seed).randint(k, n) == n:
            return random.Random(seed)
    raise RuntimeError("no full-display seed found")


def measure_point(
    construction: int,
    role: str,
    n: int,
    device: DeviceProfile = PC,
    params: CurveParams = DEFAULT,
    file_size_model: str = "paper",
    seed: int = 0,
) -> FigurePoint:
    """Run one metered flow; return its local/network breakdown in ms."""
    workload = PaperWorkload(seed=seed)
    context: Context = workload.context(n)
    message = workload.message()

    app1, app2, provider, _ = _fresh_apps(params, file_size_model)
    sharer = provider.register_user("sharer")
    receiver = provider.register_user("receiver")
    provider.befriend(sharer, receiver)

    app = app1 if construction == 1 else app2
    share = app.share(
        sharer, message, context, k=THRESHOLD_K, n=n, device=device,
        link=device.default_link(),
    )
    if role == "sharer":
        timing = share.timing
    elif role == "receiver":
        kwargs = dict(device=device, link=device.default_link())
        if construction == 1:
            kwargs["rng"] = _full_display_rng(n)
        result = app.attempt_access(receiver, share.puzzle_id, context, **kwargs)
        assert result.plaintext == message
        timing = result.timing
    else:
        raise ValueError("role must be 'sharer' or 'receiver'")

    return FigurePoint(
        n=n, local_ms=timing.local_s * 1e3, network_ms=timing.network_s * 1e3
    )


def series(
    construction: int,
    role: str,
    device: DeviceProfile = PC,
    params: CurveParams = DEFAULT,
    file_size_model: str = "paper",
    n_values: list[int] | None = None,
) -> list[FigurePoint]:
    return [
        measure_point(
            construction, role, n, device=device, params=params,
            file_size_model=file_size_model,
        )
        for n in (n_values or N_VALUES)
    ]


def print_figure(title: str, labelled_series: dict[str, list[FigurePoint]]) -> None:
    """Print the rows the paper's figure plots (per-N stacked bars)."""
    print(f"\n=== {title} ===")
    print(f"{'N':>3}", end="")
    for label in labelled_series:
        print(f"  {label + ' local(ms)':>22} {label + ' network(ms)':>24}", end="")
    print()
    lengths = {len(s) for s in labelled_series.values()}
    assert len(lengths) == 1, "series must share N values"
    for i in range(lengths.pop()):
        n = next(iter(labelled_series.values()))[i].n
        print(f"{n:>3}", end="")
        for points in labelled_series.values():
            point = points[i]
            print(f"  {point.local_ms:>22.1f} {point.network_ms:>24.1f}", end="")
        print()
