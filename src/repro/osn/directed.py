"""Directed (follower-model) OSN variant.

The paper (section I): "OSNs with directed social connections and the
ones that provide only very minimalistic access control mechanisms (e.g.,
Twitter) will benefit even more because the context-based access mechanism
will add a layer of privacy protection."

:class:`DirectedServiceProvider` models that world: `follow` is one-way,
posts default to **public** (Twitter's "all tweets are public"), and the
only native audience controls are public/followers. Social puzzles layered
on top then provide the *only* real confidentiality — which is exactly the
claim; the tests show a puzzle-protected post is unreadable even to
followers who lack the context, while a native post is readable by anyone.
"""

from __future__ import annotations

from repro.osn.provider import OsnError, Post, ServiceProvider, User

__all__ = ["DirectedServiceProvider"]


class DirectedServiceProvider(ServiceProvider):
    """A Twitter-like OSN: one-way follows, public-by-default posts."""

    def __init__(self, name: str = "twitter-sim"):
        super().__init__(name=name)
        self._follows: dict[int, set[int]] = {}

    # -- directed edges -----------------------------------------------------------

    def follow(self, follower: User, followee: User) -> None:
        if follower.user_id == followee.user_id:
            raise OsnError("users cannot follow themselves")
        self._account(follower)
        self._account(followee)
        self._follows.setdefault(follower.user_id, set()).add(followee.user_id)

    def unfollow(self, follower: User, followee: User) -> None:
        self._follows.get(follower.user_id, set()).discard(followee.user_id)

    def is_following(self, follower: User, followee: User) -> bool:
        return followee.user_id in self._follows.get(follower.user_id, set())

    def followers_of(self, user: User) -> list[User]:
        self._account(user)
        return [
            self._accounts[uid].user
            for uid in sorted(self._follows)
            if user.user_id in self._follows[uid]
        ]

    def following_of(self, user: User) -> list[User]:
        self._account(user)
        return [
            self._accounts[uid].user
            for uid in sorted(self._follows.get(user.user_id, set()))
        ]

    # -- symmetric API is disabled -----------------------------------------------------

    def befriend(self, a: User, b: User) -> None:
        raise OsnError(
            "directed OSNs have no symmetric friendships; use follow()"
        )

    def are_friends(self, a: User, b: User) -> bool:
        """Mutual follows are the closest analogue of friendship."""
        return self.is_following(a, b) and self.is_following(b, a)

    # -- posting: public by default, minimalistic controls -----------------------------

    def post(self, author: User, content: str, audience="public") -> Post:
        if isinstance(audience, str) and audience not in ("public", "followers"):
            raise OsnError(
                "directed OSNs support only 'public' or 'followers' audiences"
            )
        if audience == "followers":
            # Resolve to an explicit id set at post time (protected account).
            follower_ids = [u.user_id for u in self.followers_of(author)]
            return super().post(author, content, audience=follower_ids)
        return super().post(author, content, audience="public")

    def feed(self, viewer: User) -> list[Post]:
        """Home timeline: posts by followees (plus own), newest first."""
        self._account(viewer)
        following = self._follows.get(viewer.user_id, set())
        visible = [
            p
            for p in self._posts.values()
            if (p.author.user_id in following or p.author.user_id == viewer.user_id)
            and self.can_view(viewer, p)
        ]
        return sorted(visible, key=lambda p: -p.post_id)
