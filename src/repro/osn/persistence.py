"""World snapshots: serialize a running simulation to JSON and back.

Lets a deployment (or the CLI) span multiple processes: share a puzzle in
one invocation, snapshot the world, solve it in another. Captures the
service provider (users, profiles, friendships, posts), the storage host's
blobs, and both puzzle services' state. Audit trails are deliberately NOT
persisted — they are measurement instruments, not system state.

Everything binary rides base64 inside JSON; puzzles use their canonical
wire encodings (:meth:`repro.core.puzzle.Puzzle.to_bytes`,
:mod:`repro.abe.serialize`), so a snapshot is also a compatibility test of
those formats.
"""

from __future__ import annotations

import base64
import json

from repro.abe.serialize import decode_access_tree, encode_access_tree
from repro.apps.platform import SocialPuzzlePlatform
from repro.core.construction2 import C2Upload
from repro.core.puzzle import Puzzle
from repro.crypto.params import PRESETS
from repro.osn.provider import Post, User

__all__ = ["snapshot_platform", "restore_platform", "save_platform", "load_platform"]

_FORMAT_VERSION = 1


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


def snapshot_platform(platform: SocialPuzzlePlatform) -> dict:
    """Capture the full world state as a JSON-serializable dict."""
    provider = platform.provider
    param_name = next(
        (name for name, preset in PRESETS.items() if preset == platform.params),
        None,
    )
    if param_name is None:
        raise ValueError("only preset pairing parameters can be snapshotted")

    accounts = []
    for account in provider._accounts.values():
        accounts.append(
            {
                "user_id": account.user.user_id,
                "name": account.user.name,
                "profile": account.profile,
                "friends": sorted(account.friends),
            }
        )
    posts = []
    for post in provider._posts.values():
        posts.append(
            {
                "post_id": post.post_id,
                "author_id": post.author.user_id,
                "content": post.content,
                "audience": (
                    post.audience
                    if isinstance(post.audience, str)
                    else sorted(post.audience)
                ),
            }
        )
    blobs = {url: _b64(data) for url, data in platform.storage._blobs.items()}

    c1 = {
        str(puzzle_id): _b64(puzzle.to_bytes())
        for puzzle_id, puzzle in platform.app_c1.service._puzzles.items()
    }
    c2 = {}
    for puzzle_id, record in platform.app_c2.service._records.items():
        c2[str(puzzle_id)] = {
            "tree": _b64(encode_access_tree(record.tree_perturbed)),
            "pk": _b64(record.pk_bytes),
            "mk": _b64(record.mk_bytes),
            "url": record.url,
            "sharer": record.sharer_name,
        }

    return {
        "version": _FORMAT_VERSION,
        "params": param_name,
        "user_serial": max((a["user_id"] for a in accounts), default=0),
        "post_serial": max((p["post_id"] for p in posts), default=0),
        "storage_serial": platform.storage.object_count(),
        "accounts": accounts,
        "posts": posts,
        "blobs": blobs,
        "c1_puzzles": c1,
        "c2_puzzles": c2,
    }


def restore_platform(snapshot: dict) -> SocialPuzzlePlatform:
    """Rebuild a platform from :func:`snapshot_platform` output."""
    if snapshot.get("version") != _FORMAT_VERSION:
        raise ValueError(
            "unsupported snapshot version %r" % snapshot.get("version")
        )
    from repro.crypto.params import get_params
    import itertools

    platform = SocialPuzzlePlatform(params=get_params(snapshot["params"]))
    provider = platform.provider

    users: dict[int, User] = {}
    for entry in snapshot["accounts"]:
        user = User(user_id=entry["user_id"], name=entry["name"])
        users[user.user_id] = user
        from repro.osn.provider import _Account

        provider._accounts[user.user_id] = _Account(
            user=user, profile=dict(entry["profile"]), friends=set(entry["friends"])
        )
    provider._user_serial = itertools.count(snapshot["user_serial"] + 1)

    for entry in snapshot["posts"]:
        audience = entry["audience"]
        provider._posts[entry["post_id"]] = Post(
            post_id=entry["post_id"],
            author=users[entry["author_id"]],
            content=entry["content"],
            audience=audience if isinstance(audience, str) else frozenset(audience),
        )
    provider._post_serial = itertools.count(snapshot["post_serial"] + 1)

    import itertools as _it

    platform.storage._blobs = {
        url: _unb64(data) for url, data in snapshot["blobs"].items()
    }
    platform.storage._serial = _it.count(snapshot["storage_serial"] + 1)

    c1_service = platform.app_c1.service
    for puzzle_id, encoded in snapshot["c1_puzzles"].items():
        c1_service._puzzles[int(puzzle_id)] = Puzzle.from_bytes(_unb64(encoded))
    c1_service._serial = max((int(i) for i in snapshot["c1_puzzles"]), default=0)

    c2_service = platform.app_c2.service
    for puzzle_id, entry in snapshot["c2_puzzles"].items():
        c2_service._records[int(puzzle_id)] = C2Upload(
            puzzle_id=int(puzzle_id),
            tree_perturbed=decode_access_tree(_unb64(entry["tree"])),
            pk_bytes=_unb64(entry["pk"]),
            mk_bytes=_unb64(entry["mk"]),
            url=entry["url"],
            sharer_name=entry["sharer"],
        )
    c2_service._serial = max((int(i) for i in snapshot["c2_puzzles"]), default=0)

    return platform


def save_platform(platform: SocialPuzzlePlatform, path: str) -> None:
    """Snapshot to a JSON file."""
    with open(path, "w") as handle:
        json.dump(snapshot_platform(platform), handle)


def load_platform(path: str) -> SocialPuzzlePlatform:
    """Restore from a JSON file."""
    with open(path) as handle:
        return restore_platform(json.load(handle))
