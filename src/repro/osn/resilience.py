"""Client-side resilience: retries, circuit breaking, safe storage access.

The paper's system model assumes an honest-but-curious SP and a
Dropbox-style DH — but says nothing about either being *available*. A
deployment serving millions of users must survive timeouts, lost writes
and stale reads without ever corrupting protocol state. This module is
the client-side answer, mirroring what real encrypted-OSN middlemen ship:

* :class:`RetryPolicy` — bounded exponential backoff with seeded jitter.
  Backoff waits run against a :class:`~repro.sim.timing.SimClock`, never
  wall time, so chaos sweeps are instant and exactly reproducible.
* :class:`CircuitBreaker` — classic closed -> open -> half-open breaker;
  while open, calls fail fast with a typed
  :class:`~repro.core.errors.CircuitOpenError` instead of hammering a
  dead dependency.
* :class:`ResilientStorageClient` — wraps any
  :class:`~repro.osn.storage.StorageHost` and classifies faults the way
  the fault model defines them: ``TransientStorageError`` is retryable,
  plain ``StorageError`` (missing URL, malformed request) is permanent.
  Optional read-after-write verification turns silently *lost* writes
  into retryable faults.

Everything reports into :class:`~repro.sim.metrics.ResilienceMetrics`
so experiments can count retries and breaker transitions per fault rate.
When an :class:`~repro.obs.Observability` hub is active, every retry,
giveup and breaker transition additionally lands in its structured
event log (``retry.backoff`` / ``retry.giveup`` /
``breaker.transition`` events), so ``repro trace`` output explains
*why* a span took as long as it did.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.core.errors import CircuitOpenError, TransientServiceError
from repro.obs.events import Label
from repro.obs.runtime import count, emit_event
from repro.osn.storage import StorageError, StorageHost
from repro.sim.metrics import ResilienceMetrics
from repro.sim.timing import SimClock

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilientStorageClient"]

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """The default retryability classifier.

    ``TransientServiceError`` covers provider/network faults; the storage
    fault taxonomy is separate (``TransientStorageError`` is-a
    ``StorageError`` for backwards compatibility *and* is-a
    ``TransientServiceError`` via :mod:`repro.osn.faults`).
    """
    return isinstance(exc, TransientServiceError)


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter on a simulated clock.

    Attempt ``i`` (0-based) failing transiently costs a backoff of
    ``min(base * multiplier**i, max_delay) * (1 + jitter)`` simulated
    seconds, where jitter is drawn uniformly from
    ``[-jitter_fraction, +jitter_fraction]`` by a seeded RNG. After
    ``max_attempts`` total attempts the last transient error is re-raised
    (it is already a typed error, so callers still see a clean failure).
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 0
    clock: SimClock | None = None
    metrics: ResilienceMetrics | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter_fraction < 1:
            raise ValueError("jitter fraction must be in [0, 1)")
        if self.clock is None:
            self.clock = SimClock()
        self._rng = random.Random(self.seed)

    def backoff_s(self, attempt: int) -> float:
        """Backoff after 0-based ``attempt`` failed, jitter included."""
        base = min(
            self.base_delay_s * self.multiplier**attempt, self.max_delay_s
        )
        if self.jitter_fraction:
            base *= 1 + self._rng.uniform(
                -self.jitter_fraction, self.jitter_fraction
            )
        return base

    def call(
        self,
        fn: Callable[[], T],
        label: str = "operation",
        retryable: Callable[[BaseException], bool] = is_transient,
    ) -> T:
        """Run ``fn`` with retries; permanent errors surface immediately.

        :class:`~repro.core.errors.CircuitOpenError` is never retried
        here — the breaker's own cooldown governs when the dependency may
        be probed again, and busy-waiting on it would defeat its purpose.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except CircuitOpenError:
                raise
            except Exception as exc:
                if not retryable(exc):
                    raise
                attempt += 1
                if attempt >= self.max_attempts:
                    if self.metrics is not None:
                        self.metrics.record_giveup(label)
                    emit_event(
                        "retry.giveup",
                        label=Label(label),
                        attempts=attempt,
                        error=Label(type(exc).__name__),
                    )
                    raise
                backoff = self.backoff_s(attempt - 1)
                if self.metrics is not None:
                    self.metrics.record_retry(label, backoff)
                emit_event(
                    "retry.backoff",
                    label=Label(label),
                    attempt=attempt,
                    backoff_s=backoff,
                    error=Label(type(exc).__name__),
                )
                assert self.clock is not None
                self.clock.sleep(backoff)


class CircuitBreaker:
    """closed -> open -> half-open breaker over a simulated clock.

    ``failure_threshold`` consecutive failures trip the breaker open;
    while open every call is rejected with
    :class:`~repro.core.errors.CircuitOpenError`. After
    ``reset_timeout_s`` simulated seconds the breaker lets one trial call
    through (half-open): success closes it, failure re-opens it and
    restarts the cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: SimClock | None = None,
        metrics: ResilienceMetrics | None = None,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.clock = clock if clock is not None else SimClock()
        self.metrics = metrics
        self.name = name
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at_s = 0.0

    @property
    def state(self) -> str:
        """Current state, accounting for an elapsed open-state cooldown."""
        if (
            self._state == self.OPEN
            and self.clock.now() - self._opened_at_s >= self.reset_timeout_s
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state``, reporting to metrics and the active
        observability hub; entering OPEN stamps the cooldown start and
        entering CLOSED clears the failure streak."""
        if new_state == self._state:
            return
        if self.metrics is not None:
            self.metrics.record_transition(
                self.name, self._state, new_state, self.clock.now()
            )
        emit_event(
            "breaker.transition",
            breaker=Label(self.name),
            old_state=Label(self._state),
            new_state=Label(new_state),
            failures=self._consecutive_failures,
        )
        self._state = new_state
        if new_state == self.OPEN:
            self._opened_at_s = self.clock.now()
        elif new_state == self.CLOSED:
            self._consecutive_failures = 0

    def allow(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` while open."""
        if self.state == self.OPEN:
            raise CircuitOpenError(
                "%s is open after %d consecutive failures; retry after "
                "%.3fs of cooldown"
                % (self.name, self._consecutive_failures, self.reset_timeout_s)
            )

    def record_success(self) -> None:
        """Report a successful call: clears the consecutive-failure
        streak, and closes the breaker if this was the half-open trial
        call succeeding."""
        self._consecutive_failures = 0
        if self._state == self.HALF_OPEN:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """Report a failed call: a half-open trial failure re-opens the
        breaker immediately; a closed-state failure counts toward the
        ``failure_threshold`` streak and trips the breaker open when the
        streak reaches it."""
        self._consecutive_failures += 1
        if self._state == self.HALF_OPEN:
            self._transition(self.OPEN)
        elif (
            self._state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(self.OPEN)

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker, recording the outcome."""
        self.allow()
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result


class ResilientStorageClient:
    """A retrying, circuit-broken view of a :class:`StorageHost`.

    Drop-in for any code that takes a ``StorageHost`` (clients duck-type
    the storage argument): ``put``/``get``/``exists``/``delete`` retry
    retryable faults under the policy, optionally behind a breaker.
    ``verify_writes`` re-reads existence after every put so a silently
    *lost* write (the nastiest DH fault) is caught and retried instead of
    surfacing much later as a missing object at access time.

    Everything else (``audit``, counters, ``tamper``...) forwards to the
    wrapped host, so audit-trail assertions and snapshots see through the
    wrapper.
    """

    def __init__(
        self,
        host: StorageHost,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        verify_writes: bool = True,
        degraded_reads: bool = False,
    ):
        self.host = host
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        self.verify_writes = verify_writes
        self.degraded_reads = degraded_reads
        # Reads served with stale risk through the degraded fallback.
        self.stale_risk_reads = 0

    # ``wrapped`` is the conventional unwrap attribute shared with the
    # fault-injecting proxies in :mod:`repro.osn.faults`.
    @property
    def wrapped(self) -> StorageHost:
        return self.host

    def _guarded(self, fn: Callable[[], T]) -> Callable[[], T]:
        """Wrap ``fn`` under the breaker (if any): the breaker gates and
        scores each *individual attempt*, while the retry policy outside
        it spaces the attempts — so a run of transient faults can trip
        the breaker mid-retry-loop and fail the remaining attempts fast."""
        if self.breaker is None:
            return fn
        breaker = self.breaker
        return lambda: breaker.call(fn)

    @staticmethod
    def _storage_retryable(exc: BaseException) -> bool:
        # TransientStorageError is retryable; any other StorageError
        # (missing URL, malformed request) is a permanent condition that
        # retrying cannot fix.
        if isinstance(exc, TransientServiceError):
            return True
        return False

    def put(self, data: bytes) -> str:
        """Store ``data``, retrying transient faults; with
        ``verify_writes`` a write the host acknowledged but lost is
        detected by an existence re-read and retried like any other
        transient fault."""

        def attempt() -> str:
            url = self.host.put(data)
            if self.verify_writes and not self.host.exists(url):
                # Import here keeps storage-layer modules import-cycle free.
                from repro.osn.faults import TransientStorageError

                raise TransientStorageError(
                    "read-after-write check failed: write to %s was lost" % url
                )
            return url

        return self.retry.call(
            self._guarded(attempt), "storage.put", self._storage_retryable
        )

    def get(self, url: str) -> bytes:
        """Fetch a blob, retrying transient faults; a missing URL is a
        permanent :class:`~repro.osn.storage.StorageError` and surfaces
        on the first attempt.

        With ``degraded_reads`` and a host exposing ``get_degraded``
        (the quorum cluster does), an open circuit or an exhausted
        transient retry budget falls back to one R=1 read instead of
        failing: availability over consistency, with the serve counted
        as stale-risk (``stale_risk_reads``,
        ``resilience.degraded_reads``) and the host queueing the URL for
        async read repair. The fallback deliberately bypasses the
        breaker — it is the one path allowed to keep serving while the
        breaker cools down."""
        try:
            return self.retry.call(
                self._guarded(lambda: self.host.get(url)),
                "storage.get",
                self._storage_retryable,
            )
        except (CircuitOpenError, TransientServiceError) as exc:
            fallback = getattr(self.host, "get_degraded", None)
            if not self.degraded_reads or fallback is None:
                raise
            data = fallback(url)
            self.stale_risk_reads += 1
            count("resilience.degraded_reads")
            emit_event(
                "storage.degraded_read",
                url=Label(url),
                cause=Label(type(exc).__name__),
            )
            return data

    def exists(self, url: str) -> bool:
        """Existence probe with the same retry/breaker treatment as
        :meth:`get`."""
        return self.retry.call(
            self._guarded(lambda: self.host.exists(url)),
            "storage.exists",
            self._storage_retryable,
        )

    def delete(self, url: str) -> bool:
        """Idempotent delete under retry; returns whether a blob was
        actually removed (the atomic-share rollback path reads this)."""
        return self.retry.call(
            self._guarded(lambda: self.host.delete(url)),
            "storage.delete",
            self._storage_retryable,
        )

    def __getattr__(self, name: str):
        """Forward everything else (``audit``, counters, ``tamper``...)
        to the wrapped host so assertions see through the wrapper."""
        return getattr(self.host, name)
