"""The OSN service provider SP (paper section IV-A).

A symmetric social-networking service in the style of Facebook: users
maintain profiles and friend lists (friendship is mutual), share posts, and
see friends' posts in a feed subject to static ACL audience rules — the
baseline access control the paper's social puzzles complement.

Like :class:`repro.osn.storage.StorageHost`, the provider keeps an
:class:`~repro.osn.storage.AuditTrail` of every byte it handles so the
surveillance-resistance property is testable: when social puzzles are in
use the SP stores puzzles and verifies hashed answers but must never
observe a plaintext answer or object.

Third-party applications (the paper's Facebook canvas app) register via
:meth:`ServiceProvider.host_service` and are looked up by name.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.runtime import count, maybe_span
from repro.osn.storage import AuditTrail

__all__ = ["User", "Post", "ServiceProvider", "OsnError"]


class OsnError(ValueError):
    """Raised for invalid OSN operations (unknown user, self-friending...)."""


@dataclass(frozen=True)
class User:
    """A registered account."""

    user_id: int
    name: str

    def __str__(self) -> str:
        return f"{self.name}#{self.user_id}"


@dataclass(frozen=True)
class Post:
    """A feed item. ``audience`` is 'friends', 'public' or a frozenset of
    user ids (a custom ACL, Facebook-style)."""

    post_id: int
    author: User
    content: str
    audience: str | frozenset[int] = "friends"


@dataclass
class _Account:
    user: User
    profile: dict[str, str] = field(default_factory=dict)
    friends: set[int] = field(default_factory=set)


class ServiceProvider:
    """An in-memory symmetric OSN."""

    def __init__(self, name: str = "facebook-sim"):
        self.name = name
        self.audit = AuditTrail()
        self._accounts: dict[int, _Account] = {}
        self._posts: dict[int, Post] = {}
        self._user_serial = itertools.count(1)
        self._post_serial = itertools.count(1)
        self._services: dict[str, object] = {}
        self._frontend = None

    # -- accounts -----------------------------------------------------------------

    def register_user(self, name: str, profile: dict[str, str] | None = None) -> User:
        user = User(user_id=next(self._user_serial), name=name)
        self._accounts[user.user_id] = _Account(user=user, profile=dict(profile or {}))
        return user

    def _account(self, user: User) -> _Account:
        account = self._accounts.get(user.user_id)
        if account is None or account.user != user:
            raise OsnError("unknown user %s" % user)
        return account

    def profile_of(self, user: User) -> dict[str, str]:
        return dict(self._account(user).profile)

    def update_profile(self, user: User, **fields: str) -> None:
        self._account(user).profile.update(fields)

    def user_count(self) -> int:
        return len(self._accounts)

    # -- friendships (symmetric, per the paper's system model) ----------------------

    def befriend(self, a: User, b: User) -> None:
        if a.user_id == b.user_id:
            raise OsnError("users cannot befriend themselves")
        account_a = self._account(a)
        account_b = self._account(b)
        account_a.friends.add(b.user_id)
        account_b.friends.add(a.user_id)

    def unfriend(self, a: User, b: User) -> None:
        self._account(a).friends.discard(b.user_id)
        self._account(b).friends.discard(a.user_id)

    def are_friends(self, a: User, b: User) -> bool:
        return b.user_id in self._account(a).friends

    def friends_of(self, user: User) -> list[User]:
        account = self._account(user)
        return [self._accounts[uid].user for uid in sorted(account.friends)]

    # -- posts and feeds --------------------------------------------------------------

    def post(
        self,
        author: User,
        content: str,
        audience: str | Iterable[int] = "friends",
    ) -> Post:
        with maybe_span("sp.post.publish", author_id=author.user_id):
            self._account(author)
            self.audit.record(content.encode())
            if isinstance(audience, str):
                if audience not in ("friends", "public"):
                    raise OsnError(
                        "audience must be 'friends', 'public' or a set of ids"
                    )
                resolved: str | frozenset[int] = audience
            else:
                resolved = frozenset(audience)
            item = Post(
                post_id=next(self._post_serial),
                author=author,
                content=content,
                audience=resolved,
            )
            self._posts[item.post_id] = item
            count("osn.provider.posts")
            return item

    def can_view(self, viewer: User, post: Post) -> bool:
        """Static ACL check — the paper's 'additional layer of privacy
        control by means of Facebook's privacy settings'."""
        if post.author.user_id == viewer.user_id:
            return True
        if post.audience == "public":
            return True
        if post.audience == "friends":
            return self.are_friends(post.author, viewer)
        return viewer.user_id in post.audience  # custom ACL

    def feed(self, viewer: User) -> list[Post]:
        """All posts visible to ``viewer``, newest first."""
        self._account(viewer)
        visible = [p for p in self._posts.values() if self.can_view(viewer, p)]
        return sorted(visible, key=lambda p: -p.post_id)

    def get_post(self, viewer: User, post_id: int) -> Post:
        count("osn.provider.post_reads")
        post = self._posts.get(post_id)
        if post is None or not self.can_view(viewer, post):
            count("osn.provider.post_reads.denied")
            raise OsnError("post %d not visible to %s" % (post_id, viewer))
        return post

    # -- hosted third-party services -----------------------------------------------------

    def host_service(self, name: str, service: object) -> None:
        """Register a canvas application (e.g. the social-puzzle service)."""
        if name in self._services:
            raise OsnError("service %r already hosted" % name)
        self._services[name] = service

    def service(self, name: str) -> object:
        try:
            return self._services[name]
        except KeyError:
            raise OsnError("no hosted service %r" % name) from None

    # -- wire face ----------------------------------------------------------------

    def dispatch(self, request: bytes) -> bytes:
        """Serve one serialized post/read request (see :mod:`repro.proto`).

        The frontend is created lazily — and the import is local — so the
        substrate layer carries no import-time dependency on the protocol
        layer (which depends back on this module for ``User``/``Post``).
        """
        if self._frontend is None:
            from repro.proto.frontends import ProviderFrontend

            self._frontend = ProviderFrontend(self)
        return self._frontend.dispatch(request)
