"""Deterministic network cost model.

The paper's testbed put clients on an 802.11n WLAN (60 Mbps) talking HTTPS
to an application hosted on Amazon EC2, and its Figure 10 separates
"network delay (incl. server-side processing)" from local processing.
Implementation 2's network delay dominates because every share ships four
CP-ABE files (~600 KB total) through cURL, each with per-request overhead;
the paper also notes instability "due to the unpredictability of the
communication network speed".

This module reproduces those effects with an explicit cost model per
request:

    delay(bytes) = rtt + per_request_overhead + bytes * 8 / direction_bps
                   [ * (1 + jitter) when a seeded jitter fraction is set ]

The WLAN is 60 Mbps, but the end-to-end path to EC2 is constrained by the
campus WAN uplink — hence asymmetric uplink/downlink rates. Links are
deterministic by default so benchmarks are reproducible; seeded jitter
reproduces the paper's measurement noise. Every transfer is logged so
experiments can report exactly how many bytes each construction moved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs.runtime import count, observe

__all__ = ["NetworkLink", "Transfer", "WLAN_PC", "WLAN_TABLET", "LAN_FAST"]


@dataclass(frozen=True)
class Transfer:
    """One request recorded on a link."""

    description: str
    direction: str  # "up" or "down"
    num_bytes: int
    delay_s: float


@dataclass
class NetworkLink:
    """A client-to-server path with latency and asymmetric bandwidth."""

    name: str
    rtt_s: float
    uplink_bps: float
    downlink_bps: float
    per_request_overhead_s: float = 0.0
    jitter_fraction: float = 0.0
    seed: int | None = None
    log: list[Transfer] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.rtt_s < 0 or self.per_request_overhead_s < 0:
            raise ValueError("latencies must be non-negative")
        if not 0 <= self.jitter_fraction < 1:
            raise ValueError("jitter fraction must be in [0, 1)")
        self._rng = random.Random(self.seed)

    def _delay(self, num_bytes: int, bps: float) -> float:
        if num_bytes < 0:
            raise ValueError("byte count must be non-negative")
        base = self.rtt_s + self.per_request_overhead_s + num_bytes * 8 / bps
        if self.jitter_fraction:
            base *= 1 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return base

    def upload_delay(self, num_bytes: int) -> float:
        return self._delay(num_bytes, self.uplink_bps)

    def download_delay(self, num_bytes: int) -> float:
        return self._delay(num_bytes, self.downlink_bps)

    def upload(self, num_bytes: int, description: str = "") -> float:
        """Charge one upload request; returns and logs its delay."""
        delay = self.upload_delay(num_bytes)
        self.log.append(Transfer(description, "up", num_bytes, delay))
        count("osn.network.up.requests")
        count("osn.network.up.bytes", num_bytes)
        observe("osn.network.up.delay_s", delay)
        return delay

    def download(self, num_bytes: int, description: str = "") -> float:
        """Charge one download request; returns and logs its delay."""
        delay = self.download_delay(num_bytes)
        self.log.append(Transfer(description, "down", num_bytes, delay))
        count("osn.network.down.requests")
        count("osn.network.down.bytes", num_bytes)
        observe("osn.network.down.delay_s", delay)
        return delay

    def total_bytes(self) -> int:
        return sum(t.num_bytes for t in self.log)

    def total_delay(self) -> float:
        return sum(t.delay_s for t in self.log)

    def reset_log(self) -> None:
        self.log.clear()


def WLAN_PC(seed: int | None = None, jitter: float = 0.0) -> NetworkLink:
    """The paper's PC: 802.11n WLAN, WAN path to EC2.

    RTT covers the WLAN hop plus the WAN round trip and HTTPS processing.
    The uplink to EC2 is the bottleneck (campus/ISP upstream), which is
    what makes Implementation 2's ~600 KB of file uploads expensive.
    """
    return NetworkLink(
        name="wlan-pc-to-ec2",
        rtt_s=0.045,
        uplink_bps=2.0e6,
        downlink_bps=12.0e6,
        per_request_overhead_s=0.035,
        jitter_fraction=jitter,
        seed=seed,
    )


def WLAN_TABLET(seed: int | None = None, jitter: float = 0.0) -> NetworkLink:
    """The Nexus 7 on the same WLAN: slower radio and TLS handling."""
    return NetworkLink(
        name="wlan-tablet-to-ec2",
        rtt_s=0.060,
        uplink_bps=1.5e6,
        downlink_bps=8.0e6,
        per_request_overhead_s=0.055,
        jitter_fraction=jitter,
        seed=seed,
    )


def LAN_FAST(seed: int | None = None, jitter: float = 0.0) -> NetworkLink:
    """Co-located SP and DH (the paper hosts both on one EC2 server)."""
    return NetworkLink(
        name="lan-1gbps",
        rtt_s=0.0005,
        uplink_bps=1e9,
        downlink_bps=1e9,
        per_request_overhead_s=0.0,
        jitter_fraction=jitter,
        seed=seed,
    )
