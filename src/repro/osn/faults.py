"""Fault injection for the storage, provider and network substrates.

A dependable-systems reproduction should show how the protocols behave
when the substrate misbehaves *non-maliciously* (the paper's DSN venue
cares): a Dropbox-style DH can time out, lose writes, or serve stale
bytes; the SP can drop a publish or a verify; the network path can lose
requests outright. Each injector here wraps a real component with seeded
failure modes so tests can assert that every client surfaces a clean,
typed error instead of corrupting state — and that retries succeed once
the fault clears.

Faults are injected *before* the wrapped operation mutates anything
(a request dropped on the way to the server), except for
``lost_write_rate``, which deliberately models the nastier
acknowledged-then-dropped write. That discipline is what makes the
injected faults safely retryable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import (
    TransientNetworkError,
    TransientProviderError,
    TransientServiceError,
)
from repro.osn.network import NetworkLink, Transfer
from repro.osn.provider import Post, ServiceProvider, User
from repro.osn.storage import StorageError, StorageHost

__all__ = [
    "TransientStorageError",
    "FlakyStorageHost",
    "FlakyServiceProvider",
    "FlakyPuzzleService",
    "CorruptingDispatcher",
    "LossyNetworkLink",
]


class TransientStorageError(StorageError, TransientServiceError):
    """A retryable storage failure (timeout, 5xx...).

    Subclasses ``StorageError`` so storage-layer callers keep working,
    and ``TransientServiceError`` so the resilience layer classifies it
    as retryable.
    """


class FlakyStorageHost(StorageHost):
    """A storage host with seeded, configurable fault injection.

    ``put_failure_rate`` / ``get_failure_rate`` — probability of raising a
    :class:`TransientStorageError` per call.
    ``lost_write_rate`` — probability a put *appears* to succeed but the
    blob is silently dropped (a much nastier fault; subsequent gets raise
    the usual missing-URL error).
    """

    def __init__(
        self,
        name: str = "flaky-dh",
        put_failure_rate: float = 0.0,
        get_failure_rate: float = 0.0,
        lost_write_rate: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(name=name)
        for rate in (put_failure_rate, get_failure_rate, lost_write_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.put_failure_rate = put_failure_rate
        self.get_failure_rate = get_failure_rate
        self.lost_write_rate = lost_write_rate
        self._rng = random.Random(seed)
        self.faults_injected = 0

    def put(self, data: bytes) -> str:
        if self._rng.random() < self.put_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError("injected put failure")
        url = super().put(data)
        if self._rng.random() < self.lost_write_rate:
            self.faults_injected += 1
            self.delete(url)  # the write never landed
        return url

    def get(self, url: str) -> bytes:
        if self._rng.random() < self.get_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError("injected get failure")
        return super().get(url)


class FlakyServiceProvider(ServiceProvider):
    """A service provider with seeded transient faults on the post path.

    ``post_failure_rate`` — probability that publishing the hyperlink
    post times out (before anything is stored).
    ``read_failure_rate`` — probability that fetching a post times out.
    """

    def __init__(
        self,
        name: str = "flaky-sp",
        post_failure_rate: float = 0.0,
        read_failure_rate: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(name=name)
        for rate in (post_failure_rate, read_failure_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.post_failure_rate = post_failure_rate
        self.read_failure_rate = read_failure_rate
        self._rng = random.Random(seed)
        self.faults_injected = 0

    def post(self, author, content, audience="friends") -> Post:
        if self._rng.random() < self.post_failure_rate:
            self.faults_injected += 1
            raise TransientProviderError("injected post-publish failure")
        return super().post(author, content, audience=audience)

    def get_post(self, viewer: User, post_id: int) -> Post:
        if self._rng.random() < self.read_failure_rate:
            self.faults_injected += 1
            raise TransientProviderError("injected post-read failure")
        return super().get_post(viewer, post_id)


class FlakyPuzzleService:
    """A fault-injecting proxy around a C1 or C2 puzzle service.

    ``store_failure_rate`` — transient failure publishing Z_O to the SP
    (``store_puzzle``/``store_upload``), injected before anything is
    stored so a retry cannot double-register.
    ``verify_failure_rate`` — transient failure on the Verify endpoint.
    ``stale_display_rate`` — ``display_puzzle`` returns a previously
    served (cached, possibly stale) response instead of a fresh one, the
    classic eventually-consistent read.

    Everything not intercepted forwards to ``wrapped``, so snapshots,
    audit-trail assertions and throttling helpers see through the proxy.
    """

    def __init__(
        self,
        wrapped,
        store_failure_rate: float = 0.0,
        verify_failure_rate: float = 0.0,
        stale_display_rate: float = 0.0,
        seed: int = 0,
    ):
        for rate in (store_failure_rate, verify_failure_rate, stale_display_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.wrapped = wrapped
        self.store_failure_rate = store_failure_rate
        self.verify_failure_rate = verify_failure_rate
        self.stale_display_rate = stale_display_rate
        self._rng = random.Random(seed)
        self._display_cache: dict[int, object] = {}
        self.faults_injected = 0

    def _maybe_fail(self, rate: float, what: str) -> None:
        if self._rng.random() < rate:
            self.faults_injected += 1
            raise TransientProviderError("injected %s failure" % what)

    def store_puzzle(self, puzzle) -> int:
        self._maybe_fail(self.store_failure_rate, "puzzle-store")
        return self.wrapped.store_puzzle(puzzle)

    def store_upload(self, record) -> int:
        self._maybe_fail(self.store_failure_rate, "puzzle-store")
        return self.wrapped.store_upload(record)

    def display_puzzle(self, puzzle_id: int, **kwargs):
        cached = self._display_cache.get(puzzle_id)
        if cached is not None and self._rng.random() < self.stale_display_rate:
            self.faults_injected += 1
            return cached
        displayed = self.wrapped.display_puzzle(puzzle_id, **kwargs)
        self._display_cache[puzzle_id] = displayed
        return displayed

    def verify(self, answers, **kwargs):
        self._maybe_fail(self.verify_failure_rate, "verify")
        return self.wrapped.verify(answers, **kwargs)

    def __getattr__(self, name: str):
        return getattr(self.wrapped, name)


class CorruptingDispatcher:
    """A wire path that corrupts serialized protocol frames in flight.

    Wraps any ``dispatch(bytes) -> bytes`` frontend (the protocol
    engine, a substrate frontend, or another wrapper — attach it as a
    ``MessageBus`` dispatcher to fault the whole protocol plane). Three
    seeded failure modes, applied independently to requests and replies:

    ``flip_rate`` — one random bit flipped somewhere in the frame;
    ``truncate_rate`` — the frame cut short at a random point;
    ``drop_rate`` — the frame never arrives: the request times out and
    raises :class:`~repro.core.errors.TransientNetworkError` client-side.

    Because every frame carries a CRC-32 trailer
    (:mod:`repro.proto.envelope`), a flipped or truncated *request*
    surfaces server-side as a transient ``bad-message`` error reply and a
    mangled *reply* fails decoding client-side — both re-raise as
    :class:`~repro.core.errors.TransientNetworkError`, so the existing
    retry taxonomy absorbs wire corruption with no new error paths and,
    critically, no silently corrupted payload ever reaches a handler.
    """

    def __init__(
        self,
        wrapped,
        flip_rate: float = 0.0,
        truncate_rate: float = 0.0,
        drop_rate: float = 0.0,
        seed: int = 0,
    ):
        for rate in (flip_rate, truncate_rate, drop_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.wrapped = wrapped
        self.flip_rate = flip_rate
        self.truncate_rate = truncate_rate
        self.drop_rate = drop_rate
        self._rng = random.Random(seed)
        self.faults_injected = 0

    def _mangle(self, frame: bytes) -> bytes:
        """Apply at most one corruption mode to one direction's frame."""
        roll = self._rng.random()
        if roll < self.drop_rate:
            self.faults_injected += 1
            raise TransientNetworkError("frame dropped in transit")
        roll -= self.drop_rate
        if roll < self.flip_rate and frame:
            self.faults_injected += 1
            position = self._rng.randrange(len(frame))
            mangled = bytearray(frame)
            mangled[position] ^= 1 << self._rng.randrange(8)
            return bytes(mangled)
        roll -= self.flip_rate
        if roll < self.truncate_rate and frame:
            self.faults_injected += 1
            return frame[: self._rng.randrange(len(frame))]
        return frame

    def dispatch(self, request: bytes) -> bytes:
        inner = self.wrapped
        target = inner.dispatch if hasattr(inner, "dispatch") else inner
        return self._mangle(target(self._mangle(request)))


@dataclass
class LossyNetworkLink(NetworkLink):
    """A network path that drops a seeded fraction of requests.

    A dropped request costs a full ``timeout_s`` (charged to the link log
    like any transfer, so timing accounting reflects the stall) and then
    raises :class:`~repro.core.errors.TransientNetworkError`.
    """

    drop_rate: float = 0.0
    timeout_s: float = 5.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.drop_rate <= 1:
            raise ValueError("drop rate must be in [0, 1]")
        if self.timeout_s < 0:
            raise ValueError("timeout must be non-negative")
        self.drops = 0

    def _maybe_drop(self, num_bytes: int, description: str, direction: str) -> None:
        if self._rng.random() < self.drop_rate:
            self.drops += 1
            self.log.append(
                Transfer(description or "dropped request", direction, num_bytes, self.timeout_s)
            )
            raise TransientNetworkError(
                "request %r dropped by lossy link" % (description or direction)
            )

    def upload(self, num_bytes: int, description: str = "") -> float:
        self._maybe_drop(num_bytes, description, "up")
        return super().upload(num_bytes, description)

    def download(self, num_bytes: int, description: str = "") -> float:
        self._maybe_drop(num_bytes, description, "down")
        return super().download(num_bytes, description)
