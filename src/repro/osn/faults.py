"""Fault injection for the storage and provider substrates.

A dependable-systems reproduction should show how the protocols behave
when the substrate misbehaves *non-maliciously* (the paper's DSN venue
cares): a Dropbox-style DH can time out, lose writes, or serve stale
bytes. :class:`FlakyStorageHost` wraps a real host with seeded failure
modes so tests can assert that every client surfaces a clean, typed error
instead of corrupting state — and that retries succeed once the fault
clears.
"""

from __future__ import annotations

import random

from repro.osn.storage import StorageError, StorageHost

__all__ = ["TransientStorageError", "FlakyStorageHost"]


class TransientStorageError(StorageError):
    """A retryable storage failure (timeout, 5xx...)."""


class FlakyStorageHost(StorageHost):
    """A storage host with seeded, configurable fault injection.

    ``put_failure_rate`` / ``get_failure_rate`` — probability of raising a
    :class:`TransientStorageError` per call.
    ``lost_write_rate`` — probability a put *appears* to succeed but the
    blob is silently dropped (a much nastier fault; subsequent gets raise
    the usual missing-URL error).
    """

    def __init__(
        self,
        name: str = "flaky-dh",
        put_failure_rate: float = 0.0,
        get_failure_rate: float = 0.0,
        lost_write_rate: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(name=name)
        for rate in (put_failure_rate, get_failure_rate, lost_write_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.put_failure_rate = put_failure_rate
        self.get_failure_rate = get_failure_rate
        self.lost_write_rate = lost_write_rate
        self._rng = random.Random(seed)
        self.faults_injected = 0

    def put(self, data: bytes) -> str:
        if self._rng.random() < self.put_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError("injected put failure")
        url = super().put(data)
        if self._rng.random() < self.lost_write_rate:
            self.faults_injected += 1
            self.delete(url)  # the write never landed
        return url

    def get(self, url: str) -> bytes:
        if self._rng.random() < self.get_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError("injected get failure")
        return super().get(url)
