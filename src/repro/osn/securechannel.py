"""An authenticated secure channel — the simulation's "HTTPS".

The paper (section VII): "In order to provide confidentiality and
authentication, all communications between users and our application on
Amazon EC2 is carried over HTTPS." Rather than hand-waving that hop, this
module builds a TLS-like channel from the repository's own primitives:

* **Key agreement** — ephemeral ECDH on the type-A curve (x-coordinate of
  ``peer_eph * my_eph_secret``), keys derived with HKDF over the full
  handshake transcript.
* **Authentication** — a station-to-station handshake: the server (and
  optionally the client) BLS-signs the transcript, binding the ephemeral
  keys to long-term identities.
* **Record layer** — AES-256-CTR with an HMAC-SHA3-256 tag over
  (direction, sequence number, ciphertext): encrypt-then-MAC with
  per-direction keys, strictly increasing sequence numbers, so replayed,
  reordered or tampered records are rejected.

Security note, documented for honesty: on a type-A curve the MOV reduction
maps ECDH onto the discrete log in GF(q^2), so the channel's strength is
that of the pairing target group — the same level the whole construction
already assumes.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.core.errors import TransientNetworkError
from repro.crypto.bls import BlsKeyPair, BlsScheme
from repro.crypto.ec import CurveParams, Point
from repro.crypto.kdf import hkdf
from repro.crypto.mac import constant_time_compare, hmac_digest
from repro.crypto.modes import ctr_transform
from repro.obs.runtime import count
from repro.util.codec import CodecError, Reader, blob

__all__ = [
    "ChannelError",
    "ClientHello",
    "ServerHello",
    "ClientFinished",
    "Record",
    "ChannelEndpoint",
    "SecureDispatcher",
    "establish_channel",
]

_TAG_LEN = 32


class ChannelError(Exception):
    """Handshake or record-layer failure (authentication, replay, tamper)."""


@dataclass(frozen=True)
class ClientHello:
    client_ephemeral: Point


@dataclass(frozen=True)
class ServerHello:
    server_ephemeral: Point
    signature: bytes  # BLS over the transcript, by the server identity


@dataclass(frozen=True)
class ClientFinished:
    signature: bytes  # BLS over the transcript, by the client identity


@dataclass(frozen=True)
class Record:
    """One protected message on the wire."""

    sequence: int
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.sequence.to_bytes(8, "big") + blob(self.ciphertext) + self.tag

    @classmethod
    def from_bytes(cls, data: bytes) -> "Record":
        reader = Reader(data)
        sequence = int.from_bytes(reader.take(8), "big")
        ciphertext = reader.blob()
        tag = reader.take(_TAG_LEN)
        reader.done()
        return cls(sequence=sequence, ciphertext=ciphertext, tag=tag)

    def byte_size(self) -> int:
        return len(self.to_bytes())


def _transcript(client_eph: Point, server_eph: Point) -> bytes:
    return b"repro.sts.v1" + client_eph.to_bytes() + server_eph.to_bytes()


def _derive_keys(shared_point: Point, transcript: bytes) -> tuple[bytes, bytes, bytes, bytes]:
    """(client->server enc, c->s mac, server->client enc, s->c mac)."""
    if shared_point.infinity:
        raise ChannelError("degenerate ECDH share")
    width = (shared_point.curve.q.bit_length() + 7) // 8
    secret = shared_point.x.to_bytes(width, "big")
    material = hkdf(secret, 128, salt=transcript, info=b"repro.channel.keys")
    return material[:32], material[32:64], material[64:96], material[96:128]


class _DirectionState:
    """Sending or receiving half: key pair + sequence tracking."""

    def __init__(self, enc_key: bytes, mac_key: bytes, label: bytes):
        self.enc_key = enc_key
        self.mac_key = mac_key
        self.label = label
        self.next_sequence = 0

    def _nonce(self, sequence: int) -> bytes:
        return hkdf(
            self.label + sequence.to_bytes(8, "big"),
            16,
            info=b"repro.channel.nonce",
        )

    def protect(self, plaintext: bytes) -> Record:
        count("osn.securechannel.records.sealed")
        sequence = self.next_sequence
        self.next_sequence += 1
        ciphertext = ctr_transform(self.enc_key, plaintext, self._nonce(sequence))
        tag = hmac_digest(
            self.mac_key,
            self.label + sequence.to_bytes(8, "big") + ciphertext,
        )
        return Record(sequence=sequence, ciphertext=ciphertext, tag=tag)

    def open(self, record: Record) -> bytes:
        count("osn.securechannel.records.opened")
        if record.sequence != self.next_sequence:
            count("osn.securechannel.records.rejected")
            raise ChannelError(
                "sequence violation: expected %d, got %d (replay or reorder)"
                % (self.next_sequence, record.sequence)
            )
        expected = hmac_digest(
            self.mac_key,
            self.label + record.sequence.to_bytes(8, "big") + record.ciphertext,
        )
        if not constant_time_compare(record.tag, expected):
            count("osn.securechannel.records.rejected")
            raise ChannelError("record authentication failed (tampered)")
        self.next_sequence += 1
        return ctr_transform(
            self.enc_key, record.ciphertext, self._nonce(record.sequence)
        )


class ChannelEndpoint:
    """One side of an established channel."""

    def __init__(self, send_state: _DirectionState, receive_state: _DirectionState):
        self._send = send_state
        self._receive = receive_state

    def send(self, plaintext: bytes) -> Record:
        return self._send.protect(plaintext)

    def receive(self, record: Record) -> bytes:
        return self._receive.open(record)


class ChannelClient:
    """Client side of the station-to-station handshake."""

    def __init__(
        self,
        params: CurveParams,
        bls: BlsScheme,
        identity: BlsKeyPair | None = None,
    ):
        self.params = params
        self.bls = bls
        self.identity = identity
        self._eph_secret = secrets.randbelow(params.r - 1) + 1
        self.ephemeral = bls.generator * self._eph_secret

    def hello(self) -> ClientHello:
        return ClientHello(client_ephemeral=self.ephemeral)

    def finish(
        self, server_hello: ServerHello, server_identity: Point
    ) -> tuple[ClientFinished, ChannelEndpoint]:
        transcript = _transcript(self.ephemeral, server_hello.server_ephemeral)
        signature = Point.from_bytes(self.params, server_hello.signature)
        if not self.bls.verify(server_identity, transcript, signature):
            raise ChannelError("server authentication failed")
        shared = server_hello.server_ephemeral * self._eph_secret
        c2s_enc, c2s_mac, s2c_enc, s2c_mac = _derive_keys(shared, transcript)
        endpoint = ChannelEndpoint(
            send_state=_DirectionState(c2s_enc, c2s_mac, b"c2s"),
            receive_state=_DirectionState(s2c_enc, s2c_mac, b"s2c"),
        )
        if self.identity is not None:
            finished_sig = self.bls.sign(
                self.identity.secret, b"client" + transcript
            ).to_bytes()
        else:
            finished_sig = b""
        return ClientFinished(signature=finished_sig), endpoint


class ChannelServer:
    """Server side of the handshake."""

    def __init__(self, params: CurveParams, bls: BlsScheme, identity: BlsKeyPair):
        self.params = params
        self.bls = bls
        self.identity = identity

    def respond(self, hello: ClientHello) -> tuple[ServerHello, ChannelEndpoint, bytes]:
        count("osn.securechannel.handshakes")
        if hello.client_ephemeral.infinity or not hello.client_ephemeral.has_order_r():
            count("osn.securechannel.handshakes.rejected")
            raise ChannelError("invalid client ephemeral key")
        eph_secret = secrets.randbelow(self.params.r - 1) + 1
        server_ephemeral = self.bls.generator * eph_secret
        transcript = _transcript(hello.client_ephemeral, server_ephemeral)
        signature = self.bls.sign(self.identity.secret, transcript)
        shared = hello.client_ephemeral * eph_secret
        c2s_enc, c2s_mac, s2c_enc, s2c_mac = _derive_keys(shared, transcript)
        endpoint = ChannelEndpoint(
            send_state=_DirectionState(s2c_enc, s2c_mac, b"s2c"),
            receive_state=_DirectionState(c2s_enc, c2s_mac, b"c2s"),
        )
        return (
            ServerHello(
                server_ephemeral=server_ephemeral, signature=signature.to_bytes()
            ),
            endpoint,
            transcript,
        )

    def verify_finished(
        self, finished: ClientFinished, transcript: bytes, client_identity: Point
    ) -> None:
        """Optional mutual authentication check."""
        if not finished.signature:
            raise ChannelError("client did not authenticate")
        signature = Point.from_bytes(self.params, finished.signature)
        if not self.bls.verify(client_identity, b"client" + transcript, signature):
            raise ChannelError("client authentication failed")


def establish_channel(
    params: CurveParams,
    bls: BlsScheme,
    server_identity: BlsKeyPair,
    client_identity: BlsKeyPair | None = None,
) -> tuple[ChannelEndpoint, ChannelEndpoint]:
    """Run the whole handshake in-process; returns (client, server) ends."""
    client = ChannelClient(params, bls, identity=client_identity)
    server = ChannelServer(params, bls, identity=server_identity)
    hello = client.hello()
    server_hello, server_end, transcript = server.respond(hello)
    finished, client_end = client.finish(server_hello, server_identity.public)
    if client_identity is not None:
        server.verify_finished(finished, transcript, client_identity.public)
    return client_end, server_end


class SecureDispatcher:
    """A ``dispatch(bytes) -> bytes`` hop carried over the record layer.

    Wraps any dispatch frontend (engine, frontend, or another wrapper):
    every request frame is sealed by the client end, serialized as a
    :class:`Record`, opened by the server end, served, and the reply
    travels back the same way. A record that fails authentication,
    replay-protection, or record framing surfaces as
    :class:`~repro.core.errors.TransientNetworkError`, keeping the
    channel's failures inside the existing retry taxonomy.
    """

    def __init__(
        self,
        wrapped,
        client_end: ChannelEndpoint,
        server_end: ChannelEndpoint,
    ):
        self.wrapped = wrapped
        self.client_end = client_end
        self.server_end = server_end

    @classmethod
    def establish(cls, wrapped, params: CurveParams, bls: BlsScheme | None = None):
        """Handshake a fresh channel pair around ``wrapped``."""
        bls = bls if bls is not None else BlsScheme(params)
        client_end, server_end = establish_channel(params, bls, bls.keygen())
        return cls(wrapped, client_end, server_end)

    def dispatch(self, request: bytes) -> bytes:
        inner = self.wrapped
        target = inner.dispatch if hasattr(inner, "dispatch") else inner
        try:
            sealed = self.client_end.send(request).to_bytes()
            plain_request = self.server_end.receive(Record.from_bytes(sealed))
            reply = target(plain_request)
            sealed_reply = self.server_end.send(reply).to_bytes()
            return self.client_end.receive(Record.from_bytes(sealed_reply))
        except (ChannelError, CodecError) as exc:
            raise TransientNetworkError(
                "secure channel failure: %s" % exc
            ) from exc
