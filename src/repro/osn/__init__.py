"""Simulated OSN substrate: service provider, storage host, network model
and synthetic workloads (the paper's Facebook + EC2 + WLAN testbed).

World snapshots live in :mod:`repro.osn.persistence`; it is imported
lazily (not re-exported here) because it sits above the apps layer.
"""

from repro.osn.directed import DirectedServiceProvider
from repro.osn.network import LAN_FAST, NetworkLink, Transfer, WLAN_PC, WLAN_TABLET
from repro.osn.provider import OsnError, Post, ServiceProvider, User
from repro.osn.storage import AuditTrail, StorageError, StorageHost
from repro.osn.workload import PaperWorkload, SocialEvent, WorkloadGenerator

__all__ = [
    "NetworkLink",
    "Transfer",
    "WLAN_PC",
    "WLAN_TABLET",
    "LAN_FAST",
    "ServiceProvider",
    "DirectedServiceProvider",
    "User",
    "Post",
    "OsnError",
    "StorageHost",
    "StorageError",
    "AuditTrail",
    "WorkloadGenerator",
    "PaperWorkload",
    "SocialEvent",
]
