"""Synthetic workload generation.

The paper's motivating workloads are social events — parties, trips,
meetings — whose participants share knowledge of the context (location,
time, activities, participants, preferences; section I). Its measurements
fix message length at 100 characters, answers at 20 characters and
questions at 50 characters, with threshold k = 1 and N varying from 2.

This module provides:

* :class:`WorkloadGenerator` — seeded generator of realistic social events
  with contexts, friend graphs (Watts–Strogatz small-world via networkx),
  and per-user knowledge distributions (attendees know everything; invitees
  who missed the event know a random subset; strangers know nothing).
* :class:`PaperWorkload` — the exact fixed-size workload of section VIII,
  with questions/answers/messages padded to the paper's lengths.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

import networkx as nx

from repro.core.context import Context, QAPair
from repro.osn.provider import ServiceProvider, User

__all__ = ["SocialEvent", "WorkloadGenerator", "PaperWorkload"]

# Question templates per event kind: (question, answer vocabulary).
_EVENT_KINDS: dict[str, list[tuple[str, list[str]]]] = {
    "party": [
        ("Where was the party held?", ["rooftop", "lakehouse", "backyard", "club nine", "warehouse"]),
        ("Who brought the cake?", ["marguerite", "dmitri", "oksana", "ravi", "celine"]),
        ("What was the theme?", ["masquerade", "neon", "retro", "tropical", "noir"]),
        ("Which song closed the night?", ["wonderwall", "mr brightside", "dancing queen", "hey jude"]),
        ("What flavor was the punch?", ["mango", "hibiscus", "cherry", "ginger"]),
    ],
    "trip": [
        ("Which city did we fly into?", ["lisbon", "osaka", "cusco", "tbilisi", "reykjavik"]),
        ("What did we rent to get around?", ["scooters", "campervan", "bicycles", "jeep"]),
        ("Who lost their passport?", ["teodoro", "ingrid", "santiago", "mei"]),
        ("What dish did everyone order twice?", ["ramen", "ceviche", "khachapuri", "pastel de nata"]),
        ("Which hostel did we stay at?", ["casa luna", "nest inn", "pilgrims rest", "blue door"]),
    ],
    "meeting": [
        ("Which conference room did we use?", ["aurora", "zephyr", "kepler", "basalt"]),
        ("What was the codename of the project?", ["falconer", "quicksilver", "redwood", "tidepool"]),
        ("Who presented the roadmap?", ["the cto", "priya", "johannes", "the intern"]),
        ("What deadline did we commit to?", ["march 15", "end of q2", "friday the 13th", "new years eve"]),
        ("Which client was discussed?", ["acme corp", "globex", "initech", "umbrella"]),
    ],
    "wedding": [
        ("Where was the ceremony?", ["vineyard", "botanical garden", "chapel hill", "beachfront"]),
        ("What was the first dance song?", ["at last", "perfect", "la vie en rose", "stand by me"]),
        ("Who caught the bouquet?", ["fatima", "lucia", "noor", "greta"]),
        ("What was served for dinner?", ["salmon", "risotto", "lamb tagine", "paella"]),
        ("What color were the bridesmaid dresses?", ["sage", "dusty rose", "navy", "champagne"]),
    ],
}


@dataclass(frozen=True)
class SocialEvent:
    """A generated event: its kind, display name and full context C_O."""

    kind: str
    name: str
    context: Context


class WorkloadGenerator:
    """Seeded generator of events, knowledge distributions and graphs."""

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    # -- events and contexts -----------------------------------------------------

    def event(self, num_questions: int, kind: str | None = None) -> SocialEvent:
        """An event with ``num_questions`` context pairs.

        When a kind's template list is shorter than requested, extra
        machine-generated pairs are appended (distinct questions).
        """
        if num_questions < 1:
            raise ValueError("an event needs at least one context pair")
        kind = kind or self.rng.choice(sorted(_EVENT_KINDS))
        templates = list(_EVENT_KINDS[kind])
        self.rng.shuffle(templates)
        pairs: list[QAPair] = []
        for question, vocabulary in templates[:num_questions]:
            pairs.append(QAPair(question, self.rng.choice(vocabulary)))
        extra_index = 0
        while len(pairs) < num_questions:
            extra_index += 1
            pairs.append(
                QAPair(
                    f"Detail #{extra_index} only attendees of the {kind} would know?",
                    self._random_word(8),
                )
            )
        name = f"{kind}-{self.rng.randrange(10**6):06d}"
        return SocialEvent(kind=kind, name=name, context=Context(pairs))

    def knowledge_subset(self, context: Context, known_count: int) -> Context:
        """A uniformly random sub-context of ``known_count`` pairs —
        a receiver with partial knowledge."""
        if not 0 < known_count <= len(context):
            raise ValueError(
                "known_count %d out of range for context of %d"
                % (known_count, len(context))
            )
        questions = self.rng.sample(context.questions, known_count)
        return context.subset(questions)

    def corrupted_knowledge(self, context: Context, wrong_count: int) -> Context:
        """Full-size knowledge with ``wrong_count`` answers replaced by
        wrong values — a receiver who misremembers."""
        pairs = list(context.pairs)
        for index in self.rng.sample(range(len(pairs)), wrong_count):
            pair = pairs[index]
            pairs[index] = QAPair(pair.question, "wrong-" + self._random_word(6))
        return Context(pairs)

    def _random_word(self, length: int) -> str:
        return "".join(self.rng.choices(string.ascii_lowercase, k=length))

    # -- population -----------------------------------------------------------------

    def populate_social_graph(
        self,
        provider: ServiceProvider,
        num_users: int,
        mean_degree: int = 6,
        rewire_probability: float = 0.1,
    ) -> list[User]:
        """Register users on ``provider`` with a Watts–Strogatz small-world
        friendship structure (symmetric, like Facebook)."""
        if num_users < 3:
            raise ValueError("a social graph needs at least 3 users")
        k = max(2, min(mean_degree, num_users - 1))
        if k % 2:
            k -= 1
        graph = nx.watts_strogatz_graph(
            num_users, k, rewire_probability, seed=self.rng.randrange(2**31)
        )
        users = [provider.register_user(f"user{i:04d}") for i in range(num_users)]
        for a, b in graph.edges():
            provider.befriend(users[a], users[b])
        return users

    def split_audience(
        self,
        context: Context,
        friends: list[User],
        attendee_fraction: float = 0.3,
        invitee_fraction: float = 0.3,
    ) -> dict[int, Context | None]:
        """Assign knowledge per friend: attendees know the full context,
        invitees-who-missed know a random half, the rest know nothing
        (None) — the R_O / S_T - R_O split of section IV."""
        assignment: dict[int, Context | None] = {}
        for friend in friends:
            roll = self.rng.random()
            if roll < attendee_fraction:
                assignment[friend.user_id] = context
            elif roll < attendee_fraction + invitee_fraction:
                half = max(1, len(context) // 2)
                assignment[friend.user_id] = self.knowledge_subset(context, half)
            else:
                assignment[friend.user_id] = None
        return assignment


class PaperWorkload:
    """The exact workload of the paper's section VIII experiments:
    100-character messages, 50-character questions, 20-character answers,
    threshold k = 1 (CP-ABE observations start at N = 2)."""

    MESSAGE_LENGTH = 100
    QUESTION_LENGTH = 50
    ANSWER_LENGTH = 20

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def _exact_length_text(self, length: int, prefix: str) -> str:
        body = prefix + "-"
        alphabet = string.ascii_lowercase + string.digits
        while len(body) < length:
            body += self.rng.choice(alphabet)
        return body[:length]

    def message(self) -> bytes:
        return self._exact_length_text(self.MESSAGE_LENGTH, "msg").encode()

    def context(self, num_pairs: int) -> Context:
        pairs = [
            QAPair(
                self._exact_length_text(self.QUESTION_LENGTH, f"question-{i}"),
                self._exact_length_text(self.ANSWER_LENGTH, f"ans-{i}"),
            )
            for i in range(num_pairs)
        ]
        return Context(pairs)
