"""The storage service DH (paper section IV-A).

A URI-addressed blob store, logically separate from the service provider:
the paper allows it to be co-located with the SP or hosted by a third party
such as Dropbox. It stores *encrypted* objects only; everything it sees is
recorded in an audit trail so tests can prove the surveillance-resistance
property ("the DH never observed the plaintext object or any context
answer").

A malicious DH for the section VI-B analysis can tamper with stored blobs
via :meth:`StorageHost.tamper` — detection is then the receiving client's
job (signature verification).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.obs.runtime import count, maybe_span

__all__ = ["StorageHost", "AuditTrail", "StorageError"]


class StorageError(KeyError):
    """Raised for missing or malformed URLs."""


@dataclass
class AuditTrail:
    """Everything a (curious) service observed, as raw bytes.

    ``assert_never_saw`` is the executable form of the paper's
    surveillance-resistance claim: the sensitive value must not appear in
    any byte string the service handled.

    ``max_entries`` turns the trail into a ring buffer: once the cap is
    reached, recording a new frame evicts the oldest and bumps
    ``dropped``. The default stays unbounded because the security tests'
    never-saw assertions are only sound over a complete trail; bound it
    for million-operation cluster runs where the trail is operational
    telemetry, not evidence.
    """

    observed: list[bytes] = field(default_factory=list)
    max_entries: int | None = None
    dropped: int = 0

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")

    def record(self, data: bytes) -> None:
        self.observed.append(bytes(data))
        if self.max_entries is not None and len(self.observed) > self.max_entries:
            overflow = len(self.observed) - self.max_entries
            del self.observed[:overflow]
            self.dropped += overflow
            count("osn.audit.dropped", overflow)

    def saw(self, needle: bytes) -> bool:
        if not needle:
            raise ValueError("empty needle is meaningless")
        return any(needle in haystack for haystack in self.observed)

    def assert_never_saw(self, needle: bytes, label: str = "secret") -> None:
        if self.saw(needle):
            raise AssertionError("service observed the %s in cleartext" % label)


class StorageHost:
    """In-memory DH with URL namespace ``dh://<host>/<serial>``."""

    def __init__(self, name: str = "dh", max_audit_entries: int | None = None):
        self.name = name
        self.audit = AuditTrail(max_entries=max_audit_entries)
        self._blobs: dict[str, bytes] = {}
        self._serial = itertools.count(1)
        self._frontend = None

    def dispatch(self, request: bytes) -> bytes:
        """Serve one serialized put/get/exists/delete request (see
        :mod:`repro.proto`). Lazily built with a local import so the
        substrate stays import-time independent of the protocol layer."""
        if self._frontend is None:
            from repro.proto.frontends import StorageFrontend

            self._frontend = StorageFrontend(self)
        return self._frontend.dispatch(request)

    def put(self, data: bytes) -> str:
        """Store an encrypted object; returns its public URL_O."""
        with maybe_span("storage.put", num_bytes=len(data)):
            self.audit.record(data)
            url = f"dh://{self.name}/{next(self._serial)}"
            self._blobs[url] = bytes(data)
            count("osn.storage.put.calls")
            count("osn.storage.put.bytes", len(data))
            return url

    def get(self, url: str) -> bytes:
        """Public fetch by URL — anyone holding URL_O may download."""
        with maybe_span("storage.get"):
            try:
                blob = self._blobs[url]
            except KeyError:
                raise StorageError("no object at %s" % url) from None
            count("osn.storage.get.calls")
            count("osn.storage.get.bytes", len(blob))
            return blob

    def exists(self, url: str) -> bool:
        count("osn.storage.exists.calls")
        return url in self._blobs

    def delete(self, url: str) -> bool:
        """Remove a blob; returns whether anything was actually deleted.

        Unlike :meth:`get`, an unknown URL is not an error — deletion is
        idempotent — but the caller learns whether the cleanup found the
        blob, which the atomic-share rollback path depends on.
        """
        count("osn.storage.delete.calls")
        return self._blobs.pop(url, None) is not None

    def tamper(self, url: str, new_data: bytes) -> None:
        """Malicious-DH action for the section VI-B DOS analysis."""
        if url not in self._blobs:
            raise StorageError("no object at %s" % url)
        self._blobs[url] = bytes(new_data)

    def object_count(self) -> int:
        return len(self._blobs)

    def stored_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())
