"""``repro.cluster`` — the sharded, replicated data-host plane.

The paper's DH is "logically separate from the SP — possibly a third
party such as Dropbox" (section IV-A). This package grows that single
logical host into a cluster of mutually-untrusted storage nodes with
Dynamo-style mechanics, while presenting the exact single-host
``put/get/exists/delete/tamper`` surface the rest of the system (apps,
wire protocol, resilience layer) already speaks:

* :class:`~repro.cluster.ring.HashRing` — consistent hashing with
  virtual nodes; deterministic placement and incremental rebalancing.
* :class:`~repro.cluster.node.ClusterNode` — the unit of failure and of
  audit: versioned replicas, crash/recover, hint holding, and a
  per-node :class:`~repro.osn.storage.AuditTrail`.
* :class:`~repro.cluster.cluster.StorageCluster` — the coordinator:
  W/R quorum writes and reads, read repair, hinted handoff, tombstoned
  deletes, join/decommission rebalancing, quorum-latency accounting.
* :class:`~repro.cluster.frontend.ClusterStorageFrontend` — the wire
  face, speaking the same envelope and message types as a single host.
* :mod:`repro.cluster.anti_entropy` — Merkle-tree background sync: the
  self-healing backstop that converges cold divergence (missed hints,
  shed hints, recovered crashes) without any client read.
* :mod:`repro.cluster.faults` — seeded flaky nodes for the chaos
  harness.
* :mod:`repro.store` (sibling package) — the pluggable blob engines
  under every node: the ``dict`` reference and the log-structured
  ``segment`` store with compaction-as-GC and snapshot/restore.

Everything runs on the repository's simulated substrate — ``SimClock``,
``NetworkLink`` cost model, seeded RNGs — so cluster chaos journeys are
exactly reproducible.
"""

from repro.cluster.anti_entropy import AntiEntropySynchronizer, MerkleTree
from repro.cluster.cluster import ClusterAuditView, StorageCluster
from repro.cluster.faults import FlakyClusterNode, flaky_node_factory
from repro.cluster.frontend import ClusterStorageFrontend
from repro.cluster.node import ClusterNode, NodeDownError, VersionedBlob
from repro.cluster.ring import HashRing
from repro.store.interface import ENGINES, BlobStore, StoreStats, make_store

__all__ = [
    "HashRing",
    "ClusterNode",
    "NodeDownError",
    "VersionedBlob",
    "StorageCluster",
    "ClusterAuditView",
    "ClusterStorageFrontend",
    "MerkleTree",
    "AntiEntropySynchronizer",
    "FlakyClusterNode",
    "flaky_node_factory",
    "BlobStore",
    "StoreStats",
    "ENGINES",
    "make_store",
]
