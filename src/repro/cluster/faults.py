"""Seeded fault injection for the storage cluster.

The chaos harness needs the same discipline the single-host injectors
follow (:mod:`repro.osn.faults`): every fault is drawn from a seeded
RNG, injected *before* the wrapped operation mutates anything, and
surfaces as the typed transient error the resilience taxonomy already
classifies — so a faulted cluster journey is exactly reproducible and
every failure is retryable by construction.
"""

from __future__ import annotations

import random

from repro.cluster.node import ClusterNode, VersionedBlob
from repro.cluster.ring import ring_hash
from repro.osn.faults import TransientStorageError

__all__ = ["FlakyClusterNode", "flaky_node_factory"]


class FlakyClusterNode(ClusterNode):
    """A cluster node with seeded transient store/fetch failures.

    A failed store never lands the replica (the coordinator slides the
    write to a stand-in, exactly as it would for a crashed node); a
    failed fetch makes the coordinator consult the next replica in ring
    order — quorum reads tolerate it for free.
    """

    def __init__(
        self,
        name: str,
        store_failure_rate: float = 0.0,
        fetch_failure_rate: float = 0.0,
        seed: int = 0,
        max_audit_entries: int | None = None,
        engine: str = "dict",
    ):
        super().__init__(name, max_audit_entries=max_audit_entries, engine=engine)
        for rate in (store_failure_rate, fetch_failure_rate):
            if not 0 <= rate <= 1:
                raise ValueError("failure rates must be in [0, 1]")
        self.store_failure_rate = store_failure_rate
        self.fetch_failure_rate = fetch_failure_rate
        self._rng = random.Random(seed)
        self.faults_injected = 0

    def store(
        self,
        key: str,
        blob: VersionedBlob,
        hint_for: str | None = None,
        force: bool = False,
        now: float = 0.0,
        reason: str | None = None,
    ) -> bool:
        if self.up and self._rng.random() < self.store_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError(
                "injected store failure on %s" % self.name
            )
        return super().store(
            key, blob, hint_for=hint_for, force=force, now=now, reason=reason
        )

    def fetch(self, key: str) -> VersionedBlob | None:
        if self.up and self._rng.random() < self.fetch_failure_rate:
            self.faults_injected += 1
            raise TransientStorageError(
                "injected fetch failure on %s" % self.name
            )
        return super().fetch(key)


def flaky_node_factory(
    store_failure_rate: float = 0.0,
    fetch_failure_rate: float = 0.0,
    seed: int = 0,
    max_audit_entries: int | None = None,
    engine: str = "dict",
):
    """A ``node_factory`` for :class:`~repro.cluster.cluster.StorageCluster`
    building seeded flaky nodes; each node's RNG is derived from the base
    seed and its name, so membership order cannot perturb the fault
    sequence. ``engine`` picks the storage engine under every flaky
    node, so fault injection runs identically against the dict reference
    and the log-structured segment store."""

    def factory(name: str) -> FlakyClusterNode:
        return FlakyClusterNode(
            name,
            store_failure_rate=store_failure_rate,
            fetch_failure_rate=fetch_failure_rate,
            seed=seed ^ (ring_hash(name) & 0x7FFFFFFF),
            max_audit_entries=max_audit_entries,
            engine=engine,
        )

    return factory
