"""Consistent-hash ring with virtual nodes.

The cluster places every object URL on a fixed 64-bit hash ring. Each
physical node owns ``vnodes`` evenly-scattered tokens (virtual nodes),
so load spreads statistically even with a handful of hosts and a
join/leave only moves the keys adjacent to the arriving/departing
tokens — the property that makes rebalancing incremental instead of a
full reshuffle.

Everything here is deterministic: tokens are SHA-256 prefixes of
``"<node>#<vnode>"`` labels, so the same membership always yields the
same ring, the same preference lists, and therefore byte-identical
chaos journeys under a fixed seed.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

__all__ = ["HashRing", "ring_hash"]


def ring_hash(label: str) -> int:
    """A point on the 64-bit ring for ``label`` (stable across runs)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps keys to an ordered walk over distinct nodes.

    ``preference_list(key, n)`` returns the first ``n`` distinct nodes
    clockwise from the key's ring position — the natural home for the
    key's ``n`` replicas. ``walk(key)`` extends the same order over the
    whole membership, which is what sloppy quorums use to find stand-in
    nodes when a natural replica is down.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._tokens: list[int] = []
        self._owners: dict[int, str] = {}
        for name in nodes:
            self.add(name)

    @property
    def members(self) -> list[str]:
        """Current membership, sorted by name (not ring position)."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        """Join ``name``: insert its virtual-node tokens into the ring."""
        if name in self._members:
            raise ValueError("node %r is already on the ring" % name)
        self._members.add(name)
        for index in range(self.vnodes):
            token = ring_hash("%s#%d" % (name, index))
            if token in self._owners:  # pragma: no cover - 2^-64 per pair
                raise ValueError("token collision on %r" % name)
            bisect.insort(self._tokens, token)
            self._owners[token] = name

    def remove(self, name: str) -> None:
        """Leave ``name``: drop its tokens; neighbours absorb its keys."""
        if name not in self._members:
            raise ValueError("node %r is not on the ring" % name)
        self._members.discard(name)
        dead = [t for t, owner in self._owners.items() if owner == name]
        for token in dead:
            del self._owners[token]
            self._tokens.remove(token)

    def walk(self, key: str) -> Iterator[str]:
        """All distinct nodes in ring order, starting at ``key``'s token."""
        if not self._tokens:
            return
        seen: set[str] = set()
        start = bisect.bisect_right(self._tokens, ring_hash(key))
        for offset in range(len(self._tokens)):
            token = self._tokens[(start + offset) % len(self._tokens)]
            owner = self._owners[token]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == len(self._members):
                    return

    def preference_list(self, key: str, n: int) -> list[str]:
        """The first ``n`` distinct nodes clockwise from ``key``.

        Raises when the membership cannot supply ``n`` distinct nodes —
        a misconfiguration (replication factor above cluster size), not
        a runtime fault.
        """
        if n < 1:
            raise ValueError("preference list length must be >= 1")
        if n > len(self._members):
            raise ValueError(
                "cannot pick %d distinct nodes from a %d-node ring"
                % (n, len(self._members))
            )
        nodes: list[str] = []
        for owner in self.walk(key):
            nodes.append(owner)
            if len(nodes) == n:
                break
        return nodes
