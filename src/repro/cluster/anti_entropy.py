"""Merkle anti-entropy: background convergence for the DH cluster.

Read repair only heals keys somebody reads, and hinted handoff only
heals what a holder still remembers. Everything else — hints shed under
pressure, replicas lost while a node was down, writes that slid wholly
onto stand-ins — is *cold divergence*, and this module is the backstop
that heals it without any client read.

The mechanism is the classic Dynamo/Cassandra one:

* each node summarizes its replicas as a :class:`MerkleTree` over
  fixed ring-position buckets — SHA-256 over the sorted ``(key,
  version)`` pairs in each bucket, folded upward with a configurable
  ``fanout`` — so two nodes can compare entire key ranges by exchanging
  a handful of digests;
* :class:`AntiEntropySynchronizer` runs pairwise sync rounds over the
  live members: roots first, then only the branches that disagree, then
  the entry lists of the divergent leaf buckets. Only keys whose
  ``(key, version)`` actually differ move as repairs, newest version
  winning (a tombstone is just the newest version of a delete, so
  deletes propagate too);
* repairs flow through :meth:`ClusterNode.store`, so every repaired
  byte lands in the receiving node's own audit trail and is recorded as
  a per-node ``anti-entropy`` event — background traffic stays visible
  to the surveillance-resistance checks.

Digest and repair traffic is charged to the cluster's
:class:`~repro.osn.network.NetworkLink` and accounted in
``cluster.anti_entropy.{rounds,keys_repaired,bytes_exchanged}``.
Scheduling is simulated time only: give the cluster an
``anti_entropy_interval_s`` and every storage operation first lets the
synchronizer catch up with the :class:`~repro.sim.timing.SimClock`.
"""

from __future__ import annotations

import hashlib

from repro.cluster.node import ClusterNode
from repro.cluster.ring import ring_hash
from repro.obs.runtime import count, emit_event, maybe_span
from repro.osn.faults import TransientStorageError

__all__ = ["MerkleTree", "AntiEntropySynchronizer", "DIGEST_BYTES"]

# SHA-256 digests travel the wire at full width.
DIGEST_BYTES = 32

# Per-entry wire cost when a divergent leaf exchanges its (key, version)
# list: the version rides as 8 bytes next to the key text.
_ENTRY_VERSION_BYTES = 8

_RING_SPAN = 1 << 64  # ring_hash() tokens live in [0, 2^64)


def _bucket_of(key: str, buckets: int) -> int:
    """The fixed ring-position bucket ``key`` falls into: both sides of
    a sync derive identical tree shapes from identical boundaries."""
    return ring_hash(key) * buckets // _RING_SPAN


class MerkleTree:
    """A fixed-shape Merkle summary of ``(key, version)`` entries.

    Leaves are ``buckets`` equal slices of the hash ring; a leaf digest
    is SHA-256 over its sorted ``(key, version)`` pairs, and interior
    nodes fold ``fanout`` children at a time. Because the bucket
    boundaries are fixed, two trees built from different replica sets
    are structurally identical and can be diffed level by level,
    descending only into subtrees whose digests disagree.
    """

    def __init__(
        self,
        entries: "dict[str, int] | list[tuple[str, int]]",
        buckets: int = 64,
        fanout: int = 4,
    ):
        if buckets < 1:
            raise ValueError("a Merkle tree needs at least one bucket")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.buckets = buckets
        self.fanout = fanout
        pairs = entries.items() if isinstance(entries, dict) else entries
        self._bucket_entries: list[list[tuple[str, int]]] = [
            [] for _ in range(buckets)
        ]
        for key, version in pairs:
            self._bucket_entries[_bucket_of(key, buckets)].append((key, version))
        for bucket in self._bucket_entries:
            bucket.sort()
        # levels[0] = leaf digests, levels[-1] = [root]
        self.levels: list[list[bytes]] = [
            [self._leaf_digest(bucket) for bucket in self._bucket_entries]
        ]
        while len(self.levels[-1]) > 1:
            below = self.levels[-1]
            self.levels.append(
                [
                    self._node_digest(below[i : i + fanout])
                    for i in range(0, len(below), fanout)
                ]
            )

    @staticmethod
    def _leaf_digest(entries: list[tuple[str, int]]) -> bytes:
        h = hashlib.sha256(b"leaf")
        for key, version in entries:
            h.update(key.encode("utf-8"))
            h.update(version.to_bytes(_ENTRY_VERSION_BYTES, "big"))
        return h.digest()

    @staticmethod
    def _node_digest(children: list[bytes]) -> bytes:
        h = hashlib.sha256(b"node")
        for child in children:
            h.update(child)
        return h.digest()

    @property
    def root(self) -> bytes:
        return self.levels[-1][0]

    def bucket_entries(self, index: int) -> list[tuple[str, int]]:
        return list(self._bucket_entries[index])

    def diff(self, other: "MerkleTree") -> tuple[list[int], int]:
        """Divergent leaf-bucket indices, plus the number of digests a
        real exchange would have shipped (both directions counted by the
        caller). Descends root -> branches, touching only subtrees whose
        digests disagree."""
        if self.buckets != other.buckets or self.fanout != other.fanout:
            raise ValueError("cannot diff trees with different shapes")
        digests_compared = 1  # the roots
        if self.root == other.root:
            return [], digests_compared
        # Walk down level by level; at each level expand only the
        # children of nodes that disagreed above.
        suspect = [0]
        for level in range(len(self.levels) - 2, -1, -1):
            expanded: list[int] = []
            for parent in suspect:
                start = parent * self.fanout
                end = min(start + self.fanout, len(self.levels[level]))
                for child in range(start, end):
                    digests_compared += 1
                    if self.levels[level][child] != other.levels[level][child]:
                        expanded.append(child)
            suspect = expanded
            if not suspect:
                return [], digests_compared
        return suspect, digests_compared


class AntiEntropySynchronizer:
    """Pairwise Merkle sync rounds over a :class:`StorageCluster`.

    One *round* syncs one pair of live nodes; :meth:`run_sweep` rounds
    every live pair once, and :meth:`run_until_converged` sweeps until a
    full sweep repairs nothing — the bounded-round convergence the
    chaos suite asserts. ``tick`` is the SimClock scheduler hook: the
    cluster calls it at the top of every storage operation, and a sweep
    actually runs only when ``interval_s`` simulated seconds have
    passed since the last one.
    """

    def __init__(
        self,
        cluster,
        buckets: int = 64,
        fanout: int = 4,
        interval_s: "float | None" = None,
    ):
        self.cluster = cluster
        self.buckets = buckets
        self.fanout = fanout
        self.interval_s = interval_s
        self.rounds = 0
        self.keys_repaired = 0
        self.bytes_exchanged = 0
        self.sweeps = 0
        self._last_sweep_s = 0.0
        self._ticking = False

    # -- scheduling --------------------------------------------------------------

    def tick(self) -> int:
        """Run a sweep if the simulated interval has elapsed; returns
        keys repaired (0 when scheduling is off or it is not time yet)."""
        clock = self.cluster.clock
        if self.interval_s is None or clock is None or self._ticking:
            return 0
        if clock.now() - self._last_sweep_s < self.interval_s:
            return 0
        # A sweep flushes pending degraded-read repairs through quorum
        # reads; the guard keeps that from re-entering the scheduler.
        self._ticking = True
        try:
            self._last_sweep_s = clock.now()
            return self.run_sweep()
        finally:
            self._ticking = False

    # -- sync rounds -------------------------------------------------------------

    def _tree_for(self, node: ClusterNode, universe: set[str]) -> MerkleTree:
        entries = []
        for key in universe:
            blob = node.replica(key)
            if blob is not None:
                entries.append((key, blob.version))
        return MerkleTree(entries, buckets=self.buckets, fanout=self.fanout)

    def _pair_universe(self, a: ClusterNode, b: ClusterNode) -> set[str]:
        """Keys this pair must agree on: anything either side holds that
        the *other* side is a natural replica for. A stand-in holding a
        shed hint pushes the key home through exactly this rule."""
        ring = self.cluster.ring
        replication = self.cluster.replication
        universe: set[str] = set()
        for holder, peer in ((a, b), (b, a)):
            for key in holder.keys():
                if peer.name in ring.preference_list(key, replication):
                    universe.add(key)
        return universe

    def sync_pair(self, a: ClusterNode, b: ClusterNode) -> int:
        """One sync round between two live nodes; returns keys repaired."""
        with maybe_span("cluster.anti_entropy.round", pair="%s|%s" % (a.name, b.name)):
            self.rounds += 1
            count("cluster.anti_entropy.rounds")
            universe = self._pair_universe(a, b)
            tree_a = self._tree_for(a, universe)
            tree_b = self._tree_for(b, universe)
            divergent, digests = tree_a.diff(tree_b)
            # Both directions ship their digests.
            digest_bytes = 2 * digests * DIGEST_BYTES
            repaired = 0
            repair_bytes = 0
            for bucket in divergent:
                entries_a = dict(tree_a.bucket_entries(bucket))
                entries_b = dict(tree_b.bucket_entries(bucket))
                for key, version in list(entries_a.items()) + list(
                    entries_b.items()
                ):
                    digest_bytes += len(key.encode("utf-8")) + _ENTRY_VERSION_BYTES
                for key in sorted(set(entries_a) | set(entries_b)):
                    if entries_a.get(key) == entries_b.get(key):
                        continue
                    repaired_now, moved = self._repair(a, b, key)
                    repaired += repaired_now
                    repair_bytes += moved
            self._account(a, b, digest_bytes, repair_bytes, repaired)
            return repaired

    def _repair(self, a: ClusterNode, b: ClusterNode, key: str) -> tuple[int, int]:
        """Push the newer replica of ``key`` at the stale side; a side
        only *receives* a copy if it is a natural replica for the key."""
        blob_a = a.replica(key)
        blob_b = b.replica(key)
        if blob_a is None and blob_b is None:  # pragma: no cover - diff artifact
            return 0, 0
        if blob_b is None or (blob_a is not None and blob_a.version > blob_b.version):
            source, target, blob = a, b, blob_a
        else:
            source, target, blob = b, a, blob_b
        naturals = self.cluster.ring.preference_list(key, self.cluster.replication)
        if target.name not in naturals:
            return 0, 0
        assert blob is not None
        try:
            changed = target.store(key, blob, reason="anti-entropy")
        except TransientStorageError:
            return 0, 0  # a flaky/unreachable target; the next round retries
        if not changed:
            return 0, 0
        self.keys_repaired += 1
        count("cluster.anti_entropy.keys_repaired")
        emit_event(
            "anti_entropy.repair",
            source=source.name,
            target=target.name,
            version=blob.version,
        )
        size = len(blob.data) if blob.data is not None else 0
        return 1, size

    def _account(
        self,
        a: ClusterNode,
        b: ClusterNode,
        digest_bytes: int,
        repair_bytes: int,
        repaired: int,
    ) -> None:
        total = digest_bytes + repair_bytes
        self.bytes_exchanged += total
        count("cluster.anti_entropy.bytes_exchanged", total)
        link = self.cluster.link
        if link is not None and total:
            delay = link.download(
                total, "anti-entropy %s <-> %s (%d repairs)" % (a.name, b.name, repaired)
            )
            if self.cluster.clock is not None:
                self.cluster.clock.advance(delay)

    def run_sweep(self) -> int:
        """Sync every live pair once (plus hint expiry and the pending
        degraded-read repair queue); returns keys repaired."""
        self.sweeps += 1
        self.cluster.expire_hints()
        repaired = 0
        live = self.cluster.live_nodes()
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                repaired += self.sync_pair(a, b)
        repaired += self.cluster.flush_pending_repairs()
        return repaired

    def run_until_converged(self, max_sweeps: int = 8) -> int:
        """Sweep until a full sweep repairs nothing; returns the number
        of sweeps that did work. Raises if ``max_sweeps`` is not enough
        — convergence is supposed to be bounded, so a runaway loop is a
        bug, not a retry case."""
        for sweep in range(max_sweeps):
            if self.run_sweep() == 0:
                return sweep
        raise RuntimeError(
            "anti-entropy did not converge within %d sweeps" % max_sweeps
        )
