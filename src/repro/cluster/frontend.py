"""The cluster's wire face: the PR-3 envelope over quorum storage.

A :class:`ClusterStorageFrontend` serves exactly the four storage
messages a single-host :class:`~repro.proto.frontends.StorageFrontend`
serves — same envelope, same message types, same
:class:`~repro.proto.messages.ErrorReply` taxonomy — so a
:class:`~repro.proto.client.ProtocolClient` or
:class:`~repro.osn.resilience.ResilientStorageClient` cannot tell (and
must not care) whether the DH behind the bus is one host or a quorum
cluster. Cluster-induced failures surface through the existing codes:
an unreachable quorum is a retryable ``transient-storage`` error, a
genuinely unknown URL a permanent ``storage`` one.
"""

from __future__ import annotations

from repro.obs.runtime import count
from repro.proto.frontends import StorageFrontend
from repro.proto.messages import Message

__all__ = ["ClusterStorageFrontend"]


class ClusterStorageFrontend(StorageFrontend):
    """Wire face of a :class:`~repro.cluster.cluster.StorageCluster`."""

    def __init__(self, cluster):
        super().__init__(cluster)
        self.cluster = cluster

    def handle(self, message: Message) -> Message:
        count("cluster.frontend.requests")
        return super().handle(message)
