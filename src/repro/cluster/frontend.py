"""The cluster's wire face: the PR-3 envelope over quorum storage.

A :class:`ClusterStorageFrontend` serves exactly the storage messages a
single-host :class:`~repro.proto.frontends.StorageFrontend` serves —
same envelope, same message types, same
:class:`~repro.proto.messages.ErrorReply` taxonomy — so a
:class:`~repro.proto.client.ProtocolClient` or
:class:`~repro.osn.resilience.ResilientStorageClient` cannot tell (and
must not care) whether the DH behind the bus is one host or a quorum
cluster. Cluster-induced failures surface through the existing codes:
an unreachable quorum is a retryable ``transient-storage`` error, a
genuinely unknown URL a permanent ``storage`` one.

:class:`~repro.proto.messages.BatchRequest` is where the cluster
diverges from the generic frontend: the member
:class:`~repro.proto.messages.StorageGetRequest` frames all ride one
:meth:`~repro.cluster.cluster.StorageCluster.get_many`, which fans the
quorum consultations across the ring and charges the
:class:`~repro.osn.network.NetworkLink` once per *node* instead of once
per key. Member isolation is preserved: a malformed frame, a missing
key or an unreachable quorum each answer with their own per-member
``ErrorReply`` while the rest of the batch succeeds.
"""

from __future__ import annotations

from repro.core.errors import CircuitOpenError, UnroutableMessageError
from repro.obs.runtime import count
from repro.osn.faults import TransientStorageError
from repro.proto.frontends import StorageFrontend, serve_batch
from repro.proto.messages import (
    BatchReply,
    BatchRequest,
    ErrorReply,
    Message,
    StorageGetReply,
    StorageGetRequest,
    decode_message,
    encode_message,
)
from repro.util.codec import CodecError

__all__ = ["ClusterStorageFrontend"]


class ClusterStorageFrontend(StorageFrontend):
    """Wire face of a :class:`~repro.cluster.cluster.StorageCluster`.

    With ``degraded_reads=True`` a get whose quorum is unreachable (or
    whose resilience wrapper fails fast with an open circuit) falls back
    to the cluster's R=1 :meth:`~repro.cluster.cluster.StorageCluster.
    get_degraded` instead of surfacing the transient error — trading
    bounded staleness for availability, with the stale-risk serve
    counted under ``cluster.degraded_reads`` and queued for async read
    repair. Off by default: quorum semantics stay the contract unless a
    deployment opts into the trade.
    """

    def __init__(self, cluster, degraded_reads: bool = False):
        super().__init__(cluster)
        self.cluster = cluster
        self.degraded_reads = degraded_reads

    def _degraded_get(self, url: str) -> bytes:
        # ``cluster`` may be a resilient wrapper; getattr sees through it
        # (and deliberately bypasses its breaker — this is the one path
        # allowed to keep serving while the breaker cools down).
        return self.cluster.get_degraded(url)

    def handle(self, message: Message) -> Message:
        count("cluster.frontend.requests")
        if isinstance(message, BatchRequest):
            return self._handle_batch(message)
        if self.degraded_reads and isinstance(message, StorageGetRequest):
            try:
                return super().handle(message)
            except (TransientStorageError, CircuitOpenError):
                return StorageGetReply(data=self._degraded_get(message.url))
        return super().handle(message)

    def _handle_batch(self, batch: BatchRequest) -> Message:
        """Serve a batch, folding its gets into one cluster-wide read."""
        get_many = getattr(self.storage, "get_many", None)
        if get_many is None:
            # The backing store cannot batch (e.g. a resilience wrapper
            # without a passthrough): fall back to member-by-member.
            return serve_batch(batch, super().handle)

        count("proto.batch.requests")
        count("proto.batch.members", len(batch.frames))
        reply_frames: list[bytes | None] = [None] * len(batch.frames)
        decoded: list[Message | None] = []
        for index, frame in enumerate(batch.frames):
            try:
                decoded.append(decode_message(frame))
            except CodecError as exc:
                count("proto.bad_message")
                decoded.append(None)
                reply_frames[index] = encode_message(
                    ErrorReply(code="bad-message", message=str(exc), transient=True)
                )

        get_indices = [
            index
            for index, message in enumerate(decoded)
            if isinstance(message, StorageGetRequest)
        ]
        if get_indices:
            results = get_many([decoded[index].url for index in get_indices])
            for index, result in zip(get_indices, results):
                if isinstance(result, Exception):
                    if self.degraded_reads and isinstance(
                        result, (TransientStorageError, CircuitOpenError)
                    ):
                        try:
                            result = self._degraded_get(decoded[index].url)
                        except Exception as exc:
                            result = exc
                if isinstance(result, Exception):
                    count("proto.error_replies")
                    reply_frames[index] = encode_message(
                        ErrorReply.from_exception(result)
                    )
                else:
                    reply_frames[index] = encode_message(
                        StorageGetReply(data=result)
                    )

        for index, message in enumerate(decoded):
            if reply_frames[index] is not None or message is None:
                continue
            try:
                if isinstance(message, BatchRequest):
                    raise UnroutableMessageError("batch members cannot be batches")
                reply = super().handle(message)
            except Exception as exc:
                count("proto.error_replies")
                reply = ErrorReply.from_exception(exc)
            reply_frames[index] = encode_message(reply)
        return BatchReply(frames=tuple(reply_frames))
