"""One storage node of the replicated DH cluster.

A :class:`ClusterNode` is the unit of failure and the unit of audit: it
holds versioned replicas for the portion of the ring it owns, can crash
and recover, and records every byte it handles in its *own*
:class:`~repro.osn.storage.AuditTrail` — the paper's surveillance-
resistance property must hold for each cluster member individually,
because the nodes are mutually untrusted (a hint holder is every bit as
curious as a natural replica).

Replicas are :class:`VersionedBlob` records: the coordinator stamps a
monotonically increasing version on every logical write, which is what
lets read repair order divergent replicas and lets tombstones win over
the values they deleted.

The node owns replica *semantics*; the bytes live in a pluggable
:class:`~repro.store.interface.BlobStore` engine chosen per node
(``engine="dict"`` keeps the historical in-memory behaviour,
``engine="segment"`` is the log-structured store with real durability).
:meth:`crash`/:meth:`recover` model a partition — state intact, node
unreachable. :meth:`kill`/:meth:`restore` model power loss — volatile
state (the engine's index and caches, this node's hint bookkeeping) is
gone and only what the engine wrote through to durable media comes
back. The audit trail deliberately survives a kill: it is the *test
instrument* measuring what the node observed, not node state.
"""

from __future__ import annotations

from repro.obs.runtime import count
from repro.osn.faults import TransientStorageError
from repro.osn.storage import AuditTrail, StorageError
from repro.store.interface import StoreStats, VersionedBlob, make_store

__all__ = ["VersionedBlob", "ClusterNode", "NodeDownError"]


class NodeDownError(TransientStorageError):
    """The node is crashed/partitioned: transient, the quorum routes on."""


class ClusterNode:
    """A crashable key -> :class:`VersionedBlob` store with its own audit.

    ``hinted`` maps keys this node holds *on behalf of* a crashed peer
    (sloppy-quorum writes) to that peer's name; the coordinator replays
    and clears them when the peer recovers.
    """

    def __init__(
        self,
        name: str,
        max_audit_entries: int | None = None,
        engine: str = "dict",
    ):
        self.name = name
        self.audit = AuditTrail(max_entries=max_audit_entries)
        self.up = True
        self.hinted: dict[str, str] = {}
        self.hint_stored_at: dict[str, float] = {}
        self.engine = make_store(engine)
        self.stores = 0
        self.fetches = 0
        # Per-node background-traffic log: (kind, key) tuples for hint
        # drops and anti-entropy repairs, so the surveillance tests can
        # account for every byte a member handled off the client path.
        self.events: list[tuple[str, str]] = []

    @property
    def engine_name(self) -> str:
        return self.engine.engine_name

    # -- failure control ---------------------------------------------------------

    def crash(self) -> None:
        """Partition/process pause: unreachable, state intact."""
        self.up = False

    def recover(self) -> None:
        self.up = True

    def kill(self) -> None:
        """Power loss: crash AND lose all volatile state. The engine
        keeps only its durable media (nothing, for the dict engine);
        hint bookkeeping is coordinator-volatile and dies with RAM."""
        self.crash()
        self.engine.crash_volatile()
        self.hinted.clear()
        self.hint_stored_at.clear()

    def snapshot(self) -> bytes:
        """Image this node's durable media (the engine's, verbatim)."""
        return self.engine.snapshot()

    def restore(self, image: bytes | None = None) -> int:
        """Bring a killed node back: reopen the surviving media (or
        ``image``, a :meth:`snapshot` from elsewhere) and mark the node
        up. Returns the number of keys recovered."""
        if image is None:
            recovered = self.engine.reopen()
        else:
            recovered = self.engine.restore(image)
        self.recover()
        count("cluster.node.%s.restores" % self.name)
        return recovered

    def _require_up(self, verb: str) -> None:
        if not self.up:
            raise NodeDownError("node %s is down (%s)" % (self.name, verb))

    # -- replica operations ------------------------------------------------------

    def store(
        self,
        key: str,
        blob: VersionedBlob,
        hint_for: str | None = None,
        force: bool = False,
        now: float = 0.0,
        reason: str | None = None,
    ) -> bool:
        """Accept a replica; an older version never overwrites a newer one.

        ``hint_for`` marks a sloppy-quorum write held for a crashed peer,
        stamped with the coordinator's simulated ``now`` so hint TTLs can
        age it out. ``force`` lets read repair replace an *equal-version*
        replica whose bytes diverge (tampering); even forced, a strictly
        newer local version is never rolled back. ``reason`` tags
        background writes (e.g. ``"anti-entropy"``) in the node's own
        event log. Returns whether the replica changed. The bytes are
        audited either way: a hint holder observes exactly what a
        natural replica would.
        """
        self._require_up("store")
        current = self.engine.get(key)
        if current is not None:
            if force:
                if current.version > blob.version or current == blob:
                    return False
            elif current.version >= blob.version:
                return False
        if blob.data is not None:
            self.audit.record(blob.data)
        self.engine.put(key, blob)
        if hint_for is not None:
            self.hinted[key] = hint_for
            self.hint_stored_at[key] = now
        if reason is not None:
            self.record_event(reason, key)
        self.stores += 1
        count("cluster.node.store")
        count("cluster.node.%s.stores" % self.name)
        return True

    def record_event(self, kind: str, key: str) -> None:
        """Log a background action against this node by name, so hint
        drops and anti-entropy repairs stay attributable per member."""
        self.events.append((kind, key))
        count("cluster.node.%s.events" % self.name)

    def fetch(self, key: str) -> VersionedBlob | None:
        """The replica for ``key``, or ``None`` when this node has none."""
        self._require_up("fetch")
        self.fetches += 1
        count("cluster.node.fetch")
        count("cluster.node.%s.fetches" % self.name)
        return self.engine.get(key)

    def discard(self, key: str) -> None:
        """Drop a replica outright (handoff completion, rebalance moves,
        or a simulated disk loss in tests) — not a logical delete, which
        is a tombstone written through :meth:`store`. Durable: on the
        segment engine a purge marker rides the log, so the key stays
        gone across :meth:`kill` + :meth:`restore`."""
        self.engine.discard(key)
        self.hinted.pop(key, None)
        self.hint_stored_at.pop(key, None)

    def drop_hint(self, key: str) -> bool:
        """Shed one hinted replica (TTL expiry or volume cap), recording
        a per-node ``hint-drop`` event. Returns whether a hint was held.
        Anti-entropy is the backstop that re-homes the dropped data."""
        if key not in self.hinted:
            return False
        self.record_event("hint-drop", key)
        self.discard(key)
        return True

    def oldest_hints(self) -> list[str]:
        """Hinted keys oldest-first (then by key, for determinism)."""
        return sorted(
            self.hinted, key=lambda key: (self.hint_stored_at.get(key, 0.0), key)
        )

    def take_hints(self, target: str) -> list[tuple[str, VersionedBlob]]:
        """Remove and return every hinted replica held for ``target``."""
        keys = [k for k, holder_for in self.hinted.items() if holder_for == target]
        taken: list[tuple[str, VersionedBlob]] = []
        for key in keys:
            blob = self.engine.get(key)
            if blob is not None:
                taken.append((key, blob))
            self.discard(key)
        return taken

    # -- malicious-DH surface ----------------------------------------------------

    def tamper(self, key: str, new_data: bytes) -> None:
        """Section VI-B malicious action: swap the payload in place,
        keeping the version — exactly the divergence read repair must
        detect by value, not by version."""
        current = self.engine.get(key)
        if current is None or current.tombstone:
            raise StorageError("node %s holds no object at %s" % (self.name, key))
        self.engine.put(key, VersionedBlob(current.version, bytes(new_data)))

    # -- maintenance -------------------------------------------------------------

    def compact(self, purge: "frozenset[str] | set[str]" = frozenset(),
                min_garbage: float = 0.0):
        """Run one engine compaction round (the cluster drives this from
        clock ticks with the purge watermark it computed)."""
        return self.engine.compact(purge=purge, min_garbage=min_garbage)

    # -- accounting --------------------------------------------------------------
    #
    # Peeks work on *crashed* nodes (partition: state intact) but see
    # nothing on a *killed* one until restore — you cannot read a
    # powered-off disk.

    def keys(self) -> list[str]:
        return sorted(self.engine.keys()) if self.engine.is_open else []

    def has_value(self, key: str) -> bool:
        """Whether this node holds a live (non-tombstone) replica,
        regardless of up/down state — test/rebalance introspection, not
        a quorum read."""
        blob = self.replica(key)
        return blob is not None and not blob.tombstone

    def replica(self, key: str) -> VersionedBlob | None:
        """Direct replica peek for tests and rebalancing (no up check)."""
        return self.engine.get(key) if self.engine.is_open else None

    def object_count(self) -> int:
        return self.engine.object_count() if self.engine.is_open else 0

    def stored_bytes(self) -> int:
        return self.engine.payload_bytes() if self.engine.is_open else 0

    def storage_stats(self) -> StoreStats:
        """This node's engine counters (``repro stats`` / ``repro.obs``)."""
        return self.engine.stats()
