"""The replicated DH: quorum reads/writes over a consistent-hash ring.

:class:`StorageCluster` presents the exact ``put/get/exists/delete/
tamper`` surface of a single :class:`~repro.osn.storage.StorageHost`,
but backs it with ``num_nodes`` mutually-untrusted
:class:`~repro.cluster.node.ClusterNode` members:

* **placement** — every URL lands on a consistent-hash ring
  (:class:`~repro.cluster.ring.HashRing`); its ``replication`` natural
  replicas are the first distinct nodes clockwise of its token;
* **quorum writes** — a put is acknowledged once ``write_quorum``
  replicas hold the versioned blob; with a natural replica down, the
  write slides to the next live node on the ring as a *hinted handoff*
  (sloppy quorum), so availability degrades only when fewer than
  ``write_quorum`` nodes are alive in the whole cluster;
* **quorum reads** — a get consults ``read_quorum`` live nodes in ring
  order and returns the winning replica (highest version, then most
  votes, then first responder); **read repair** pushes the winner back
  onto every stale, missing or divergent replica it saw;
* **deletes** — tombstones, so a replica that missed the delete cannot
  resurrect the object;
* **membership** — :meth:`join_node` / :meth:`decommission_node`
  recompute the ring and move exactly the keys whose preference lists
  changed, deterministically.

The coordinator is client-side routing logic (a Dynamo-style smart
client): it never stores object bytes itself, and every byte a member
node handles — natural replica, hint holder, or repair target — lands
in that node's own audit trail, keeping the paper's per-host
surveillance-resistance claim checkable node by node.

Requiring ``read_quorum + write_quorum > replication`` makes a read
quorum always intersect the latest write quorum, which is what lets the
version comparison (rather than wall clocks) decide freshness.

Timing is modelled, never real: with a ``link``, each replica transfer
is charged to the :class:`~repro.osn.network.NetworkLink` and the
*quorum latency* — the delay of the slowest transfer inside the quorum,
since replicas are contacted in parallel — is recorded as a histogram
and advanced on the ``clock``.
"""

from __future__ import annotations

import itertools

from repro.cluster.anti_entropy import AntiEntropySynchronizer
from repro.cluster.node import ClusterNode, VersionedBlob
from repro.cluster.ring import HashRing
from repro.obs.runtime import count, emit_event, maybe_span, observe, set_gauge
from repro.osn.faults import TransientStorageError
from repro.osn.network import NetworkLink
from repro.osn.storage import StorageError
from repro.sim.timing import SimClock
from repro.store.interface import StoreStats

__all__ = ["StorageCluster", "ClusterAuditView", "REPLICA_RPC_OVERHEAD"]

# Per-replica RPC framing (mirrors the wire envelope's fixed cost): what
# a replica transfer costs on the link beyond the payload itself.
REPLICA_RPC_OVERHEAD = 13

# Latency-shaped histogram bounds for quorum latencies (seconds).
_LATENCY_BOUNDS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class ClusterAuditView:
    """The union of every member node's audit trail.

    ``assert_never_saw`` checks each node *individually*, naming the
    offender — the property must hold per host, not just in aggregate.
    """

    def __init__(self, cluster: "StorageCluster"):
        self._cluster = cluster

    def saw(self, needle: bytes) -> bool:
        return any(n.audit.saw(needle) for n in self._cluster.nodes)

    def assert_never_saw(self, needle: bytes, label: str = "secret") -> None:
        for node in self._cluster.nodes:
            node.audit.assert_never_saw(needle, "%s (node %s)" % (label, node.name))


class StorageCluster:
    """A sharded, replicated drop-in for a single ``StorageHost``."""

    def __init__(
        self,
        num_nodes: int = 5,
        replication: int | None = None,
        write_quorum: int | None = None,
        read_quorum: int | None = None,
        name: str = "dhc",
        vnodes: int = 64,
        clock: SimClock | None = None,
        link: NetworkLink | None = None,
        node_factory=None,
        max_audit_entries: int | None = None,
        max_hints_per_node: int | None = None,
        hint_ttl_s: float | None = None,
        anti_entropy_interval_s: float | None = None,
        anti_entropy_buckets: int = 64,
        anti_entropy_fanout: int = 4,
        engine: str = "dict",
        compaction_interval_s: float | None = None,
        compaction_min_garbage: float = 0.25,
    ):
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if max_hints_per_node is not None and max_hints_per_node < 0:
            raise ValueError("max_hints_per_node must be >= 0")
        if hint_ttl_s is not None and hint_ttl_s < 0:
            raise ValueError("hint_ttl_s must be >= 0")
        # Unset knobs derive from cluster size: 3-way replication where
        # the membership allows it, majority quorums over the replicas.
        if replication is None:
            replication = min(3, num_nodes)
        if write_quorum is None:
            write_quorum = replication // 2 + 1
        if read_quorum is None:
            read_quorum = replication // 2 + 1
        if not 1 <= replication <= num_nodes:
            raise ValueError(
                "replication must be in [1, num_nodes], got %d over %d nodes"
                % (replication, num_nodes)
            )
        if not 1 <= write_quorum <= replication:
            raise ValueError("write quorum must be in [1, replication]")
        if not 1 <= read_quorum <= replication:
            raise ValueError("read quorum must be in [1, replication]")
        if read_quorum + write_quorum <= replication:
            raise ValueError(
                "need R + W > replication for quorum intersection "
                "(got R=%d, W=%d, replication=%d)"
                % (read_quorum, write_quorum, replication)
            )
        self.name = name
        self.replication = replication
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        self.clock = clock
        self.link = link
        self.storage_engine = engine
        if node_factory is None:
            def node_factory(node_name: str) -> ClusterNode:
                return ClusterNode(
                    node_name, max_audit_entries=max_audit_entries, engine=engine
                )
        self._node_factory = node_factory
        self._nodes: dict[str, ClusterNode] = {}
        self.ring = HashRing(vnodes=vnodes)
        for index in range(num_nodes):
            self._admit("%s-n%d" % (name, index))
        self._serial = itertools.count(1)
        self._versions = itertools.count(1)
        self.audit = ClusterAuditView(self)
        self._frontend = None
        self.max_hints_per_node = max_hints_per_node
        self.hint_ttl_s = hint_ttl_s
        self.anti_entropy = AntiEntropySynchronizer(
            self,
            buckets=anti_entropy_buckets,
            fanout=anti_entropy_fanout,
            interval_s=anti_entropy_interval_s,
        )
        # Degraded (R=1) reads flagged for async read repair; the next
        # flush or anti-entropy sweep re-reads them at full quorum.
        self._pending_repairs: set[str] = set()
        self.degraded_read_count = 0
        # Background compaction, scheduled from SimClock ticks exactly
        # like anti-entropy: each client op nudges it, it fires once per
        # interval, and a reentrancy guard keeps a compaction from
        # scheduling itself.
        self.compaction_interval_s = compaction_interval_s
        self.compaction_min_garbage = compaction_min_garbage
        self._last_compaction = self._now() if clock is not None else 0.0
        self._compacting = False

    def _admit(self, node_name: str) -> ClusterNode:
        node = self._node_factory(node_name)
        self._nodes[node_name] = node
        self.ring.add(node_name)
        return node

    # -- membership & introspection ----------------------------------------------

    @property
    def nodes(self) -> list[ClusterNode]:
        """Member nodes, sorted by name."""
        return [self._nodes[n] for n in sorted(self._nodes)]

    def node(self, name: str) -> ClusterNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ValueError("no cluster node named %r" % name) from None

    def live_nodes(self) -> list[ClusterNode]:
        return [n for n in self.nodes if n.up]

    def replica_nodes(self, url: str) -> list[ClusterNode]:
        """The natural replica set for ``url``, in ring order."""
        return [
            self._nodes[n]
            for n in self.ring.preference_list(url, self.replication)
        ]

    # -- failure control ---------------------------------------------------------

    def crash(self, node_name: str) -> None:
        self.node(node_name).crash()
        count("cluster.crashes")

    def kill(self, node_name: str) -> None:
        """Power loss on one node: down AND volatile state gone. What
        comes back on :meth:`restore` is only what the node's engine
        wrote through to durable media — nothing, for the dict engine."""
        self.node(node_name).kill()
        count("cluster.kills")
        emit_event("cluster.node_killed", node=node_name)

    def restore(self, node_name: str, image: bytes | None = None) -> int:
        """Bring a killed node back from its surviving media (or an
        explicit snapshot ``image``), then run the normal recovery path
        (hint replay from the peers that covered for it). Returns the
        number of keys the engine recovered from media."""
        recovered = self.node(node_name).restore(image)
        self.recover(node_name)
        emit_event("cluster.node_restored", node=node_name, keys=recovered)
        return recovered

    def recover(self, node_name: str) -> int:
        """Bring a node back and replay every hint held for it elsewhere.

        Returns the number of hinted replicas delivered home.
        """
        target = self.node(node_name)
        target.recover()
        replayed = 0
        for holder in self.live_nodes():
            if holder is target:
                continue
            for key, blob in holder.take_hints(node_name):
                target.store(key, blob)
                replayed += 1
        count("cluster.hinted_handoff.replayed", replayed)
        return replayed

    # -- the StorageHost surface -------------------------------------------------

    def put(self, data: bytes) -> str:
        """Store an encrypted object on ``write_quorum`` replicas;
        returns its public URL_O. Raises a retryable
        :class:`~repro.osn.faults.TransientStorageError` when the quorum
        is unreachable."""
        self.anti_entropy.tick()
        self.compaction_tick()
        with maybe_span("cluster.put", num_bytes=len(data)):
            url = "dh://%s/%d" % (self.name, next(self._serial))
            blob = VersionedBlob(next(self._versions), bytes(data))
            acks, delays = self._replicate(url, blob)
            if acks < self.write_quorum:
                raise TransientStorageError(
                    "write quorum unreachable for %s: %d/%d replicas stored"
                    % (url, acks, self.write_quorum)
                )
            count("cluster.put.calls")
            count("cluster.put.bytes", len(data))
            self._charge_quorum("cluster.put.quorum_latency_s", delays, self.write_quorum)
            return url

    def get(self, url: str) -> bytes:
        """Quorum read: the winning replica's bytes, after read repair.

        A URL no live replica knows is a permanent
        :class:`~repro.osn.storage.StorageError`; an unreachable read
        quorum is a transient one.
        """
        self.anti_entropy.tick()
        self.compaction_tick()
        with maybe_span("cluster.get"):
            winner, delays = self._quorum_read(url, charge_payload=True)
            if winner is None or winner.tombstone:
                raise StorageError("no object at %s" % url)
            count("cluster.get.calls")
            count("cluster.get.bytes", len(winner.data))
            self._charge_quorum("cluster.get.quorum_latency_s", delays, self.read_quorum)
            return winner.data

    def get_many(self, urls: "list[str] | tuple[str, ...]") -> list:
        """Batched quorum reads: one link charge per *node*, not per key.

        Each key still runs its full quorum consultation (winner pick,
        read repair, the long walk for misplaced objects), but the link
        transfers are aggregated per consulted node — modelling one RPC
        to each node carrying all of its replica payloads — and the
        batch completes with the slowest node, since nodes answer in
        parallel. Per-key failures come back *in place* as exception
        objects (the same :class:`~repro.osn.storage.StorageError` /
        :class:`~repro.osn.faults.TransientStorageError` taxonomy), so
        one missing key cannot fail its siblings.
        """
        self.anti_entropy.tick()
        self.compaction_tick()
        with maybe_span("cluster.get_many", num_keys=len(urls)):
            results: list = []
            per_node_bytes: dict[str, int] = {}
            for url in urls:
                consulted: list[tuple[str, int]] = []
                try:
                    winner, _ = self._quorum_read(
                        url, charge_payload=True, charge_link=False,
                        consulted=consulted,
                    )
                    if winner is None or winner.tombstone:
                        raise StorageError("no object at %s" % url)
                except (TransientStorageError, StorageError) as exc:
                    results.append(exc)
                else:
                    results.append(winner.data)
                    count("cluster.get.calls")
                    count("cluster.get.bytes", len(winner.data))
                # Replicas consulted before a failure still moved bytes.
                for node_name, size in consulted:
                    per_node_bytes[node_name] = per_node_bytes.get(node_name, 0) + size
            count("cluster.get.batches")
            if self.link is not None and per_node_bytes:
                delays = [
                    self.link.download(
                        total + REPLICA_RPC_OVERHEAD,
                        "batched read (%d keys) <- %s" % (len(urls), node_name),
                    )
                    for node_name, total in sorted(per_node_bytes.items())
                ]
                latency = max(delays)
                observe("cluster.get.batch_latency_s", latency, _LATENCY_BOUNDS)
                if self.clock is not None:
                    self.clock.advance(latency)
            return results

    def exists(self, url: str) -> bool:
        self.anti_entropy.tick()
        self.compaction_tick()
        with maybe_span("cluster.exists"):
            count("cluster.exists.calls")
            winner, delays = self._quorum_read(url, charge_payload=False)
            self._charge_quorum("cluster.get.quorum_latency_s", delays, self.read_quorum)
            return winner is not None and not winner.tombstone

    def delete(self, url: str) -> bool:
        """Idempotent quorum delete via tombstone; returns whether a live
        object was found to delete (the atomic-share rollback reads
        this). A replica that was down for the delete learns of it from
        the tombstone during read repair or hint replay."""
        self.anti_entropy.tick()
        self.compaction_tick()
        with maybe_span("cluster.delete"):
            count("cluster.delete.calls")
            winner, _ = self._quorum_read(url, charge_payload=False)
            if winner is None:
                return False
            existed = not winner.tombstone
            tombstone = VersionedBlob(next(self._versions), None)
            acks, delays = self._replicate(url, tombstone)
            if acks < self.write_quorum:
                raise TransientStorageError(
                    "write quorum unreachable deleting %s: %d/%d tombstones stored"
                    % (url, acks, self.write_quorum)
                )
            self._charge_quorum(
                "cluster.put.quorum_latency_s", delays, self.write_quorum
            )
            return existed

    def tamper(self, url: str, new_data: bytes, replicas: int | None = None) -> None:
        """Malicious-DH action: corrupt up to ``replicas`` replicas in
        place (all of them by default, matching the single-host
        semantics; ``replicas=1`` models a single rogue node whose
        divergence read repair must heal)."""
        tampered = 0
        for node_name in self.ring.walk(url):
            if replicas is not None and tampered >= replicas:
                break
            node = self._nodes[node_name]
            if node.has_value(url):
                node.tamper(url, new_data)
                tampered += 1
        if tampered == 0:
            raise StorageError("no object at %s" % url)

    def object_count(self) -> int:
        """Distinct live logical objects across the cluster (a key whose
        newest replica is a tombstone is deleted, whatever stale copies
        linger)."""
        best: dict[str, VersionedBlob] = {}
        for node in self.nodes:
            for key in node.keys():
                blob = node.replica(key)
                current = best.get(key)
                if current is None or blob.version > current.version:
                    best[key] = blob
        return sum(1 for blob in best.values() if not blob.tombstone)

    def stored_bytes(self) -> int:
        """Physical bytes across all replicas (capacity, not logical size)."""
        return sum(node.stored_bytes() for node in self.nodes)

    def dispatch(self, request: bytes) -> bytes:
        """Serve one serialized storage request (see :mod:`repro.proto`)
        through the cluster's wire face."""
        if self._frontend is None:
            from repro.cluster.frontend import ClusterStorageFrontend

            self._frontend = ClusterStorageFrontend(self)
        return self._frontend.dispatch(request)

    # -- self-healing surface ------------------------------------------------------

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def _shed_hints(self, holder: ClusterNode) -> int:
        """Enforce the per-holder hint cap, dropping oldest-first; the
        write quorum already acknowledged these replicas, so shedding is
        only safe because anti-entropy re-homes the data later."""
        if self.max_hints_per_node is None:
            return 0
        dropped = 0
        for key in holder.oldest_hints():
            if len(holder.hinted) <= self.max_hints_per_node:
                break
            if holder.drop_hint(key):
                dropped += 1
                count("cluster.hinted_handoff.dropped")
                emit_event("hint.dropped", holder=holder.name, reason="cap")
        return dropped

    def expire_hints(self) -> int:
        """Drop hints older than ``hint_ttl_s`` (SimClock age) on every
        live holder; returns the number shed."""
        if self.hint_ttl_s is None:
            return 0
        now = self._now()
        dropped = 0
        for holder in self.live_nodes():
            for key in holder.oldest_hints():
                if now - holder.hint_stored_at.get(key, 0.0) < self.hint_ttl_s:
                    break  # oldest-first: the rest are younger still
                if holder.drop_hint(key):
                    dropped += 1
                    count("cluster.hinted_handoff.dropped")
                    emit_event("hint.dropped", holder=holder.name, reason="ttl")
        return dropped

    def get_degraded(self, url: str) -> bytes:
        """Availability-over-consistency fallback: an R=1 read serving
        the first live replica found, *without* quorum confirmation.

        The result is tagged stale-risk (``cluster.degraded_reads``) and
        the URL is queued for async read repair, which the next
        :meth:`flush_pending_repairs` or anti-entropy sweep runs at full
        quorum. Raises the usual transient error when no live replica
        holds the object but some node is unreachable — absence stays
        unproven — and a permanent one when every live node answered
        empty."""
        with maybe_span("cluster.degraded_read"):
            unreachable = 0
            for node_name in self.ring.walk(url):
                node = self._nodes[node_name]
                if not node.up:
                    unreachable += 1
                    continue
                try:
                    blob = node.fetch(url)
                except TransientStorageError:
                    unreachable += 1
                    continue
                if blob is None:
                    continue
                if blob.tombstone:
                    raise StorageError("no object at %s" % url)
                self.degraded_read_count += 1
                count("cluster.degraded_reads")
                emit_event("cluster.degraded_read", node=node.name)
                self._pending_repairs.add(url)
                if self.link is not None:
                    delay = self.link.download(
                        len(blob.data) + REPLICA_RPC_OVERHEAD,
                        "degraded read %s <- %s" % (url, node.name),
                    )
                    observe("cluster.get.quorum_latency_s", delay, _LATENCY_BOUNDS)
                    if self.clock is not None:
                        self.clock.advance(delay)
                return blob.data
            if unreachable:
                raise TransientStorageError(
                    "degraded read found no live replica for %s (%d unreachable)"
                    % (url, unreachable)
                )
            raise StorageError("no object at %s" % url)

    def flush_pending_repairs(self) -> int:
        """Run the queued degraded-read repairs at full quorum; URLs
        whose quorum is still unreachable stay queued. Returns the
        number flushed."""
        flushed = 0
        for url in sorted(self._pending_repairs):
            try:
                self._quorum_read(url, charge_payload=False, charge_link=False)
            except TransientStorageError:
                continue
            except StorageError:
                pass  # permanently gone: nothing left to repair
            self._pending_repairs.discard(url)
            flushed += 1
        if flushed:
            count("cluster.read_repair.async_flushed", flushed)
        return flushed

    def run_anti_entropy(self) -> int:
        """One full anti-entropy sweep (hint expiry, every live pair,
        pending-repair flush); returns keys repaired."""
        return self.anti_entropy.run_sweep()

    def divergent_keys(self) -> dict[str, dict[str, int | None]]:
        """Keys whose live *natural* replicas disagree with the newest
        live version — the convergence invariant is exactly that this is
        empty after bounded anti-entropy sweeps. Maps each divergent key
        to the stale replicas' ``{node: version-or-None}``."""
        live = self.live_nodes()
        out: dict[str, dict[str, int | None]] = {}
        for key in sorted({key for node in live for key in node.keys()}):
            versions = [
                node.replica(key).version
                for node in live
                if node.replica(key) is not None
            ]
            if not versions:
                continue
            newest = max(versions)
            stale = {
                node.name: (
                    node.replica(key).version
                    if node.replica(key) is not None
                    else None
                )
                for node in self.replica_nodes(key)
                if node.up
                and (
                    node.replica(key) is None
                    or node.replica(key).version != newest
                )
            }
            if stale:
                out[key] = stale
        return out

    # -- storage engine surface ----------------------------------------------------

    def purgeable_tombstones(self) -> frozenset[str]:
        """The tombstone-GC watermark: keys whose delete has provably
        converged, so compaction may drop their tombstones for good.

        A key qualifies only when **every** replica of it anywhere in
        the cluster — natural home, stand-in, straggler — is a
        tombstone, no node holds a hint for it, and it is not queued for
        async read repair. Anything less and a purged tombstone could be
        resurrected by the very machinery (anti-entropy, hint replay,
        read repair) that exists to spread it. A killed node's media is
        unreadable, so while one exists nothing is provable and the
        watermark is empty.
        """
        if any(not node.engine.is_open for node in self.nodes):
            return frozenset()
        converged: dict[str, bool] = {}
        for node in self.nodes:
            for key in node.keys():
                blob = node.replica(key)
                converged[key] = converged.get(key, True) and blob.tombstone
            for key in node.hinted:
                converged[key] = False
        for key in self._pending_repairs:
            converged[key] = False
        return frozenset(key for key, ok in converged.items() if ok)

    def run_compaction(self, min_garbage: float | None = None) -> int:
        """One cluster-wide compaction round: compute the purge
        watermark once, then let every live node's engine rewrite its
        live records and drop garbage plus purgeable tombstones.
        Compaction *is* the tombstone GC. Returns total bytes reclaimed.
        """
        if min_garbage is None:
            min_garbage = self.compaction_min_garbage
        purge = self.purgeable_tombstones()
        reclaimed = 0
        nodes_compacted = 0
        tombstones_purged = 0
        for node in self.live_nodes():
            result = node.compact(purge=purge, min_garbage=min_garbage)
            if result:
                nodes_compacted += 1
                reclaimed += max(0, result.bytes_reclaimed)
                tombstones_purged += result.tombstones_purged
        if nodes_compacted:
            emit_event(
                "cluster.compaction",
                nodes=nodes_compacted,
                bytes_reclaimed=reclaimed,
                tombstones_purged=tombstones_purged,
            )
        self.publish_storage_gauges()
        return reclaimed

    def compaction_tick(self) -> int:
        """Fire :meth:`run_compaction` when ``compaction_interval_s`` of
        simulated time has passed since the last round (no-op without a
        clock or interval). Client operations nudge this, mirroring the
        anti-entropy scheduler."""
        if (
            self.compaction_interval_s is None
            or self.clock is None
            or self._compacting
        ):
            return 0
        now = self._now()
        if now - self._last_compaction < self.compaction_interval_s:
            return 0
        self._compacting = True
        try:
            self._last_compaction = now
            return self.run_compaction()
        finally:
            self._compacting = False

    def storage_stats(self) -> StoreStats:
        """Cluster-wide aggregate of every open engine's counters."""
        engines: set[str] = set()
        totals = dict(
            segments=0, live_bytes=0, dead_bytes=0, physical_bytes=0,
            payload_bytes=0, objects=0, tombstones=0, compactions=0,
            bytes_reclaimed=0,
        )
        for node in self.nodes:
            if not node.engine.is_open:
                continue
            stats = node.storage_stats()
            engines.add(stats.engine)
            for field in totals:
                totals[field] += getattr(stats, field)
        return StoreStats(engine="+".join(sorted(engines)) or "none", **totals)

    def publish_storage_gauges(self) -> StoreStats:
        """Refresh the ``store.*`` gauges from the aggregate stats."""
        stats = self.storage_stats()
        set_gauge("store.segments", stats.segments)
        set_gauge("store.live_bytes", stats.live_bytes)
        set_gauge("store.dead_bytes", stats.dead_bytes)
        return stats

    # -- replication & quorum internals --------------------------------------------

    def _replicate(self, url: str, blob: VersionedBlob) -> tuple[int, list[float]]:
        """Write ``blob`` toward the natural replicas, sliding each
        unreachable target to the next live ring node as a hinted
        handoff. Returns (acks, per-replica link delays)."""
        natural = self.ring.preference_list(url, self.replication)
        stand_ins = (
            n for n in self.ring.walk(url)
            if n not in natural and self._nodes[n].up
        )
        acks = 0
        delays: list[float] = []
        for target in natural:
            stored_on = None
            node = self._nodes[target]
            if node.up:
                try:
                    node.store(url, blob)
                    stored_on = node
                except TransientStorageError:
                    stored_on = None
            if stored_on is None:
                for holder_name in stand_ins:
                    holder = self._nodes[holder_name]
                    try:
                        holder.store(url, blob, hint_for=target, now=self._now())
                    except TransientStorageError:
                        continue
                    stored_on = holder
                    count("cluster.hinted_handoff.stored")
                    self._shed_hints(holder)
                    break
            if stored_on is not None:
                acks += 1
                if self.link is not None:
                    size = len(blob.data) if blob.data is not None else 0
                    delays.append(
                        self.link.upload(
                            size + REPLICA_RPC_OVERHEAD,
                            "replicate %s -> %s" % (url, stored_on.name),
                        )
                    )
        return acks, delays

    def _quorum_read(
        self,
        url: str,
        charge_payload: bool,
        charge_link: bool = True,
        consulted: "list[tuple[str, int]] | None" = None,
    ) -> tuple[VersionedBlob | None, list[float]]:
        """Consult ``read_quorum`` live nodes in ring order; pick the
        winner by (version, votes, first responder) and repair every
        divergent, stale or missing replica consulted. Returns
        ``(winner-or-None, per-replica link delays)``.

        When every quorum reply is empty the walk keeps extending to the
        remaining live nodes before concluding the object is gone: a
        sloppy write that slid past faulting natural replicas may have
        landed wholly on stand-ins, and only an exhausted walk separates
        "misplaced" from "missing". Read repair then re-homes whatever
        the long walk found."""
        replies: list[tuple[ClusterNode, VersionedBlob | None]] = []
        delays: list[float] = []
        unreachable = 0
        for node_name in self.ring.walk(url):
            if len(replies) >= self.read_quorum and any(
                blob is not None for _, blob in replies
            ):
                break
            node = self._nodes[node_name]
            if not node.up:
                unreachable += 1
                continue
            try:
                blob = node.fetch(url)
            except TransientStorageError:
                unreachable += 1
                continue
            replies.append((node, blob))
            if self.link is not None:
                size = (
                    len(blob.data)
                    if charge_payload and blob is not None and blob.data is not None
                    else 0
                )
                if charge_link:
                    delays.append(
                        self.link.download(
                            size + REPLICA_RPC_OVERHEAD,
                            "read %s <- %s" % (url, node.name),
                        )
                    )
                if consulted is not None:
                    # Batched callers (get_many) aggregate and charge per
                    # node instead of per replica transfer.
                    consulted.append((node.name, size))
        if len(replies) < self.read_quorum:
            raise TransientStorageError(
                "read quorum unreachable for %s: %d/%d replies"
                % (url, len(replies), self.read_quorum)
            )
        winner = self._winner(replies)
        if winner is None and unreachable:
            # Every consulted replica was empty but some node never
            # answered (down or faulted): the object may live exactly
            # there, so "missing" is unproven — fail retryably rather
            # than report a permanent absence.
            raise TransientStorageError(
                "inconclusive read for %s: no replica found, %d nodes unreachable"
                % (url, unreachable)
            )
        if winner is not None:
            self._read_repair(url, winner, replies)
        return winner, delays

    @staticmethod
    def _winner(
        replies: list[tuple[ClusterNode, VersionedBlob | None]],
    ) -> VersionedBlob | None:
        """Highest version wins; among equal versions (a tampered
        replica diverges *in value*), the most-voted value wins, then
        the earliest responder — all deterministic."""
        groups: dict[tuple[int, bytes | None], list[int]] = {}
        for index, (_, blob) in enumerate(replies):
            if blob is not None:
                groups.setdefault((blob.version, blob.data), []).append(index)
        if not groups:
            return None
        best = max(
            groups.items(), key=lambda item: (item[0][0], len(item[1]), -min(item[1]))
        )
        version, data = best[0]
        return VersionedBlob(version, data)

    def _read_repair(
        self,
        url: str,
        winner: VersionedBlob,
        replies: list[tuple[ClusterNode, VersionedBlob | None]],
    ) -> None:
        for node, blob in replies:
            if blob is not None and blob == winner:
                continue
            if node.store(url, winner, force=True):
                count("cluster.read_repair.repairs")

    def _charge_quorum(self, metric: str, delays: list[float], quorum: int) -> None:
        """Record the quorum latency: replicas are contacted in
        parallel, so the operation completes with the ``quorum``-th
        fastest reply."""
        if self.link is None or len(delays) < quorum:
            return
        latency = sorted(delays)[quorum - 1]
        observe(metric, latency, _LATENCY_BOUNDS)
        if self.clock is not None:
            self.clock.advance(latency)

    # -- membership changes ------------------------------------------------------

    def join_node(self, node_name: str | None = None) -> ClusterNode:
        """Add a node and move exactly the keys whose preference lists
        now include it (deterministic incremental rebalance)."""
        if node_name is None:
            node_name = "%s-n%d" % (self.name, len(self._nodes))
        if node_name in self._nodes:
            raise ValueError("node %r already in the cluster" % node_name)
        with maybe_span("cluster.rebalance", joining=node_name):
            node = self._admit(node_name)
            moved = self._rebalance()
            count("cluster.rebalance.moved", moved)
            return node

    def decommission_node(self, node_name: str) -> int:
        """Remove a node, first re-homing every key it was a natural
        replica for. Returns the number of replicas moved. Refuses to
        drop below the replication factor."""
        node = self.node(node_name)
        if len(self._nodes) - 1 < self.replication:
            raise ValueError(
                "cannot decommission %s: %d nodes cannot hold %d replicas"
                % (node_name, len(self._nodes) - 1, self.replication)
            )
        with maybe_span("cluster.rebalance", leaving=node_name):
            self.ring.remove(node_name)
            moved = self._rebalance()
            count("cluster.rebalance.moved", moved)
            del self._nodes[node_name]
            node.crash()  # any straggling reference sees a dead node
            return moved

    def _rebalance(self) -> int:
        """Re-home replicas onto each key's current natural nodes.

        Copies the highest-version replica of every key onto natural
        nodes missing it, then drops replicas from live nodes that are
        neither natural homes nor hint holders. Down nodes are left
        untouched — read repair and hint replay reconcile them later.
        """
        latest: dict[str, VersionedBlob] = {}
        for node in self.nodes:
            if not node.up:
                continue
            for key in node.keys():
                blob = node.replica(key)
                current = latest.get(key)
                if current is None or blob.version > current.version:
                    latest[key] = blob
        moved = 0
        for key in sorted(latest):
            blob = latest[key]
            natural = set(self.ring.preference_list(key, self.replication))
            for name in natural:
                target = self._nodes[name]
                if target.up and target.replica(key) is None:
                    target.store(key, blob)
                    moved += 1
            for node in self.nodes:
                if node.name in natural or not node.up:
                    continue
                if node.name not in self.ring:
                    continue
                if key in node.hinted:
                    continue  # held for a crashed peer; replay owns it
                if node.replica(key) is not None:
                    node.discard(key)
        return moved
