"""repro — a full reproduction of "Social Puzzles: Context-Based Access
Control in Online Social Networks" (Jadliwala, Maiti, Namboodiri; DSN 2014).

Social puzzles gate access to shared OSN content on *knowledge of the
context* of the content (N question-answer pairs, threshold k) rather
than on identity, while keeping the service provider and storage host
blind to both the content and the context (surveillance resistance).

Quick start::

    from repro import SocialPuzzlePlatform, Context

    platform = SocialPuzzlePlatform()
    alice, bob = platform.join("alice"), platform.join("bob")
    platform.befriend(alice, bob)

    context = Context.from_mapping({
        "Where was the party?": "Lake Tahoe",
        "Who brought the cake?": "Marguerite",
        "Which song closed the night?": "Wonderwall",
    })
    share = platform.share(alice, b"party photos", context, k=2)
    result = platform.solve(bob, share, context)
    assert result.plaintext == b"party photos"

Subpackages: :mod:`repro.core` (the two constructions),
:mod:`repro.crypto` (from-scratch crypto substrate), :mod:`repro.abe`
(CP-ABE), :mod:`repro.osn` (simulated OSN), :mod:`repro.sim` (devices and
timing), :mod:`repro.apps` (the Facebook-style applications),
:mod:`repro.analysis` (executable security analysis).
"""

from repro.apps.platform import SocialPuzzlePlatform
from repro.core.context import Context, QAPair
from repro.core.errors import (
    AccessDeniedError,
    PuzzleParameterError,
    SocialPuzzleError,
    TamperDetectedError,
)

__version__ = "1.0.0"

__all__ = [
    "SocialPuzzlePlatform",
    "Context",
    "QAPair",
    "SocialPuzzleError",
    "AccessDeniedError",
    "PuzzleParameterError",
    "TamperDetectedError",
    "__version__",
]
