"""Envelope framing: round trips, and every malformation rejected."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.proto.envelope import (
    ENVELOPE_OVERHEAD,
    MAGIC,
    WIRE_VERSION,
    WireFormatError,
    open_envelope,
    peek_type,
    seal,
)
from repro.util.codec import CodecError


class TestSealOpen:
    def test_round_trip(self):
        frame = seal(0x42, b"hello body")
        assert open_envelope(frame) == (0x42, b"hello body")

    def test_empty_body_round_trip(self):
        assert open_envelope(seal(0x01, b"")) == (0x01, b"")

    def test_overhead_is_exact(self):
        body = b"x" * 137
        assert len(seal(0x05, body)) == len(body) + ENVELOPE_OVERHEAD

    @given(msg_type=st.integers(0, 255), body=st.binary(max_size=512))
    def test_round_trip_property(self, msg_type, body):
        assert open_envelope(seal(msg_type, body)) == (msg_type, body)


class TestRejection:
    def test_bad_magic(self):
        frame = bytearray(seal(1, b"payload"))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            open_envelope(bytes(frame))

    def test_wrong_version(self):
        frame = bytearray(seal(1, b"payload"))
        frame[len(MAGIC)] = WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            open_envelope(bytes(frame))

    def test_truncation_at_every_length(self):
        frame = seal(7, b"some message body")
        for cut in range(len(frame)):
            with pytest.raises(CodecError):
                open_envelope(frame[:cut])

    def test_every_single_bit_flip_detected(self):
        frame = seal(7, b"bits")
        for byte_index in range(len(frame)):
            for bit in range(8):
                mangled = bytearray(frame)
                mangled[byte_index] ^= 1 << bit
                with pytest.raises(CodecError):
                    open_envelope(bytes(mangled))

    def test_trailing_bytes_rejected(self):
        with pytest.raises(CodecError):
            open_envelope(seal(1, b"payload") + b"\x00")

    def test_garbage_rejected(self):
        with pytest.raises(CodecError):
            open_envelope(b"not a frame at all")

    @given(junk=st.binary(max_size=64))
    def test_arbitrary_junk_never_decodes_silently(self, junk):
        # Either it raises, or (vanishingly unlikely) it is a valid frame;
        # it must never return garbage without the checksum matching.
        try:
            msg_type, body = open_envelope(junk)
        except CodecError:
            return
        assert seal(msg_type, body) == junk


class TestPeek:
    def test_peek_reads_type(self):
        assert peek_type(seal(0x41, b"abc")) == 0x41

    def test_peek_tolerates_garbage(self):
        assert peek_type(b"junk") is None
        assert peek_type(b"") is None

    def test_peek_tolerates_truncation_after_type(self):
        frame = seal(0x41, b"abc")
        assert peek_type(frame[: len(MAGIC) + 2]) == 0x41
