"""Batch envelopes: one round trip, per-member isolation.

The batching contract has three load-bearing properties, each tested
here at the layer that owns it:

* **envelope** — ``BatchRequest``/``BatchReply`` round-trip their member
  frames verbatim, and nesting is refused at construction *and* at
  serve time (a hand-crafted nested frame still gets a per-member
  ``unroutable`` error rather than recursion);
* **member isolation** — a malformed or failing member answers with its
  own :class:`~repro.proto.messages.ErrorReply` while every sibling
  commits;
* **fan-out economics** — a pure-storage batch against a quorum cluster
  charges the network link once per consulted *node*, not once per key.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterStorageFrontend, StorageCluster
from repro.core.construction1 import PuzzleServiceC1
from repro.osn.network import LAN_FAST
from repro.osn.provider import ServiceProvider
from repro.osn.storage import StorageError, StorageHost
from repro.proto.bus import MessageBus
from repro.proto.client import ProtocolClient, RemoteServiceError
from repro.proto.engine import PuzzleProtocolEngine
from repro.proto.frontends import StorageFrontend, serve_batch
from repro.proto.messages import (
    BatchReply,
    BatchRequest,
    DisplayPuzzleRequest,
    ErrorReply,
    StorageBoolReply,
    StorageExistsRequest,
    StorageGetReply,
    StorageGetRequest,
    StoragePutReply,
    StoragePutRequest,
    decode_message,
    encode_message,
)


def decode_members(reply: BatchReply):
    return [decode_message(frame) for frame in reply.frames]


class TestEnvelope:
    def test_round_trip(self):
        batch = BatchRequest.of(
            StorageGetRequest(url="dh://1"), StoragePutRequest(data=b"x")
        )
        assert decode_message(encode_message(batch)) == batch
        reply = BatchReply.of(StorageGetReply(data=b"y"))
        assert decode_message(encode_message(reply)) == reply

    def test_empty_batch_round_trips(self):
        batch = BatchRequest(frames=())
        assert decode_message(encode_message(batch)) == batch

    def test_of_refuses_nested_batches(self):
        inner = BatchRequest.of(StorageGetRequest(url="dh://1"))
        with pytest.raises(ValueError):
            BatchRequest.of(inner)

    def test_members_are_enveloped_frames(self):
        member = StorageGetRequest(url="dh://1")
        batch = BatchRequest.of(member)
        assert decode_message(batch.frames[0]) == member


class TestServeBatch:
    def test_member_isolation_under_a_failing_handler(self):
        def handler(message):
            if isinstance(message, StorageGetRequest):
                raise StorageError("no object at %s" % message.url)
            return StorageBoolReply(value=True)

        batch = BatchRequest.of(
            StorageExistsRequest(url="dh://ok"),
            StorageGetRequest(url="dh://missing"),
            StorageExistsRequest(url="dh://also-ok"),
        )
        ok1, err, ok2 = decode_members(serve_batch(batch, handler))
        assert ok1 == StorageBoolReply(value=True)
        assert ok2 == StorageBoolReply(value=True)
        assert isinstance(err, ErrorReply) and err.code == "storage"

    def test_malformed_member_answers_bad_message(self):
        batch = BatchRequest(
            frames=(
                encode_message(StorageExistsRequest(url="dh://ok")),
                b"garbage, not a frame",
            )
        )
        ok, bad = decode_members(
            serve_batch(batch, lambda m: StorageBoolReply(value=True))
        )
        assert ok == StorageBoolReply(value=True)
        assert isinstance(bad, ErrorReply)
        assert bad.code == "bad-message" and bad.transient

    def test_nested_batch_member_is_unroutable(self):
        nested = BatchRequest(
            frames=(
                encode_message(
                    BatchRequest.of(StorageExistsRequest(url="dh://1"))
                ),
            )
        )
        (err,) = decode_members(
            serve_batch(nested, lambda m: StorageBoolReply(value=True))
        )
        assert isinstance(err, ErrorReply) and err.code == "unroutable"


@pytest.fixture()
def engine_world():
    provider = ServiceProvider()
    storage = StorageHost()
    engine = PuzzleProtocolEngine(provider, storage)
    engine.register_backend(1, PuzzleServiceC1(audit=provider.audit))
    return provider, storage, engine


class TestEngineBatches:
    def test_mixed_batch_routes_per_member(self, engine_world):
        provider, storage, engine = engine_world
        url = storage.put(b"blob")
        batch = BatchRequest.of(
            StorageGetRequest(url=url),
            DisplayPuzzleRequest(construction=1, puzzle_id=999),
        )
        reply = decode_message(engine.dispatch(encode_message(batch)))
        got, missing = decode_members(reply)
        assert got == StorageGetReply(data=b"blob")
        assert isinstance(missing, ErrorReply)

    def test_pure_storage_batch_hands_to_storage_frontend(self, engine_world):
        provider, storage, engine = engine_world

        class Recording(StorageFrontend):
            batches = 0

            def handle(self, message):
                if isinstance(message, BatchRequest):
                    Recording.batches += 1
                return super().handle(message)

        engine._storage_frontend = Recording(storage)
        batch = BatchRequest.of(
            StoragePutRequest(data=b"a"), StoragePutRequest(data=b"b")
        )
        reply = decode_message(engine.dispatch(encode_message(batch)))
        assert Recording.batches == 1
        members = decode_members(reply)
        assert all(isinstance(m, StoragePutReply) for m in members)


class TestClientBatch:
    def _client(self, storage=None):
        storage = storage if storage is not None else StorageHost()
        bus = MessageBus(StorageFrontend(storage))
        return storage, ProtocolClient(bus)

    def test_call_batch_preserves_order(self):
        storage, client = self._client()
        urls = [storage.put(b"blob %d" % i) for i in range(4)]
        replies = client.call_batch(
            "dh.get_many", [StorageGetRequest(url=url) for url in urls]
        )
        assert [r.data for r in replies] == [b"blob %d" % i for i in range(4)]

    def test_member_failure_raises_after_siblings_commit(self):
        storage, client = self._client()
        put_ok = StoragePutRequest(data=b"will commit")
        with pytest.raises(StorageError):
            client.call_batch(
                "dh.get_many",
                [StorageGetRequest(url="dh://missing"), put_ok],
            )
        # The sibling put committed server-side despite the raise.
        assert storage.exists("dh://dh/1")

    def test_return_exceptions_yields_members_in_place(self):
        storage, client = self._client()
        url = storage.put(b"present")
        good, bad = client.storage_get_many(
            [url, "dh://missing"], return_exceptions=True
        )
        assert good == b"present"
        assert isinstance(bad, StorageError)

    def test_storage_get_many_happy_path(self):
        storage, client = self._client()
        urls = [storage.put(b"x" * (i + 1)) for i in range(3)]
        assert client.storage_get_many(urls) == [b"x", b"xx", b"xxx"]

    def test_non_batch_reply_rejected(self):
        class WrongReply:
            def dispatch(self, request):
                return encode_message(StorageBoolReply(value=True))

        client = ProtocolClient(MessageBus(WrongReply()))
        with pytest.raises(RemoteServiceError):
            client.call_batch("dh.get_many", [StorageGetRequest(url="dh://1")])


class TestClusterBatches:
    def test_batched_gets_charge_link_per_node_not_per_key(self):
        link = LAN_FAST()
        cluster = StorageCluster(num_nodes=3, link=link)
        frontend = ClusterStorageFrontend(cluster)
        urls = [cluster.put(b"blob %d" % i) for i in range(6)]

        del link.log[:]
        for url in urls:
            cluster.get(url)
        per_key_downloads = sum(1 for t in link.log if t.direction == "down")

        del link.log[:]
        batch = BatchRequest.of(*[StorageGetRequest(url=u) for u in urls])
        reply = decode_message(frontend.dispatch(encode_message(batch)))
        members = decode_members(reply)
        assert [m.data for m in members] == [b"blob %d" % i for i in range(6)]
        batched_downloads = sum(1 for t in link.log if t.direction == "down")

        assert batched_downloads <= len(cluster.nodes)
        assert batched_downloads < per_key_downloads

    def test_per_member_errors_with_siblings_succeeding(self):
        cluster = StorageCluster(num_nodes=3)
        frontend = ClusterStorageFrontend(cluster)
        url = cluster.put(b"present")
        batch = BatchRequest(
            frames=(
                encode_message(StorageGetRequest(url=url)),
                encode_message(StorageGetRequest(url="dh://dhc/missing")),
                b"corrupt member",
            )
        )
        reply = decode_message(frontend.dispatch(encode_message(batch)))
        got, missing, corrupt = decode_members(reply)
        assert got == StorageGetReply(data=b"present")
        assert isinstance(missing, ErrorReply) and missing.code == "storage"
        assert isinstance(corrupt, ErrorReply) and corrupt.code == "bad-message"

    def test_fallback_when_store_cannot_batch(self):
        class NoBatchStore:
            def __init__(self):
                self._host = StorageHost()

            def put(self, data):
                return self._host.put(data)

            def get(self, url):
                return self._host.get(url)

            def exists(self, url):
                return self._host.exists(url)

            def delete(self, url):
                return self._host.delete(url)

        store = NoBatchStore()
        frontend = ClusterStorageFrontend(store)
        url = store.put(b"blob")
        batch = BatchRequest.of(StorageGetRequest(url=url))
        reply = decode_message(frontend.dispatch(encode_message(batch)))
        (member,) = decode_members(reply)
        assert member == StorageGetReply(data=b"blob")

    def test_nested_batch_member_refused(self):
        cluster = StorageCluster(num_nodes=3)
        frontend = ClusterStorageFrontend(cluster)
        batch = BatchRequest(
            frames=(
                encode_message(BatchRequest.of(StorageGetRequest(url="dh://1"))),
            )
        )
        reply = decode_message(frontend.dispatch(encode_message(batch)))
        (err,) = decode_members(reply)
        assert isinstance(err, ErrorReply) and err.code == "unroutable"
